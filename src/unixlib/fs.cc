#include "src/unixlib/fs.h"

#include "src/kernel/ring.h"

#include <algorithm>
#include <cstring>

#include "src/unixlib/mutex.h"

namespace histar {

void MountTable::Mount(ObjectId dir, const std::string& name, ObjectId target) {
  Unmount(dir, name);
  entries_.push_back(MountEntry{dir, name, target});
}

void MountTable::Unmount(ObjectId dir, const std::string& name) {
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].dir == dir && entries_[i].name == name) {
      entries_.erase(entries_.begin() + static_cast<ptrdiff_t>(i));
      return;
    }
  }
}

ObjectId MountTable::Resolve(ObjectId dir, const std::string& name) const {
  for (const MountEntry& e : entries_) {
    if (e.dir == dir && e.name == name) {
      return e.target;
    }
  }
  return kInvalidObject;
}

Result<ObjectId> FileSystem::MakeRoot(ObjectId self, ObjectId parent_container,
                                      const Label& label, uint64_t quota) {
  CreateSpec cspec;
  cspec.container = parent_container;
  cspec.label = label;
  cspec.descrip = "dir";
  cspec.quota = quota;
  Result<ObjectId> dir = kernel_->sys_container_create(self, cspec, 0);
  if (!dir.ok()) {
    return dir.status();
  }
  CreateSpec sspec;
  sspec.container = dir.value();
  sspec.label = label;
  sspec.descrip = "dirseg";
  // The name table gets a quarter of the directory's budget, capped: a
  // 16 MB default directory can hold ~4k names.
  sspec.quota = std::min<uint64_t>(quota / 4, 256 * 1024);
  Result<ObjectId> seg = kernel_->sys_segment_create(self, sspec, sizeof(DirHeader));
  if (!seg.ok()) {
    return seg.status();
  }
  // Stash the directory segment's id in the container metadata.
  uint64_t md[1] = {seg.value()};
  Status st = kernel_->sys_obj_set_metadata(self, SelfEntry(dir.value()), md, sizeof(md));
  if (st != Status::kOk) {
    return st;
  }
  return dir.value();
}

Result<ObjectId> FileSystem::MakeDir(ObjectId self, ObjectId parent, const std::string& name,
                                     const Label& label, uint64_t quota) {
  if (name.empty() || name.size() > kMaxFileName) {
    return Status::kInvalidArg;
  }
  Result<ObjectId> existing = Lookup(self, parent, name);
  if (existing.ok()) {
    return Status::kExists;
  }
  Result<ObjectId> dir = MakeRoot(self, parent, label, quota);
  if (!dir.ok()) {
    return dir.status();
  }
  Result<ObjectId> seg = DirSegment(self, parent);
  if (!seg.ok()) {
    return seg.status();
  }
  ContainerEntry seg_ce{parent, seg.value()};
  SegmentMutex mu(kernel_, seg_ce, 0);
  if (!mu.Lock(self)) {
    return Status::kLabelCheckFailed;
  }
  uint64_t slot;
  FindEntry(self, seg_ce, name, &slot);
  DirEntry e{};
  e.objid = dir.value();
  e.in_use = 1;
  memcpy(e.name, name.data(), name.size());
  Status st = WriteEntry(self, seg_ce, slot, e);
  mu.Unlock(self);
  if (st != Status::kOk) {
    return st;
  }
  return dir.value();
}

Result<ObjectId> FileSystem::Create(ObjectId self, ObjectId dir, const std::string& name,
                                    const Label& label, uint64_t quota) {
  if (name.empty() || name.size() > kMaxFileName) {
    return Status::kInvalidArg;
  }
  Result<ObjectId> existing = Lookup(self, dir, name);
  if (existing.ok()) {
    return Status::kExists;
  }
  CreateSpec fspec;
  fspec.container = dir;
  fspec.label = label;
  fspec.descrip = name.substr(0, kDescripLen);
  fspec.quota = quota;
  Result<ObjectId> file = kernel_->sys_segment_create(self, fspec, 0);
  if (!file.ok()) {
    return file.status();
  }
  Result<ObjectId> seg = DirSegment(self, dir);
  if (!seg.ok()) {
    return seg.status();
  }
  ContainerEntry seg_ce{dir, seg.value()};
  SegmentMutex mu(kernel_, seg_ce, 0);
  if (!mu.Lock(self)) {
    return Status::kLabelCheckFailed;
  }
  uint64_t slot;
  FindEntry(self, seg_ce, name, &slot);
  DirEntry e{};
  e.objid = file.value();
  e.in_use = 1;
  memcpy(e.name, name.data(), name.size());
  Status st = WriteEntry(self, seg_ce, slot, e);
  mu.Unlock(self);
  if (st != Status::kOk) {
    return st;
  }
  return file.value();
}

Result<ObjectId> FileSystem::Relabel(ObjectId self, ObjectId dir, const std::string& name,
                                     const Label& new_label) {
  Result<ObjectId> seg = DirSegment(self, dir);
  if (!seg.ok()) {
    return seg.status();
  }
  ContainerEntry seg_ce{dir, seg.value()};
  SegmentMutex mu(kernel_, seg_ce, 0);
  if (!mu.Lock(self)) {
    return Status::kLabelCheckFailed;
  }
  uint64_t slot;
  Result<ObjectId> old = FindEntry(self, seg_ce, name, &slot);
  if (!old.ok()) {
    mu.Unlock(self);
    return old.status();
  }
  // The copy carries the old quota; the kernel's copy path enforces that the
  // caller can observe the source and create at the new label.
  Result<uint64_t> quota = kernel_->sys_obj_get_quota(self, ContainerEntry{dir, old.value()});
  if (!quota.ok()) {
    mu.Unlock(self);
    return quota.status();
  }
  CreateSpec spec;
  spec.container = dir;
  spec.label = new_label;
  spec.descrip = name.substr(0, kDescripLen);
  spec.quota = quota.value();
  Result<ObjectId> copy = kernel_->sys_segment_copy(self, spec, ContainerEntry{dir, old.value()});
  if (!copy.ok()) {
    mu.Unlock(self);
    return copy.status();
  }
  DirEntry e{};
  e.objid = copy.value();
  e.in_use = 1;
  memcpy(e.name, name.data(), std::min(name.size(), sizeof(e.name) - 1));
  Status st = WriteEntry(self, seg_ce, slot, e);
  mu.Unlock(self);
  if (st != Status::kOk) {
    kernel_->sys_container_unref(self, ContainerEntry{dir, copy.value()});
    return st;
  }
  // Drop the old object: open descriptors referring to it are revoked the
  // HiStar way — the object itself ceases to exist.
  kernel_->sys_container_unref(self, ContainerEntry{dir, old.value()});
  return copy.value();
}

Result<ObjectId> FileSystem::DirSegment(ObjectId self, ObjectId dir) {
  Result<std::vector<uint8_t>> md = kernel_->sys_obj_get_metadata(self, SelfEntry(dir));
  if (!md.ok()) {
    return md.status();
  }
  uint64_t seg;
  memcpy(&seg, md.value().data(), 8);
  if (seg == 0) {
    return Status::kWrongType;  // not a directory
  }
  return seg;
}

namespace {
// Directory scans read fixed 64-byte records from one segment — the
// archetypal same-shard syscall run. Submitting them in batches pays one
// TableLock per kDirScanBatch records instead of one per record, which is
// where a path walk spends most of its syscalls.
constexpr uint64_t kDirScanBatch = 16;
}  // namespace

Status FileSystem::EnableAsyncScans(ObjectId self, ObjectId container) {
  if (scan_ring_.ring != kInvalidObject) {
    return Status::kOk;  // idempotent: re-enabling must not strand the old ring
  }
  CreateSpec spec;
  spec.container = container;
  spec.label = Label();
  spec.descrip = "fs-scan-ring";
  spec.quota = 16 * kPageSize;
  // Two windows may be in flight at once (the double buffer), so capacity
  // must cover 2 * kDirScanBatch unreaped ops; leave headroom.
  Result<ObjectId> r = kernel_->sys_ring_create(self, spec, 4 * kDirScanBatch);
  if (!r.ok()) {
    return r.status();
  }
  scan_ring_.ring = r.value();
  scan_ring_.ct = container;
  return Status::kOk;
}

template <typename Fn>
Status FileSystem::ScanDirRecords(ObjectId self, ContainerEntry seg, uint64_t n, Fn&& fn) {
  // Ring-backed pipelined mode (PR 5): double-buffered windows — window
  // w+1's record reads are SUBMITTED before window w's completions are
  // harvested, so a kernel worker reads records while this thread parses
  // the previous window. Per-ring FIFO ordering plus reap(max=window size)
  // keeps each harvest scoped to its own window's completions.
  if (scan_ring_.ring != kInvalidObject && n > 0) {
    ContainerEntry ring{scan_ring_.ct, scan_ring_.ring};
    DirEntry entries[2][kDirScanBatch];
    uint64_t tickets[2] = {0, 0};
    auto submit = [&](uint64_t base, uint64_t cnt, int slot) -> Status {
      std::vector<RingOp> ops;
      ops.reserve(cnt);
      for (uint64_t i = 0; i < cnt; ++i) {
        ops.push_back(RingOp{SyscallReq{
            SegmentReadReq{seg, &entries[slot][i],
                           sizeof(DirHeader) + (base + i) * sizeof(DirEntry),
                           sizeof(DirEntry)}}});
      }
      Result<uint64_t> t = kernel_->sys_ring_submit(self, ring, std::move(ops));
      if (!t.ok()) {
        return t.status();
      }
      tickets[slot] = t.value();
      return Status::kOk;
    };
    auto harvest = [&](uint64_t cnt, int slot, bool check) -> Status {
      // kHalted/kNotFound arrive only after no worker holds this window's
      // entry buffers (the kernel's executing-drain), so propagating them —
      // and popping this stack frame — is safe.
      Status ws = RingWaitInterruptible(kernel_, self, ring, tickets[slot]);
      if (ws != Status::kOk) {
        kernel_->sys_ring_reap(self, ring, static_cast<uint32_t>(cnt));  // free capacity
        return ws;
      }
      Result<std::vector<RingCompletion>> done =
          kernel_->sys_ring_reap(self, ring, static_cast<uint32_t>(cnt));
      if (!done.ok()) {
        return done.status();
      }
      if (!check) {
        return Status::kOk;  // drain-only (early stop): completions dropped
      }
      if (done.value().size() != cnt) {
        return Status::kInvalidArg;
      }
      for (const RingCompletion& c : done.value()) {
        Status st = ResStatus(c.res);
        if (st != Status::kOk) {
          return st;
        }
      }
      return Status::kOk;
    };
    const uint64_t nwin = (n + kDirScanBatch - 1) / kDirScanBatch;
    auto win_cnt = [&](uint64_t w) { return std::min(kDirScanBatch, n - w * kDirScanBatch); };
    // First window: if the ring refuses it (label-incompatible caller,
    // capacity), nothing is in flight yet — drop to the sync path below.
    if (submit(0, win_cnt(0), 0) == Status::kOk) {
      for (uint64_t w = 0; w < nwin; ++w) {
        int slot = static_cast<int>(w & 1);
        bool next_inflight = false;
        if (w + 1 < nwin) {
          Status st = submit((w + 1) * kDirScanBatch, win_cnt(w + 1), 1 - slot);
          if (st != Status::kOk) {
            harvest(win_cnt(w), slot, /*check=*/false);
            return st;
          }
          next_inflight = true;
        }
        Status st = harvest(win_cnt(w), slot, /*check=*/true);
        if (st != Status::kOk) {
          if (next_inflight) {
            harvest(win_cnt(w + 1), 1 - slot, /*check=*/false);
          }
          return st;
        }
        for (uint64_t i = 0; i < win_cnt(w); ++i) {
          if (!fn(w * kDirScanBatch + i, entries[slot][i])) {
            if (next_inflight) {
              harvest(win_cnt(w + 1), 1 - slot, /*check=*/false);
            }
            return Status::kOk;
          }
        }
      }
      return Status::kOk;
    }
  }
  DirEntry entries[kDirScanBatch];
  SyscallReq reqs[kDirScanBatch];
  SyscallRes res[kDirScanBatch];
  for (uint64_t base = 0; base < n; base += kDirScanBatch) {
    uint64_t cnt = std::min(kDirScanBatch, n - base);
    for (uint64_t i = 0; i < cnt; ++i) {
      reqs[i] = SegmentReadReq{seg, &entries[i],
                               sizeof(DirHeader) + (base + i) * sizeof(DirEntry),
                               sizeof(DirEntry)};
    }
    kernel_->SubmitBatch(self, std::span<const SyscallReq>(reqs, cnt),
                         std::span<SyscallRes>(res, cnt));
    for (uint64_t i = 0; i < cnt; ++i) {
      Status st = std::get<SegmentReadRes>(res[i]).status;
      if (st != Status::kOk) {
        return st;
      }
      if (!fn(base + i, entries[i])) {
        return Status::kOk;
      }
    }
  }
  return Status::kOk;
}

Result<ObjectId> FileSystem::FindEntry(ObjectId self, ContainerEntry seg,
                                       const std::string& name, uint64_t* slot_out) {
  Result<uint64_t> len = kernel_->sys_segment_get_len(self, seg);
  if (!len.ok()) {
    return len.status();
  }
  uint64_t n = (len.value() - sizeof(DirHeader)) / sizeof(DirEntry);
  uint64_t free_slot = n;
  uint64_t found_slot = n;
  ObjectId found = kInvalidObject;
  Status st = ScanDirRecords(self, seg, n, [&](uint64_t slot, const DirEntry& e) {
    if (e.in_use == 0) {
      if (free_slot == n) {
        free_slot = slot;
      }
      return true;
    }
    if (strncmp(e.name, name.c_str(), sizeof(e.name)) == 0) {
      found_slot = slot;
      found = e.objid;
      return false;  // stop: name matched
    }
    return true;
  });
  if (st != Status::kOk) {
    return st;
  }
  if (found != kInvalidObject) {
    if (slot_out != nullptr) {
      *slot_out = found_slot;
    }
    return found;
  }
  if (slot_out != nullptr) {
    *slot_out = free_slot;
  }
  return Status::kNotFound;
}

Status FileSystem::WriteEntry(ObjectId self, ContainerEntry seg, uint64_t slot,
                              const DirEntry& e) {
  Status st = BumpGeneration(self, seg, +1);
  if (st != Status::kOk) {
    return st;
  }
  Result<uint64_t> len = kernel_->sys_segment_get_len(self, seg);
  if (!len.ok()) {
    return len.status();
  }
  uint64_t need = sizeof(DirHeader) + (slot + 1) * sizeof(DirEntry);
  if (len.value() < need) {
    st = kernel_->sys_segment_resize(self, seg, need);
    if (st != Status::kOk) {
      BumpGeneration(self, seg, -1);
      return st;
    }
  }
  st = kernel_->sys_segment_write(self, seg, &e, sizeof(DirHeader) + slot * sizeof(DirEntry),
                                  sizeof(e));
  BumpGeneration(self, seg, -1);
  return st;
}

Status FileSystem::BumpGeneration(ObjectId self, ContainerEntry seg, int64_t busy_delta) {
  DirHeader h;
  Status st = kernel_->sys_segment_read(self, seg, &h, 0, sizeof(h));
  if (st != Status::kOk) {
    return st;
  }
  ++h.generation;
  h.busy = static_cast<uint64_t>(static_cast<int64_t>(h.busy) + busy_delta);
  return kernel_->sys_segment_write(self, seg, &h, 0, sizeof(h));
}

Result<ObjectId> FileSystem::Lookup(ObjectId self, ObjectId dir, const std::string& name) {
  // Mount overlay first, like the real library.
  ObjectId mounted = mounts_.Resolve(dir, name);
  if (mounted != kInvalidObject) {
    return mounted;
  }
  Result<ObjectId> seg = DirSegment(self, dir);
  if (!seg.ok()) {
    return seg.status();
  }
  ContainerEntry seg_ce{dir, seg.value()};
  // Consistent read without the mutex: retry while a writer is mid-update.
  for (int attempt = 0; attempt < 100; ++attempt) {
    DirHeader before;
    Status st = kernel_->sys_segment_read(self, seg_ce, &before, 0, sizeof(before));
    if (st != Status::kOk) {
      return st;
    }
    if (before.busy != 0) {
      continue;
    }
    Result<ObjectId> r = FindEntry(self, seg_ce, name, nullptr);
    DirHeader after;
    st = kernel_->sys_segment_read(self, seg_ce, &after, 0, sizeof(after));
    if (st != Status::kOk) {
      return st;
    }
    if (after.generation == before.generation && after.busy == 0) {
      return r;
    }
  }
  return Status::kBusy;
}

Status FileSystem::Unlink(ObjectId self, ObjectId dir, const std::string& name) {
  Result<ObjectId> seg = DirSegment(self, dir);
  if (!seg.ok()) {
    return seg.status();
  }
  ContainerEntry seg_ce{dir, seg.value()};
  SegmentMutex mu(kernel_, seg_ce, 0);
  if (!mu.Lock(self)) {
    return Status::kLabelCheckFailed;
  }
  uint64_t slot;
  Result<ObjectId> obj = FindEntry(self, seg_ce, name, &slot);
  if (!obj.ok()) {
    mu.Unlock(self);
    return obj.status();
  }
  DirEntry empty{};
  Status st = WriteEntry(self, seg_ce, slot, empty);
  mu.Unlock(self);
  if (st != Status::kOk) {
    return st;
  }
  return kernel_->sys_container_unref(self, ContainerEntry{dir, obj.value()});
}

Status FileSystem::Rename(ObjectId self, ObjectId dir, const std::string& from,
                          const std::string& to) {
  if (to.empty() || to.size() > kMaxFileName) {
    return Status::kInvalidArg;
  }
  Result<ObjectId> seg = DirSegment(self, dir);
  if (!seg.ok()) {
    return seg.status();
  }
  ContainerEntry seg_ce{dir, seg.value()};
  SegmentMutex mu(kernel_, seg_ce, 0);
  if (!mu.Lock(self)) {
    return Status::kLabelCheckFailed;
  }
  uint64_t from_slot;
  Result<ObjectId> obj = FindEntry(self, seg_ce, from, &from_slot);
  if (!obj.ok()) {
    mu.Unlock(self);
    return obj.status();
  }
  // If `to` exists it is replaced (Unix semantics), its object unreferenced
  // after the name switch.
  uint64_t to_slot;
  Result<ObjectId> displaced = FindEntry(self, seg_ce, to, &to_slot);
  DirEntry e{};
  e.objid = obj.value();
  e.in_use = 1;
  memcpy(e.name, to.data(), to.size());
  Status st = WriteEntry(self, seg_ce, displaced.ok() ? to_slot : from_slot, e);
  if (st == Status::kOk && displaced.ok()) {
    DirEntry empty{};
    st = WriteEntry(self, seg_ce, from_slot, empty);
  }
  mu.Unlock(self);
  if (st == Status::kOk && displaced.ok() && displaced.value() != obj.value()) {
    kernel_->sys_container_unref(self, ContainerEntry{dir, displaced.value()});
  }
  return st;
}

Result<std::vector<std::pair<std::string, ObjectId>>> FileSystem::ReadDir(ObjectId self,
                                                                          ObjectId dir) {
  Result<ObjectId> seg = DirSegment(self, dir);
  if (!seg.ok()) {
    return seg.status();
  }
  ContainerEntry seg_ce{dir, seg.value()};
  for (int attempt = 0; attempt < 100; ++attempt) {
    DirHeader before;
    Status st = kernel_->sys_segment_read(self, seg_ce, &before, 0, sizeof(before));
    if (st != Status::kOk) {
      return st;
    }
    if (before.busy != 0) {
      continue;
    }
    Result<uint64_t> len = kernel_->sys_segment_get_len(self, seg_ce);
    if (!len.ok()) {
      return len.status();
    }
    uint64_t n = (len.value() - sizeof(DirHeader)) / sizeof(DirEntry);
    std::vector<std::pair<std::string, ObjectId>> out;
    st = ScanDirRecords(self, seg_ce, n, [&](uint64_t, const DirEntry& e) {
      if (e.in_use != 0) {
        out.emplace_back(std::string(e.name, strnlen(e.name, sizeof(e.name))), e.objid);
      }
      return true;
    });
    if (st != Status::kOk) {
      return st;
    }
    DirHeader after;
    st = kernel_->sys_segment_read(self, seg_ce, &after, 0, sizeof(after));
    if (st != Status::kOk) {
      return st;
    }
    if (after.generation == before.generation && after.busy == 0) {
      return out;
    }
  }
  return Status::kBusy;
}

Result<ObjectId> FileSystem::Walk(ObjectId self, ObjectId root, const std::string& path) {
  ObjectId cur = root;
  size_t pos = 0;
  while (pos < path.size()) {
    while (pos < path.size() && path[pos] == '/') {
      ++pos;
    }
    size_t end = path.find('/', pos);
    if (end == std::string::npos) {
      end = path.size();
    }
    if (end == pos) {
      break;
    }
    std::string comp = path.substr(pos, end - pos);
    pos = end;
    if (comp == ".") {
      continue;
    }
    if (comp == "..") {
      Result<ObjectId> parent = kernel_->sys_container_get_parent(self, cur);
      if (!parent.ok()) {
        return parent.status();
      }
      cur = parent.value();
      continue;
    }
    Result<ObjectId> next = Lookup(self, cur, comp);
    if (!next.ok()) {
      return next.status();
    }
    cur = next.value();
  }
  return cur;
}

Result<std::pair<ObjectId, std::string>> FileSystem::WalkParent(ObjectId self, ObjectId root,
                                                                const std::string& path) {
  size_t slash = path.find_last_of('/');
  std::string dir_part = slash == std::string::npos ? "" : path.substr(0, slash);
  std::string leaf = slash == std::string::npos ? path : path.substr(slash + 1);
  if (leaf.empty()) {
    return Status::kInvalidArg;
  }
  Result<ObjectId> dir = Walk(self, root, dir_part);
  if (!dir.ok()) {
    return dir.status();
  }
  return std::make_pair(dir.value(), leaf);
}

Result<uint64_t> FileSystem::FileSize(ObjectId self, ObjectId dir, ObjectId file) {
  return kernel_->sys_segment_get_len(self, ContainerEntry{dir, file});
}

Result<uint64_t> FileSystem::ReadAt(ObjectId self, ObjectId dir, ObjectId file, void* buf,
                                    uint64_t off, uint64_t len) {
  ContainerEntry ce{dir, file};
  Result<uint64_t> size = kernel_->sys_segment_get_len(self, ce);
  if (!size.ok()) {
    return size.status();
  }
  if (off >= size.value()) {
    return uint64_t{0};
  }
  uint64_t n = std::min(len, size.value() - off);
  Status st = kernel_->sys_segment_read(self, ce, buf, off, n);
  if (st != Status::kOk) {
    return st;
  }
  return n;
}

Status FileSystem::WriteAt(ObjectId self, ObjectId dir, ObjectId file, const void* buf,
                           uint64_t off, uint64_t len) {
  ContainerEntry ce{dir, file};
  Result<uint64_t> size = kernel_->sys_segment_get_len(self, ce);
  if (!size.ok()) {
    return size.status();
  }
  if (off + len > size.value()) {
    Status st = kernel_->sys_segment_resize(self, ce, off + len);
    if (st == Status::kQuotaExceeded) {
      // Grow the file's quota out of the directory's pool, with headroom so
      // steady appends don't pay a quota_move per write.
      Result<uint64_t> q = kernel_->sys_obj_get_quota(self, ce);
      if (!q.ok()) {
        return q.status();
      }
      uint64_t need = off + len + kObjectOverheadBytes;
      uint64_t grow = std::max<uint64_t>(need - q.value(), need / 2);
      st = kernel_->sys_quota_move(self, dir, file, static_cast<int64_t>(grow));
      if (st != Status::kOk) {
        return st;
      }
      st = kernel_->sys_segment_resize(self, ce, off + len);
    }
    if (st != Status::kOk) {
      return st;
    }
  }
  return kernel_->sys_segment_write(self, ce, buf, off, len);
}

Status FileSystem::Truncate(ObjectId self, ObjectId dir, ObjectId file, uint64_t len) {
  return kernel_->sys_segment_resize(self, ContainerEntry{dir, file}, len);
}

Status FileSystem::SyncFile(ObjectId self, ObjectId dir, ObjectId file) {
  return kernel_->sys_sync_object(self, ContainerEntry{dir, file});
}

Status FileSystem::SyncEverything(ObjectId self) { return kernel_->sys_sync(self); }

Status FileSystem::TouchMtime(ObjectId self, ObjectId dir, ObjectId file, uint64_t mtime) {
  ContainerEntry ce{dir, file};
  Result<std::vector<uint8_t>> md = kernel_->sys_obj_get_metadata(self, ce);
  if (!md.ok()) {
    return md.status();
  }
  std::vector<uint8_t> bytes = md.take();
  memcpy(bytes.data(), &mtime, 8);
  return kernel_->sys_obj_set_metadata(self, ce, bytes.data(), bytes.size());
}

Result<uint64_t> FileSystem::GetMtime(ObjectId self, ObjectId dir, ObjectId file) {
  Result<std::vector<uint8_t>> md = kernel_->sys_obj_get_metadata(self, ContainerEntry{dir, file});
  if (!md.ok()) {
    return md.status();
  }
  uint64_t mtime;
  memcpy(&mtime, md.value().data(), 8);
  return mtime;
}

}  // namespace histar
