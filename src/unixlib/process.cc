#include "src/unixlib/process.h"

#include <algorithm>
#include <cstring>

#include "src/core/label_memo.h"
#include "src/kernel/ring.h"
#include "src/kernel/thread_runner.h"
#include "src/unixlib/mutex.h"

namespace histar {

namespace {

// Merges the explicit entries of `extra` into `base` (used to add taint or
// ownership components to the conventional process labels).
Label MergeEntries(Label base, const Label& extra) {
  for (CategoryId c : extra.Categories()) {
    base.set(c, extra.get(c));
  }
  return base;
}

// Gate entry for Unix signals (§5.6): reads the signal number out of the
// invoking thread's local segment and alerts the target process's thread.
// Runs with the process's pr*/pw* (granted by the gate), which is exactly
// what thread_alert requires.
void SignalGateEntry(GateCall& call) {
  uint64_t signo = 0;
  call.kernel->sys_self_local_read(call.thread, &signo, 0, 8);
  ContainerEntry target{call.closure[0], call.closure[1]};
  call.kernel->sys_thread_alert(call.thread, target, signo);
}

// Gate entry for the §5.8 exit declassification: writes the exit record
// through the gate's stored privilege. The status is passed in the invoking
// thread's local segment at offset 16 (0/8 carry the signal convention).
void ExitGateEntry(GateCall& call) {
  int64_t status = 0;
  call.kernel->sys_self_local_read(call.thread, &status, 16, 8);
  ContainerEntry exit_ce{call.closure[0], call.closure[1]};
  int64_t record[2] = {1, status};
  call.kernel->sys_segment_write(call.thread, exit_ce, record, 0, 16);
  call.kernel->sys_futex_wake(call.thread, exit_ce, 0, UINT32_MAX);
}

// Pipe buffer layout.
struct PipeHeader {
  uint64_t mutex;
  uint64_t rpos;
  uint64_t wpos;
  uint64_t readers_open;
  uint64_t writers_open;
};
constexpr uint64_t kPipeWposOffset = 16;
constexpr uint64_t kPipeRposOffset = 8;
constexpr uint64_t kPipeDataOffset = sizeof(PipeHeader);

}  // namespace

int ProcessContext::PollSignals() {
  int handled = 0;
  for (;;) {
    Result<uint64_t> code = kernel->sys_self_next_alert(self);
    if (!code.ok()) {
      break;
    }
    auto it = signal_handlers.find(static_cast<int>(code.value()));
    if (it != signal_handlers.end()) {
      it->second(static_cast<int>(code.value()));
    }
    ++handled;
  }
  return handled;
}

// ---- FdTable -------------------------------------------------------------------

Result<int> FdTable::Alloc(ObjectId self, const FdSegState& init) {
  int fd = -1;
  for (int i = 0; i < kMaxFd; ++i) {
    if (fd_segs_[i] == kInvalidObject) {
      fd = i;
      break;
    }
  }
  if (fd < 0) {
    return Status::kNoSpace;
  }
  CreateSpec spec;
  spec.container = ids_.proc_ct;
  spec.label = seg_label_;
  spec.descrip = "fd" + std::to_string(fd);
  spec.quota = kObjectOverheadBytes + sizeof(FdSegState) + kPageSize;
  Result<ObjectId> seg = kernel_->sys_segment_create(self, spec, sizeof(FdSegState));
  if (!seg.ok()) {
    return seg.status();
  }
  // Descriptors may be shared across processes later: freeze the quota now
  // so hard links are possible (§3.3).
  Status st = kernel_->sys_obj_set_fixed_quota(self, ContainerEntry{ids_.proc_ct, seg.value()});
  if (st != Status::kOk) {
    return st;
  }
  fd_segs_[fd] = seg.value();
  st = Store(self, fd, init);
  if (st != Status::kOk) {
    fd_segs_[fd] = kInvalidObject;
    return st;
  }
  return fd;
}

Result<FdSegState> FdTable::Load(ObjectId self, int fd) const {
  if (fd < 0 || fd >= kMaxFd || fd_segs_[fd] == kInvalidObject) {
    return Status::kInvalidArg;
  }
  FdSegState st;
  Status s = kernel_->sys_segment_read(self, ContainerEntry{ids_.proc_ct, fd_segs_[fd]}, &st,
                                       0, sizeof(st));
  if (s != Status::kOk) {
    return s;
  }
  return st;
}

Status FdTable::Store(ObjectId self, int fd, const FdSegState& st) {
  return kernel_->sys_segment_write(self, ContainerEntry{ids_.proc_ct, fd_segs_[fd]}, &st, 0,
                                    sizeof(st));
}

Result<int> FdTable::OpenFile(ObjectId self, ObjectId dir, ObjectId file, uint64_t flags) {
  FdSegState st{};
  st.type = static_cast<uint64_t>(FdType::kFile);
  st.dir = dir;
  st.obj = file;
  st.open_flags = flags;
  return Alloc(self, st);
}

Result<int> FdTable::OpenConsole(ObjectId self, ObjectId root_ct, ObjectId console) {
  FdSegState st{};
  st.type = static_cast<uint64_t>(FdType::kConsole);
  st.buf_ct = root_ct;
  st.dir = console;
  return Alloc(self, st);
}

Result<std::pair<int, int>> FdTable::CreatePipe(ObjectId self) {
  CreateSpec spec;
  spec.container = ids_.proc_ct;
  spec.label = seg_label_;
  spec.descrip = "pipebuf";
  spec.quota = kObjectOverheadBytes + kPipeDataOffset + kPipeBufBytes + kPageSize;
  Result<ObjectId> buf = kernel_->sys_segment_create(self, spec,
                                                     kPipeDataOffset + kPipeBufBytes);
  if (!buf.ok()) {
    return buf.status();
  }
  Status st = kernel_->sys_obj_set_fixed_quota(self, ContainerEntry{ids_.proc_ct, buf.value()});
  if (st != Status::kOk) {
    return st;
  }
  PipeHeader h{};
  h.readers_open = 1;
  h.writers_open = 1;
  st = kernel_->sys_segment_write(self, ContainerEntry{ids_.proc_ct, buf.value()}, &h, 0,
                                  sizeof(h));
  if (st != Status::kOk) {
    return st;
  }
  FdSegState rd{};
  rd.type = static_cast<uint64_t>(FdType::kPipe);
  rd.obj = buf.value();
  rd.buf_ct = ids_.proc_ct;
  Result<int> rfd = Alloc(self, rd);
  if (!rfd.ok()) {
    return rfd.status();
  }
  FdSegState wr = rd;
  wr.write_end = 1;
  Result<int> wfd = Alloc(self, wr);
  if (!wfd.ok()) {
    return wfd.status();
  }
  return std::make_pair(rfd.value(), wfd.value());
}

Status FdTable::Close(ObjectId self, int fd) {
  Result<FdSegState> st = Load(self, fd);
  if (!st.ok()) {
    return st.status();
  }
  if (st.value().type == static_cast<uint64_t>(FdType::kPipe)) {
    ContainerEntry buf{st.value().buf_ct, st.value().obj};
    SegmentMutex mu(kernel_, buf, 0);
    if (mu.Lock(self)) {
      PipeHeader h;
      kernel_->sys_segment_read(self, buf, &h, 0, sizeof(h));
      if (st.value().write_end != 0) {
        --h.writers_open;
      } else {
        --h.readers_open;
      }
      kernel_->sys_segment_write(self, buf, &h, 0, sizeof(h));
      mu.Unlock(self);
      kernel_->sys_futex_wake(self, buf, kPipeWposOffset, UINT32_MAX);
      kernel_->sys_futex_wake(self, buf, kPipeRposOffset, UINT32_MAX);
    }
  }
  Status s = kernel_->sys_container_unref(self, ContainerEntry{ids_.proc_ct, fd_segs_[fd]});
  fd_segs_[fd] = kInvalidObject;
  return s;
}

Result<int> FdTable::Adopt(ObjectId self, ContainerEntry fd_seg) {
  int fd = -1;
  for (int i = 0; i < kMaxFd; ++i) {
    if (fd_segs_[i] == kInvalidObject) {
      fd = i;
      break;
    }
  }
  if (fd < 0) {
    return Status::kNoSpace;
  }
  // Share the very segment: hard-link it into our process container, so the
  // seek position is common and the descriptor dies only at the last close.
  Status st = kernel_->sys_container_link(self, ids_.proc_ct, fd_seg);
  if (st != Status::kOk && st != Status::kExists) {
    return st;
  }
  fd_segs_[fd] = fd_seg.object;
  // Pipes track the number of open ends.
  Result<FdSegState> state = Load(self, fd);
  if (state.ok() && state.value().type == static_cast<uint64_t>(FdType::kPipe)) {
    ContainerEntry buf{state.value().buf_ct, state.value().obj};
    SegmentMutex mu(kernel_, buf, 0);
    if (mu.Lock(self)) {
      PipeHeader h;
      kernel_->sys_segment_read(self, buf, &h, 0, sizeof(h));
      if (state.value().write_end != 0) {
        ++h.writers_open;
      } else {
        ++h.readers_open;
      }
      kernel_->sys_segment_write(self, buf, &h, 0, sizeof(h));
      mu.Unlock(self);
    }
  }
  return fd;
}

Result<ContainerEntry> FdTable::Entry(int fd) const {
  if (fd < 0 || fd >= kMaxFd || fd_segs_[fd] == kInvalidObject) {
    return Status::kInvalidArg;
  }
  return ContainerEntry{ids_.proc_ct, fd_segs_[fd]};
}

int FdTable::count() const {
  int n = 0;
  for (ObjectId seg : fd_segs_) {
    n += seg != kInvalidObject ? 1 : 0;
  }
  return n;
}

Result<uint64_t> FdTable::Read(ObjectId self, int fd, void* buf, uint64_t len) {
  return ReadTimeout(self, fd, buf, len, UINT32_MAX);
}

Result<uint64_t> FdTable::ReadTimeout(ObjectId self, int fd, void* buf, uint64_t len,
                                      uint32_t timeout_ms) {
  Result<FdSegState> st = Load(self, fd);
  if (!st.ok()) {
    return st.status();
  }
  switch (static_cast<FdType>(st.value().type)) {
    case FdType::kFile: {
      FileSystem fs(kernel_);
      Result<uint64_t> n = fs.ReadAt(self, st.value().dir, st.value().obj, buf,
                                     st.value().offset, len);
      if (!n.ok()) {
        return n.status();
      }
      FdSegState upd = st.value();
      upd.offset += n.value();
      Status s = Store(self, fd, upd);
      if (s != Status::kOk) {
        return s;
      }
      return n;
    }
    case FdType::kPipe:
      if (st.value().write_end != 0) {
        return Status::kInvalidArg;
      }
      return PipeRead(self, st.value(), buf, len, timeout_ms);
    case FdType::kConsole:
      return Status::kAgain;  // no console input in the simulator
    default:
      return Status::kInvalidArg;
  }
}

Result<uint64_t> FdTable::Write(ObjectId self, int fd, const void* buf, uint64_t len) {
  Result<FdSegState> st = Load(self, fd);
  if (!st.ok()) {
    return st.status();
  }
  switch (static_cast<FdType>(st.value().type)) {
    case FdType::kFile: {
      FileSystem fs(kernel_);
      Status s = fs.WriteAt(self, st.value().dir, st.value().obj, buf, st.value().offset, len);
      if (s != Status::kOk) {
        return s;
      }
      FdSegState upd = st.value();
      upd.offset += len;
      s = Store(self, fd, upd);
      if (s != Status::kOk) {
        return s;
      }
      return len;
    }
    case FdType::kPipe:
      if (st.value().write_end == 0) {
        return Status::kInvalidArg;
      }
      return PipeWrite(self, st.value(), buf, len);
    case FdType::kConsole: {
      // Route to the console device. The device id is stashed in open_flags
      // by OpenConsole callers via ProcessManager; fall back to discarding.
      if (st.value().dir != 0) {
        ContainerEntry dev{st.value().buf_ct, st.value().dir};
        std::string text(static_cast<const char*>(buf), len);
        Status s = kernel_->sys_console_write(self, dev, text);
        if (s != Status::kOk) {
          return s;
        }
      }
      return len;
    }
    default:
      return Status::kInvalidArg;
  }
}

Result<uint64_t> FdTable::Seek(ObjectId self, int fd, uint64_t pos) {
  Result<FdSegState> st = Load(self, fd);
  if (!st.ok()) {
    return st.status();
  }
  if (st.value().type != static_cast<uint64_t>(FdType::kFile)) {
    return Status::kInvalidArg;
  }
  FdSegState upd = st.value();
  upd.offset = pos;
  Status s = Store(self, fd, upd);
  if (s != Status::kOk) {
    return s;
  }
  return pos;
}

Status FdTable::EnableRingTransfers(ObjectId self) {
  if (ring_ != kInvalidObject) {
    return Status::kOk;  // idempotent: re-enabling must not strand the old ring
  }
  CreateSpec spec;
  spec.container = ids_.proc_ct;
  spec.label = seg_label_;
  spec.descrip = "fd-ring";
  spec.quota = 16 * kPageSize;
  Result<ObjectId> r = kernel_->sys_ring_create(self, spec, 16);
  if (!r.ok()) {
    return r.status();
  }
  ring_ = r.value();
  return Status::kOk;
}

bool FdTable::RingChunkLinked(ObjectId self, const SyscallReq* reqs, size_t cnt,
                              SyscallRes* res) {
  if (ring_ == kInvalidObject || cnt == 0) {
    return false;
  }
  ContainerEntry ring{ids_.proc_ct, ring_};
  std::vector<RingOp> ops(cnt);
  for (size_t i = 0; i < cnt; ++i) {
    ops[i].req = reqs[i];
    if (i + 1 < cnt) {
      ops[i].flags = kRingLinked;  // any failure cancels everything after it
    }
  }
  Result<uint64_t> t = kernel_->sys_ring_submit(self, ring, std::move(ops));
  if (!t.ok()) {
    return false;  // never accepted: the SubmitBatch fallback owns the chunk
  }
  // Accepted: from here the chain WILL execute — never fall back (the ops
  // may already have run; re-running them would double-apply the cursor
  // commit). The ops are all non-blocking, so completion is prompt; alerts
  // (signals) re-enter via the shared helper and surface after the chunk,
  // not mid-chunk. Terminal statuses (halted, ring torn down) are reported
  // by the kernel only once no worker holds this chunk's buffers — the
  // local PipeHeader the commit op points at — so returning on them is
  // safe.
  Status ws = RingWaitInterruptible(kernel_, self, ring, t.value());
  if (ws != Status::kOk) {
    for (size_t i = 0; i < cnt; ++i) {
      MakeRes(reqs[i], ws, &res[i]);  // halted / torn down mid-transfer
    }
    return true;
  }
  Result<std::vector<RingCompletion>> done =
      kernel_->sys_ring_reap(self, ring, static_cast<uint32_t>(cnt));
  if (!done.ok() || done.value().size() != cnt) {
    for (size_t i = 0; i < cnt; ++i) {
      MakeRes(reqs[i], Status::kInvalidArg, &res[i]);
    }
    return true;
  }
  uint64_t first = t.value() - cnt + 1;
  for (RingCompletion& c : done.value()) {
    size_t idx = static_cast<size_t>(c.seq - first);
    if (idx < cnt) {
      res[idx] = std::move(c.res);
    }
  }
  return true;
}

Result<uint64_t> FdTable::PipeRead(ObjectId self, const FdSegState& st, void* out,
                                   uint64_t len, uint32_t timeout_ms) {
  ContainerEntry buf{st.buf_ct, st.obj};
  SegmentMutex mu(kernel_, buf, 0);
  uint32_t waited = 0;
  for (;;) {
    if (!mu.Lock(self)) {
      return Status::kLabelCheckFailed;
    }
    PipeHeader h;
    Status s = kernel_->sys_segment_read(self, buf, &h, 0, sizeof(h));
    if (s != Status::kOk) {
      mu.Unlock(self);
      return s;
    }
    uint64_t avail = h.wpos - h.rpos;
    if (avail > 0) {
      uint64_t n = std::min(len, avail);
      uint8_t* dst = static_cast<uint8_t*>(out);
      // At most two segment reads (the run to the end of the ring, then the
      // wrapped remainder) plus the header commit — submitted as ONE batch,
      // so the whole transfer pays a single kernel lock round-trip and is
      // atomic against concurrent segment operations (the fig-12 IPC hot
      // path this PR's batched ABI exists for).
      uint64_t pos = h.rpos % kPipeBufBytes;
      uint64_t first = std::min(n, kPipeBufBytes - pos);
      h.rpos += n;
      SyscallReq reqs[3];
      SyscallRes res[3];
      size_t cnt = 0;
      size_t data_reads = 1;
      reqs[cnt++] = SegmentReadReq{buf, dst, kPipeDataOffset + pos, first};
      if (first < n) {
        reqs[cnt++] = SegmentReadReq{buf, dst + first, kPipeDataOffset, n - first};
        data_reads = 2;
      }
      // Commit only the rpos word: the header's mutex word (offset 0) is
      // CASed by *contenders* outside the pipe mutex, so writing the whole
      // snapshotted header back would clobber a locked-with-waiters mark
      // and cost the waiter its full wait slice.
      reqs[cnt++] = SegmentWriteReq{buf, &h.rpos, kPipeRposOffset, 8};
      // Ring mode: the chunk goes out as ONE linked chain — a failed data
      // read CANCELS the rpos commit, so there is nothing to roll back.
      // Sync mode: one batch, with the compensating rollback below.
      const bool via_ring = RingChunkLinked(self, reqs, cnt, res);
      if (!via_ring) {
        kernel_->SubmitBatch(self, std::span<const SyscallReq>(reqs, cnt),
                             std::span<SyscallRes>(res, cnt));
      }
      for (size_t i = 0; i < data_reads; ++i) {
        s = std::get<SegmentReadRes>(res[i]).status;
        if (s != Status::kOk) {
          // A data read failed (only possible if someone with modify access
          // shrank the segment) but the header commit in the same sync
          // batch may still have advanced rpos past bytes never delivered.
          // We hold the pipe mutex — no cooperating header mutator can
          // interleave — so restore the old rpos before reporting the
          // error. Best-effort by construction: a peer that shrinks or
          // freezes the shared buffer can corrupt the ring protocol
          // directly no matter what we do (the pipe, like the §5.1
          // directory format, is a cooperative user-level convention; the
          // kernel only guarantees labels). On the linked-chain path the
          // commit never ran (kCancelled) — no compensation.
          if (!via_ring) {
            h.rpos -= n;
            kernel_->sys_segment_write(self, buf, &h.rpos, kPipeRposOffset, 8);
          }
          mu.Unlock(self);
          return s;
        }
      }
      mu.Unlock(self);
      kernel_->sys_futex_wake(self, buf, kPipeRposOffset, UINT32_MAX);
      return n;
    }
    if (h.writers_open == 0) {
      mu.Unlock(self);
      return uint64_t{0};  // EOF
    }
    uint64_t seen_wpos = h.wpos;
    mu.Unlock(self);
    uint32_t slice = std::min<uint32_t>(100, timeout_ms - waited);
    Status ws = kernel_->sys_futex_wait(self, buf, kPipeWposOffset, seen_wpos, slice);
    if (ws == Status::kHalted || ws == Status::kLabelCheckFailed) {
      return ws;
    }
    waited += slice;
    if (waited >= timeout_ms) {
      return Status::kAgain;
    }
  }
}

Result<uint64_t> FdTable::PipeWrite(ObjectId self, const FdSegState& st, const void* in,
                                    uint64_t len) {
  ContainerEntry buf{st.buf_ct, st.obj};
  SegmentMutex mu(kernel_, buf, 0);
  const uint8_t* src = static_cast<const uint8_t*>(in);
  uint64_t written = 0;
  while (written < len) {
    if (!mu.Lock(self)) {
      return Status::kLabelCheckFailed;
    }
    PipeHeader h;
    Status s = kernel_->sys_segment_read(self, buf, &h, 0, sizeof(h));
    if (s != Status::kOk) {
      mu.Unlock(self);
      return s;
    }
    if (h.readers_open == 0) {
      mu.Unlock(self);
      return Status::kNoPerm;  // EPIPE
    }
    uint64_t space = kPipeBufBytes - (h.wpos - h.rpos);
    if (space > 0) {
      uint64_t n = std::min(len - written, space);
      uint64_t pos = h.wpos % kPipeBufBytes;
      uint64_t first = std::min(n, kPipeBufBytes - pos);
      // Data write(s) + cursor commit as ONE batch: a single kernel lock
      // round-trip per chunk (mirrors PipeRead above, including writing
      // only the wpos word — never the contender-owned mutex word).
      h.wpos += n;
      SyscallReq reqs[3];
      SyscallRes res[3];
      size_t cnt = 0;
      size_t data_writes = 1;
      reqs[cnt++] = SegmentWriteReq{buf, src + written, kPipeDataOffset + pos, first};
      if (first < n) {
        reqs[cnt++] = SegmentWriteReq{buf, src + written + first, kPipeDataOffset, n - first};
        data_writes = 2;
      }
      reqs[cnt++] = SegmentWriteReq{buf, &h.wpos, kPipeWposOffset, 8};
      const bool via_ring = RingChunkLinked(self, reqs, cnt, res);
      if (!via_ring) {
        kernel_->SubmitBatch(self, std::span<const SyscallReq>(reqs, cnt),
                             std::span<SyscallRes>(res, cnt));
      }
      for (size_t i = 0; i < data_writes; ++i) {
        s = std::get<SegmentWriteRes>(res[i]).status;
        if (s != Status::kOk) {
          // Mirror of PipeRead: undo the wpos advance the sync batch's
          // header commit may have published, or the reader would deliver
          // bytes the failed data write never stored (we hold the pipe
          // mutex, so no cooperating header mutator can interleave;
          // best-effort against a hostile peer, who could corrupt the ring
          // directly). The linked-chain path cancelled the commit instead.
          if (!via_ring) {
            h.wpos -= n;
            kernel_->sys_segment_write(self, buf, &h.wpos, kPipeWposOffset, 8);
          }
          mu.Unlock(self);
          return s;
        }
      }
      written += n;
      mu.Unlock(self);
      kernel_->sys_futex_wake(self, buf, kPipeWposOffset, UINT32_MAX);
      continue;
    }
    uint64_t seen_rpos = h.rpos;
    mu.Unlock(self);
    Status ws = kernel_->sys_futex_wait(self, buf, kPipeRposOffset, seen_rpos, 100);
    if (ws == Status::kHalted || ws == Status::kLabelCheckFailed) {
      return ws;
    }
  }
  return written;
}

// ---- ProcHandle ------------------------------------------------------------------

ProcHandle::~ProcHandle() {
  if (host_.joinable()) {
    host_.join();
  }
}

Result<int64_t> ProcHandle::Wait(ObjectId self, uint32_t timeout_ms) {
  ContainerEntry exit_ce{ids_.proc_ct, ids_.exit_seg};
  for (uint32_t waited = 0; waited < timeout_ms;) {
    uint64_t done = 0;
    Status st = kernel_->sys_segment_read(self, exit_ce, &done, 0, 8);
    if (st != Status::kOk) {
      return st;
    }
    if (done != 0) {
      int64_t status;
      st = kernel_->sys_segment_read(self, exit_ce, &status, 8, 8);
      if (st != Status::kOk) {
        return st;
      }
      if (host_.joinable()) {
        host_.join();
      }
      return status;
    }
    Status ws = kernel_->sys_futex_wait(self, exit_ce, 0, 0, 100);
    if (ws == Status::kHalted) {
      return ws;
    }
    waited += 100;
  }
  return Status::kTimedOut;
}

Status ProcHandle::Kill(ObjectId self, int signo) {
  // The gate-call sequence is three same-shard syscalls on `self` (pass the
  // signal number through the thread-local segment — the §3.5 argument
  // convention — then fetch the labels the request is built from): ONE
  // batch, one kernel lock round-trip.
  uint64_t code = static_cast<uint64_t>(signo);
  SyscallReq pre[3] = {SyscallReq{SelfLocalWriteReq{&code, 0, 8}},
                       SyscallReq{SelfGetLabelReq{}}, SyscallReq{SelfGetClearanceReq{}}};
  SyscallRes pre_res[3];
  kernel_->SubmitBatch(self, pre, pre_res);
  Status st = std::get<SelfLocalWriteRes>(pre_res[0]).status;
  if (st != Status::kOk) {
    return st;
  }
  SelfGetLabelRes& mine = std::get<SelfGetLabelRes>(pre_res[1]);
  SelfGetClearanceRes& myclear = std::get<SelfGetClearanceRes>(pre_res[2]);
  if (mine.status != Status::kOk || myclear.status != Status::kOk) {
    return mine.status != Status::kOk ? mine.status : myclear.status;
  }
  // Request the process's pr*/pw* for the duration of the call, then give
  // them back (dropping ownership is a label *raise*, so it is always
  // permitted).
  Label request = mine.label;
  request.set(ids_.pr, Level::kStar);
  request.set(ids_.pw, Level::kStar);
  st = kernel_->sys_gate_invoke(self, ContainerEntry{ids_.proc_ct, ids_.signal_gate}, request,
                                myclear.clearance, mine.label);
  if (st != Status::kOk) {
    return st;
  }
  // Restore label then clearance — one batch again (order preserved within
  // a batch, and both land on self's shard).
  SyscallReq post[2] = {SyscallReq{SelfSetLabelReq{mine.label}},
                        SyscallReq{SelfSetClearanceReq{myclear.clearance}}};
  SyscallRes post_res[2];
  kernel_->SubmitBatch(self, post, post_res);
  return Status::kOk;
}

Status ProcHandle::Destroy(ObjectId self) {
  // Resource revocation does not require any ability to observe or modify
  // the process — only write access to the containing container (§3.2).
  Result<ObjectId> parent = kernel_->sys_container_get_parent(self, ids_.proc_ct);
  if (!parent.ok()) {
    return parent.status();
  }
  return kernel_->sys_container_unref(self, ContainerEntry{parent.value(), ids_.proc_ct});
}

// ---- ProcessManager -----------------------------------------------------------------

ProcessManager::ProcessManager(const UnixEnv& env) : env_(env) {
  env_.kernel->RegisterGateEntry("unix.signal", SignalGateEntry);
  env_.kernel->RegisterGateEntry("unix.exit", ExitGateEntry);
}

void ProcessManager::RegisterProgram(const std::string& name, ProgramFn fn) {
  MutexLock lock(&programs_mu_);
  programs_[name] = std::move(fn);
}

bool ProcessManager::HasProgram(const std::string& name) const {
  MutexLock lock(&programs_mu_);
  return programs_.count(name) > 0;
}

Result<ObjectId> ProcessManager::InstallBinary(ObjectId self, FileSystem* fs, ObjectId dir,
                                               const std::string& filename,
                                               const std::string& program,
                                               const Label& label) {
  Result<ObjectId> file = fs->Create(self, dir, filename, label);
  if (!file.ok()) {
    return file.status();
  }
  std::string content = "#!histar " + program;
  Status st = fs->WriteAt(self, dir, file.value(), content.data(), 0, content.size());
  if (st != Status::kOk) {
    return st;
  }
  return file.value();
}

Result<ProcessIds> ProcessManager::CreateProcessObjects(ObjectId creator,
                                                        const std::string& name,
                                                        const ProcessOpts& opts) {
  Kernel* k = env_.kernel;
  ProcessIds ids;
  // Two fresh categories protect the process's secrecy (pr) and integrity
  // (pw); the creator owns them and passes ownership to the child thread.
  Result<CategoryId> pr = k->sys_cat_create(creator);
  Result<CategoryId> pw = k->sys_cat_create(creator);
  if (!pr.ok() || !pw.ok()) {
    return Status::kLabelCheckFailed;
  }
  ids.pr = pr.value();
  ids.pw = pw.value();

  // Taint propagates: a tainted creator can only spawn children at least as
  // tainted (the kernel's spawn rule enforces it; the library cooperates by
  // folding the creator's taint into everything it builds). This is how a
  // compromised scanner's helpers stay inside the v3 sandbox (§6.1).
  Label taint = opts.taint;
  Result<Label> creator_label = k->sys_self_get_label(creator);
  if (creator_label.ok()) {
    for (CategoryId c : creator_label.value().Categories()) {
      Level lvl = creator_label.value().get(c);
      if (lvl == Level::k2 || lvl == Level::k3) {
        taint.set(c, lvl);
      }
    }
  }
  Label proc_label = MergeEntries(Label(Level::k1, {{ids.pw, Level::k0}}), taint);
  Label internal_label =
      MergeEntries(Label(Level::k1, {{ids.pr, Level::k3}, {ids.pw, Level::k0}}), taint);

  CreateSpec pspec;
  pspec.container = opts.proc_parent != kInvalidObject ? opts.proc_parent : env_.proc_root;
  pspec.label = proc_label;
  pspec.descrip = name.substr(0, kDescripLen);
  pspec.quota = opts.quota;
  Result<ObjectId> proc_ct = k->sys_container_create(creator, pspec, 0);
  if (!proc_ct.ok()) {
    return proc_ct.status();
  }
  ids.proc_ct = proc_ct.value();

  CreateSpec ispec;
  ispec.container = ids.proc_ct;
  ispec.label = internal_label;
  ispec.descrip = "internal";
  ispec.quota = opts.quota / 2;
  Result<ObjectId> internal = k->sys_container_create(creator, ispec, 0);
  if (!internal.ok()) {
    return internal.status();
  }
  ids.internal_ct = internal.value();

  // Exit-status segment: world-readable, process-writable (Figure 6).
  CreateSpec espec;
  espec.container = ids.proc_ct;
  espec.label = proc_label;
  espec.descrip = "exit-status";
  espec.quota = kObjectOverheadBytes + kPageSize;
  Result<ObjectId> exit_seg = k->sys_segment_create(creator, espec, 16);
  if (!exit_seg.ok()) {
    return exit_seg.status();
  }
  ids.exit_seg = exit_seg.value();

  // Address space, heap and stack live in the internal container.
  CreateSpec aspec;
  aspec.container = ids.internal_ct;
  aspec.label = internal_label;
  aspec.descrip = "as";
  Result<ObjectId> as = k->sys_as_create(creator, aspec);
  if (!as.ok()) {
    return as.status();
  }
  ids.address_space = as.value();

  CreateSpec hspec;
  hspec.container = ids.internal_ct;
  hspec.label = internal_label;
  hspec.descrip = "heap";
  hspec.quota = kObjectOverheadBytes + 16 * kPageSize;
  Result<ObjectId> heap = k->sys_segment_create(creator, hspec, 16 * kPageSize);
  if (!heap.ok()) {
    return heap.status();
  }
  ids.heap = heap.value();
  hspec.descrip = "stack";
  Result<ObjectId> stack = k->sys_segment_create(creator, hspec, 16 * kPageSize);
  if (!stack.ok()) {
    return stack.status();
  }
  ids.stack = stack.value();

  std::vector<Mapping> mappings;
  mappings.push_back(Mapping{0x100000, ContainerEntry{ids.internal_ct, ids.heap}, 0, 16,
                             kMapRead | kMapWrite});
  mappings.push_back(Mapping{0x200000, ContainerEntry{ids.internal_ct, ids.stack}, 0, 16,
                             kMapRead | kMapWrite});
  mappings.push_back(Mapping{0x7f0000, ContainerEntry{ids.internal_ct, kLocalSegmentId}, 0, 1,
                             kMapRead | kMapWrite});
  Status st = k->sys_as_set(creator, ContainerEntry{ids.internal_ct, ids.address_space},
                            mappings);
  if (st != Status::kOk) {
    return st;
  }

  // The thread: owns pr/pw plus whatever extra ownership the caller grants,
  // tainted as requested. Its clearance covers the taint (the creator's own
  // clearance does too, by cat_create for fresh categories).
  Label tlabel = MergeEntries(
      Label(Level::k1, {{ids.pr, Level::kStar}, {ids.pw, Level::kStar}}), opts.extra_ownership);
  tlabel = MergeEntries(tlabel, taint);
  Label tclear(Level::k2, {{ids.pr, Level::k3}, {ids.pw, Level::k3}});
  for (CategoryId c : taint.Categories()) {
    tclear.set(c, Level::k3);
  }
  // Owned categories also get headroom so the thread can allocate objects
  // tainted in them (e.g. netd creating {nr3, …} buffers).
  for (CategoryId c : opts.extra_ownership.Categories()) {
    if (opts.extra_ownership.get(c) == Level::kStar) {
      tclear.set(c, Level::k3);
    }
  }
  // Clamp to the creator's clearance (spawn rule C_T' ⊑ C_T).
  Result<Label> creator_clear = k->sys_self_get_clearance(creator);
  if (!creator_clear.ok()) {
    return creator_clear.status();
  }
  tclear = tclear.Meet(creator_clear.value());
  for (CategoryId c : tlabel.Categories()) {
    // Clearance must dominate the label.
    if (!LevelLeq(tlabel.get(c), tclear.get(c))) {
      tclear.set(c, tlabel.get(c) == Level::kStar ? tclear.get(c) : tlabel.get(c));
    }
  }
  CreateSpec tspec;
  tspec.container = ids.proc_ct;
  tspec.descrip = name.substr(0, kDescripLen);
  tspec.quota = 64 * kPageSize;
  Result<ObjectId> thread = k->sys_thread_create(creator, tspec, tlabel, tclear);
  if (!thread.ok()) {
    return thread.status();
  }
  ids.thread = thread.value();

  // Signal gate: carries pr*/pw* so that authorized signalers can alert the
  // process's threads; optionally clearance-guarded by `signal_guard`. The
  // gate label and clearance fold in the process taint — a tainted creator
  // (e.g. the sandboxed scanner spawning a helper) could not otherwise
  // satisfy L_T ⊑ L_G, and invoking a tainted process's signal gate rightly
  // taints the signaler.
  Label glabel = MergeEntries(
      Label(Level::k1, {{ids.pr, Level::kStar}, {ids.pw, Level::kStar}}), taint);
  Label gclear(Level::k2);
  for (CategoryId c : taint.Categories()) {
    gclear.set(c, Level::k3);
  }
  if (opts.signal_guard != kInvalidCategory) {
    glabel.set(opts.signal_guard, Level::kStar);
    gclear.set(opts.signal_guard, Level::k0);
  }
  CreateSpec gspec;
  gspec.container = ids.proc_ct;
  gspec.descrip = "signal-gate";
  Result<ObjectId> gate = k->sys_gate_create(creator, gspec, glabel, gclear, "unix.signal",
                                             {ids.proc_ct, ids.thread});
  if (!gate.ok()) {
    return gate.status();
  }
  ids.signal_gate = gate.value();

  // Exit untainting gate (§5.8): pre-authorizes the one-bit "this process
  // exited, with this status" leak in exactly the categories the spawner
  // (their owner) lists. Processes tainted at spawn don't need it — their
  // exit segment already carries the taint — and wrap installs none.
  if (!opts.exit_untaint.empty()) {
    Label xlabel = glabel;
    for (CategoryId c : opts.exit_untaint) {
      xlabel.set(c, Level::kStar);
    }
    Label xclear = gclear;
    for (CategoryId c : opts.exit_untaint) {
      xclear.set(c, Level::k3);  // a thread tainted up to 3 may still invoke
    }
    CreateSpec xspec;
    xspec.container = ids.proc_ct;
    xspec.descrip = "exit-gate";
    Result<ObjectId> xgate = k->sys_gate_create(creator, xspec, xlabel, xclear, "unix.exit",
                                                {ids.proc_ct, ids.exit_seg});
    if (!xgate.ok()) {
      return xgate.status();
    }
    ids.exit_gate = xgate.value();
  }
  return ids;
}

ProcessContext ProcessManager::MakeContext(const ProcessIds& ids,
                                           const std::vector<std::string>& args) {
  ProcessContext ctx;
  ctx.kernel = env_.kernel;
  ctx.env = env_;
  ctx.ids = ids;
  ctx.self = ids.thread;
  ctx.fs = FileSystem(env_.kernel);
  ctx.cwd = env_.fs_root;
  ctx.args = args;
  ctx.mgr = this;
  return ctx;
}

void ProcessManager::Exit(ProcessContext& ctx, int64_t status) {
  Kernel* k = env_.kernel;
  ContainerEntry exit_ce{ctx.ids.proc_ct, ctx.ids.exit_seg};
  int64_t data[2] = {1, status};
  // Status write + futex wake in one submission. The wake entry runs even
  // if the write fails its label check, but it performs the same modify
  // check itself and fails identically — no observable difference, and the
  // happy path saves a kernel entry.
  SyscallReq reqs[2] = {SyscallReq{SegmentWriteReq{exit_ce, data, 0, 16}},
                        SyscallReq{FutexWakeReq{exit_ce, 0, UINT32_MAX}}};
  SyscallRes res[2];
  k->SubmitBatch(ctx.self, reqs, res);
  Status st = std::get<SegmentWriteRes>(res[0]).status;
  if (st == Status::kOk) {
    // Waking the futex told the parent we are done — permitted directly
    // because the exit segment carries the process taint (the parent can
    // only see it if it could already see the taint categories).
  } else if (st == Status::kLabelCheckFailed && ctx.ids.exit_gate != kInvalidObject) {
    // The thread tainted itself after launch and can no longer write the
    // untainted exit segment. If the spawner installed an exit untainting
    // gate (§5.8), declassify "we exited" through it.
    k->sys_self_local_write(ctx.self, &status, 16, 8);
    Result<Label> mine = k->sys_self_get_label(ctx.self);
    Result<Label> clear = k->sys_self_get_clearance(ctx.self);
    Result<Label> glabel =
        k->sys_obj_get_label(ctx.self, ContainerEntry{ctx.ids.proc_ct, ctx.ids.exit_gate});
    if (mine.ok() && clear.ok() && glabel.ok()) {
      Label request = GateFloorMemo::Global().Floor(mine.value(), glabel.value());
      // The clearance must dominate the requested label's numeric (taint)
      // entries; Join with `request` does exactly that, since ⋆ is low.
      k->sys_gate_invoke(ctx.self, ContainerEntry{ctx.ids.proc_ct, ctx.ids.exit_gate}, request,
                         clear.value().Join(request), mine.value());
    }
  }
  k->sys_self_halt(ctx.self);
}

Result<std::unique_ptr<ProcHandle>> ProcessManager::Launch(ProcessContext& parent,
                                                           ProgramFn fn,
                                                           const std::vector<std::string>& args,
                                                           const ProcessOpts& opts,
                                                           bool copy_parent_image) {
  Kernel* k = env_.kernel;
  std::string name = args.empty() ? "proc" : args[0];
  ProcessOpts effective = opts;
  if (effective.proc_parent == kInvalidObject) {
    effective.proc_parent = parent.child_proc_parent;  // may still be invalid
  }
  Result<ProcessIds> ids = CreateProcessObjects(parent.self, name, effective);
  if (!ids.ok()) {
    return ids.status();
  }
  Label fd_label = MergeEntries(Label(), opts.taint);

  auto ctx = std::make_unique<ProcessContext>(MakeContext(ids.value(), args));
  ctx->fds = std::make_unique<FdTable>(k, ids.value(), fd_label);
  ctx->fs = parent.fs;  // copies the mount table (Plan 9 style, §5.1)
  ctx->cwd = parent.cwd;
  ctx->child_proc_parent = effective.proc_parent;

  if (copy_parent_image) {
    // fork(): copy the parent's writable segments into the child and share
    // every open descriptor. This is the expensive path of §7.1.
    Label child_internal = MergeEntries(
        Label(Level::k1,
              {{ids.value().pr, Level::k3}, {ids.value().pw, Level::k0}}),
        opts.taint);
    for (ObjectId* seg : {&ctx->ids.heap, &ctx->ids.stack}) {
      ObjectId src = (seg == &ctx->ids.heap) ? parent.ids.heap : parent.ids.stack;
      CreateSpec cspec;
      cspec.container = ids.value().internal_ct;
      cspec.label = child_internal;
      cspec.descrip = "fork-copy";
      cspec.quota = kObjectOverheadBytes + 17 * kPageSize;
      Result<ObjectId> copy = k->sys_segment_copy(
          parent.self, cspec, ContainerEntry{parent.ids.internal_ct, src});
      if (!copy.ok()) {
        return copy.status();
      }
      // Replace the fresh segment in the AS with the copy.
      k->sys_container_unref(parent.self, ContainerEntry{ids.value().internal_ct, *seg});
      *seg = copy.value();
    }
    std::vector<Mapping> mappings;
    mappings.push_back(Mapping{0x100000, ContainerEntry{ctx->ids.internal_ct, ctx->ids.heap},
                               0, 16, kMapRead | kMapWrite});
    mappings.push_back(Mapping{0x200000, ContainerEntry{ctx->ids.internal_ct, ctx->ids.stack},
                               0, 16, kMapRead | kMapWrite});
    mappings.push_back(Mapping{0x7f0000,
                               ContainerEntry{ctx->ids.internal_ct, kLocalSegmentId}, 0, 1,
                               kMapRead | kMapWrite});
    Status st = k->sys_as_set(parent.self,
                              ContainerEntry{ctx->ids.internal_ct, ctx->ids.address_space},
                              mappings);
    if (st != Status::kOk) {
      return st;
    }
  }

  // Plumb inherited descriptors (fork's sharing, or a launcher's pipes).
  for (const ContainerEntry& fd_seg : opts.inherit_fds) {
    Result<int> adopted = ctx->fds->Adopt(parent.self, fd_seg);
    if (!adopted.ok()) {
      return adopted.status();
    }
  }

  auto handle = std::make_unique<ProcHandle>(k, ctx->ids);
  ProcessContext* ctx_raw = ctx.release();
  ProcessManager* mgr = this;
  std::thread host = RunOnHostThread(k, ctx_raw->ids.thread, [mgr, ctx_raw, fn]() {
    std::unique_ptr<ProcessContext> owned(ctx_raw);
    owned->kernel->sys_self_set_as(owned->self,
                                   ContainerEntry{owned->ids.internal_ct,
                                                  owned->ids.address_space});
    int64_t status = fn(*owned);
    mgr->Exit(*owned, status);
  });
  handle->AttachHost(std::move(host));
  return handle;
}

Result<std::unique_ptr<ProcHandle>> ProcessManager::Spawn(ProcessContext& parent,
                                                          const std::string& program,
                                                          const std::vector<std::string>& args,
                                                          const ProcessOpts& opts) {
  ProgramFn fn;
  {
    MutexLock lock(&programs_mu_);
    auto it = programs_.find(program);
    if (it == programs_.end()) {
      return Status::kNotFound;
    }
    fn = it->second;
  }
  std::vector<std::string> full_args = args;
  if (full_args.empty()) {
    full_args.push_back(program);
  }
  return Launch(parent, fn, full_args, opts, /*copy_parent_image=*/false);
}

Result<std::unique_ptr<ProcHandle>> ProcessManager::SpawnPath(
    ProcessContext& parent, const std::string& path, const std::vector<std::string>& args,
    const ProcessOpts& opts) {
  Result<std::pair<ObjectId, std::string>> loc =
      parent.fs.WalkParent(parent.self, parent.cwd, path);
  if (!loc.ok()) {
    return loc.status();
  }
  Result<ObjectId> file = parent.fs.Lookup(parent.self, loc.value().first, loc.value().second);
  if (!file.ok()) {
    return file.status();
  }
  char buf[128] = {};
  Result<uint64_t> n = parent.fs.ReadAt(parent.self, loc.value().first, file.value(), buf, 0,
                                        sizeof(buf) - 1);
  if (!n.ok()) {
    return n.status();
  }
  std::string content(buf, n.value());
  const std::string magic = "#!histar ";
  if (content.rfind(magic, 0) != 0) {
    return Status::kNoPerm;  // ENOEXEC
  }
  std::string program = content.substr(magic.size());
  std::vector<std::string> full_args = args;
  if (full_args.empty()) {
    full_args.push_back(path);
  }
  return Spawn(parent, program, full_args, opts);
}

Result<std::unique_ptr<ProcHandle>> ProcessManager::Fork(
    ProcessContext& parent, std::function<int64_t(ProcessContext&)> child_body) {
  ProcessOpts opts;
  // Share every open descriptor with the child: the fd *segments* are
  // hard-linked into the child's container, so seek positions stay common
  // and a descriptor dies only when every process has closed it (§5.3).
  if (parent.fds != nullptr) {
    for (int fd = 0; fd < 64; ++fd) {
      Result<ContainerEntry> e = parent.fds->Entry(fd);
      if (e.ok()) {
        opts.inherit_fds.push_back(e.value());
      }
    }
  }
  return Launch(parent, std::move(child_body), parent.args, opts, /*copy_parent_image=*/true);
}

Result<int64_t> ProcessManager::Exec(ProcessContext& ctx, const std::string& path,
                                     const std::vector<std::string>& args) {
  Kernel* k = env_.kernel;
  Result<std::pair<ObjectId, std::string>> loc = ctx.fs.WalkParent(ctx.self, ctx.cwd, path);
  if (!loc.ok()) {
    return loc.status();
  }
  Result<ObjectId> file = ctx.fs.Lookup(ctx.self, loc.value().first, loc.value().second);
  if (!file.ok()) {
    return file.status();
  }
  char buf[128] = {};
  Result<uint64_t> n =
      ctx.fs.ReadAt(ctx.self, loc.value().first, file.value(), buf, 0, sizeof(buf) - 1);
  if (!n.ok()) {
    return n.status();
  }
  std::string content(buf, n.value());
  const std::string magic = "#!histar ";
  if (content.rfind(magic, 0) != 0) {
    return Status::kNoPerm;
  }
  std::string program = content.substr(magic.size());
  ProgramFn fn;
  {
    MutexLock lock(&programs_mu_);
    auto it = programs_.find(program);
    if (it == programs_.end()) {
      return Status::kNotFound;
    }
    fn = it->second;
  }
  // Replace the image: fresh AS, heap and stack; drop the old ones. This is
  // the real cost of exec on HiStar — a pile of object operations (§7.1).
  Label internal_label(Level::k1, {{ctx.ids.pr, Level::k3}, {ctx.ids.pw, Level::k0}});
  CreateSpec aspec;
  aspec.container = ctx.ids.internal_ct;
  aspec.label = internal_label;
  aspec.descrip = "as-exec";
  Result<ObjectId> as = k->sys_as_create(ctx.self, aspec);
  if (!as.ok()) {
    return as.status();
  }
  CreateSpec hspec;
  hspec.container = ctx.ids.internal_ct;
  hspec.label = internal_label;
  hspec.descrip = "heap";
  hspec.quota = kObjectOverheadBytes + 16 * kPageSize;
  Result<ObjectId> heap = k->sys_segment_create(ctx.self, hspec, 16 * kPageSize);
  if (!heap.ok()) {
    return heap.status();
  }
  hspec.descrip = "stack";
  Result<ObjectId> stack = k->sys_segment_create(ctx.self, hspec, 16 * kPageSize);
  if (!stack.ok()) {
    return stack.status();
  }
  std::vector<Mapping> mappings;
  mappings.push_back(Mapping{0x100000, ContainerEntry{ctx.ids.internal_ct, heap.value()}, 0,
                             16, kMapRead | kMapWrite});
  mappings.push_back(Mapping{0x200000, ContainerEntry{ctx.ids.internal_ct, stack.value()}, 0,
                             16, kMapRead | kMapWrite});
  mappings.push_back(Mapping{0x7f0000, ContainerEntry{ctx.ids.internal_ct, kLocalSegmentId},
                             0, 1, kMapRead | kMapWrite});
  Status st = k->sys_as_set(ctx.self, ContainerEntry{ctx.ids.internal_ct, as.value()},
                            mappings);
  if (st != Status::kOk) {
    return st;
  }
  st = k->sys_self_set_as(ctx.self, ContainerEntry{ctx.ids.internal_ct, as.value()});
  if (st != Status::kOk) {
    return st;
  }
  k->sys_container_unref(ctx.self, ContainerEntry{ctx.ids.internal_ct, ctx.ids.heap});
  k->sys_container_unref(ctx.self, ContainerEntry{ctx.ids.internal_ct, ctx.ids.stack});
  k->sys_container_unref(ctx.self, ContainerEntry{ctx.ids.internal_ct, ctx.ids.address_space});
  ctx.ids.address_space = as.value();
  ctx.ids.heap = heap.value();
  ctx.ids.stack = stack.value();
  ctx.args = args.empty() ? std::vector<std::string>{path} : args;
  ctx.signal_handlers.clear();
  return fn(ctx);
}

}  // namespace histar
