#include "src/unixlib/unix.h"

namespace histar {

std::unique_ptr<UnixWorld> UnixWorld::Boot(Kernel* kernel) {
  auto w = std::unique_ptr<UnixWorld>(new UnixWorld());
  w->env_.kernel = kernel;

  // "init": the first thread, with the conventional label {1} and clearance
  // {2}. Note: no superuser — init holds no category anyone else lacks; its
  // only distinction is write access to the root container.
  w->init_ = kernel->BootstrapThread(Label(Level::k1), Label(Level::k2), "init");

  // Console (TTY) device, writable by default.
  w->env_.console = kernel->BootstrapDevice(DeviceKind::kConsole, Label(), "console");

  w->fs_ = std::make_unique<FileSystem>(kernel);
  Result<ObjectId> root = w->fs_->MakeRoot(w->init_, kernel->root_container(), Label(),
                                           256 << 20);
  if (!root.ok()) {
    return nullptr;
  }
  w->env_.fs_root = root.value();

  Result<ObjectId> bin = w->fs_->MakeDir(w->init_, w->env_.fs_root, "bin", Label(), 16 << 20);
  Result<ObjectId> tmp = w->fs_->MakeDir(w->init_, w->env_.fs_root, "tmp", Label(), 64 << 20);
  Result<ObjectId> home = w->fs_->MakeDir(w->init_, w->env_.fs_root, "home", Label(),
                                          64 << 20);
  if (!bin.ok() || !tmp.ok() || !home.ok()) {
    return nullptr;
  }
  w->bin_ = bin.value();
  w->tmp_ = tmp.value();
  w->home_ = home.value();

  // Processes live under /proc-ish container in the root.
  CreateSpec pspec;
  pspec.container = kernel->root_container();
  pspec.label = Label();
  pspec.descrip = "procs";
  pspec.quota = 512 << 20;
  Result<ObjectId> procs_ct = kernel->sys_container_create(w->init_, pspec, 0);
  if (!procs_ct.ok()) {
    return nullptr;
  }
  w->env_.proc_root = procs_ct.value();

  w->procs_ = std::make_unique<ProcessManager>(w->env_);

  // Give init itself a process-shaped context so it can spawn children.
  ProcessOpts opts;
  Result<ProcessIds> init_proc = w->procs_->CreateProcessObjects(w->init_, "init-proc", opts);
  if (!init_proc.ok()) {
    return nullptr;
  }
  w->init_ctx_ = std::make_unique<ProcessContext>(
      w->procs_->MakeContext(init_proc.value(), {"init"}));
  w->init_ctx_->fds = std::make_unique<FdTable>(kernel, init_proc.value(), Label());
  // init runs on the boot thread, not the process thread — rebind the
  // context to the boot thread, which owns strictly more than the process
  // thread needs since it created every category involved.
  w->init_ctx_->self = w->init_;
  return w;
}

Result<UnixUser> UnixWorld::AddUser(const std::string& name) {
  Kernel* k = env_.kernel;
  UnixUser u;
  u.name = name;
  Result<CategoryId> ur = k->sys_cat_create(init_);
  Result<CategoryId> uw = k->sys_cat_create(init_);
  if (!ur.ok() || !uw.ok()) {
    return Status::kLabelCheckFailed;
  }
  u.ur = ur.value();
  u.uw = uw.value();
  Result<ObjectId> home = fs_->MakeDir(init_, home_, name, u.FileLabel(), 16 << 20);
  if (!home.ok()) {
    return home.status();
  }
  u.home = home.value();
  return u;
}

}  // namespace histar
