// The user-level file system (paper §5.1).
//
// Entirely untrusted library code: files are segments, directories are
// containers holding a special *directory segment* that maps names to object
// IDs. Permissions are labels, enforced by the kernel — this library can be
// buggy or malicious and only its caller suffers.
//
// Directory segment layout (fixed-size records, like the real thing):
//   header: [mutex u64][generation u64][busy u64][count u64]
//   entry:  [objid u64][in_use u64][name char[48]]   (64 bytes each)
//
// Directory updates take the segment mutex and bump the generation; readers
// who cannot write the directory obtain a consistent snapshot by re-reading
// the generation and busy flag around each entry (paper §5.1).
//
// The directory segment's object ID is stored in the first 8 bytes of the
// directory container's metadata. File modification times live in the file
// segment's metadata.
#ifndef SRC_UNIXLIB_FS_H_
#define SRC_UNIXLIB_FS_H_

#include <string>
#include <utility>
#include <vector>

#include "src/kernel/kernel.h"

namespace histar {

inline constexpr size_t kMaxFileName = 47;
inline constexpr uint64_t kDefaultFileQuota = 64 * 1024;
inline constexpr uint64_t kDefaultDirQuota = 16 << 20;

// A mount table: overlays ⟨directory, name⟩ → container, like Plan 9. Each
// process owns a copy (a segment in the real system; a copyable value here,
// faithfully copy-on-fork).
struct MountEntry {
  ObjectId dir = kInvalidObject;
  std::string name;
  ObjectId target = kInvalidObject;
};

class MountTable {
 public:
  void Mount(ObjectId dir, const std::string& name, ObjectId target);
  void Unmount(ObjectId dir, const std::string& name);
  // Returns the mount target covering ⟨dir,name⟩ or kInvalidObject.
  ObjectId Resolve(ObjectId dir, const std::string& name) const;

 private:
  std::vector<MountEntry> entries_;
};

class FileSystem {
 public:
  explicit FileSystem(Kernel* kernel) : kernel_(kernel) {}

  // Creates a directory (container + directory segment) inside `parent` with
  // the given label; returns the new container id.
  Result<ObjectId> MakeDir(ObjectId self, ObjectId parent, const std::string& name,
                           const Label& label, uint64_t quota = kDefaultDirQuota);
  // Creates the filesystem root (a directory not named inside any parent
  // directory segment).
  Result<ObjectId> MakeRoot(ObjectId self, ObjectId parent_container, const Label& label,
                            uint64_t quota = kDefaultDirQuota);

  // Creates an empty file with the given label; the name is declassified to
  // anyone who can read the directory (the §5.8 "file creation" leak, which
  // is why high-secrecy setups route creation through an untainting gate).
  Result<ObjectId> Create(ObjectId self, ObjectId dir, const std::string& name,
                          const Label& label, uint64_t quota = kDefaultFileQuota);

  // Name → object id. Consults the mount table first.
  Result<ObjectId> Lookup(ObjectId self, ObjectId dir, const std::string& name);

  // Removes the name and unreferences the object.
  Status Unlink(ObjectId self, ObjectId dir, const std::string& name);

  // Atomic rename within one directory (mutex-protected, §5.1).
  Status Rename(ObjectId self, ObjectId dir, const std::string& from, const std::string& to);

  // Lock-free consistent directory listing (generation/busy protocol).
  Result<std::vector<std::pair<std::string, ObjectId>>> ReadDir(ObjectId self, ObjectId dir);

  // Slash-separated path resolution from `root`; "." and ".." supported
  // (".." via container_get_parent).
  Result<ObjectId> Walk(ObjectId self, ObjectId root, const std::string& path);
  // As Walk, but resolves to ⟨containing dir, leaf name⟩ for create/unlink.
  Result<std::pair<ObjectId, std::string>> WalkParent(ObjectId self, ObjectId root,
                                                      const std::string& path);

  // ---- file content ops (file = segment) ------------------------------------
  Result<uint64_t> FileSize(ObjectId self, ObjectId dir, ObjectId file);
  Result<uint64_t> ReadAt(ObjectId self, ObjectId dir, ObjectId file, void* buf, uint64_t off,
                          uint64_t len);
  // Writes, growing the file (and, if needed, its quota out of `dir`'s) —
  // the §5.1 "extending a file may require increasing the segment's quota".
  Status WriteAt(ObjectId self, ObjectId dir, ObjectId file, const void* buf, uint64_t off,
                 uint64_t len);
  Status Truncate(ObjectId self, ObjectId dir, ObjectId file, uint64_t len);

  // fsync of one file: write-ahead-log just that object. fsync of a
  // directory (or O_SYNC creation): checkpoint the entire system state —
  // exactly the §7.1 behavior that makes per-file sync expensive.
  Status SyncFile(ObjectId self, ObjectId dir, ObjectId file);
  Status SyncEverything(ObjectId self);

  // chmod/chown/chgrp (paper §9): object labels are immutable, so relabeling
  // is a *copy* — the directory entry swings to a fresh segment carrying
  // `new_label` and the old object is unreferenced, which "revokes all open
  // file descriptors" (any holder of the old id loses it). The caller must
  // be able to read the old file and write the directory. Returns the new
  // object id.
  Result<ObjectId> Relabel(ObjectId self, ObjectId dir, const std::string& name,
                           const Label& new_label);

  MountTable& mounts() { return mounts_; }

  // Opt-in ring-backed async mode for directory scans (PR 5): creates a
  // submission ring (label {1}) in `container` and switches ScanDirRecords
  // to a double-buffered pipeline — window w's record reads execute on a
  // kernel worker while this thread parses window w-1's entries. The ring
  // is single-consumer: one FileSystem instance, used from one thread at a
  // time (the per-process usage pattern); copies of this FileSystem start
  // with async scans DISABLED for exactly that reason. Scans fall back to
  // the synchronous batched path whenever the ring refuses a submission
  // (e.g. a tainted caller that cannot modify the {1} ring).
  Status EnableAsyncScans(ObjectId self, ObjectId container);
  bool async_scans_enabled() const { return scan_ring_.ring != kInvalidObject; }

  // Updates the mtime stamp in the file's metadata. Public so tests can
  // verify the no-atime design decision (§9: HiStar keeps mtime, not atime).
  Status TouchMtime(ObjectId self, ObjectId dir, ObjectId file, uint64_t mtime);
  Result<uint64_t> GetMtime(ObjectId self, ObjectId dir, ObjectId file);

 private:
  struct DirHeader {
    uint64_t mutex;
    uint64_t generation;
    uint64_t busy;
    uint64_t count;
  };
  struct DirEntry {
    uint64_t objid;
    uint64_t in_use;
    char name[48];
  };
  static_assert(sizeof(DirHeader) == 32);
  static_assert(sizeof(DirEntry) == 64);

  // Finds the directory segment for container `dir` (from its metadata).
  Result<ObjectId> DirSegment(ObjectId self, ObjectId dir);

  // Batched scan over the first `n` directory records of `seg`: reads them
  // in kDirScanBatch-sized SubmitBatch groups (one kernel lock round-trip
  // per group) and invokes fn(slot, entry) on each; fn returns false to
  // stop early. Returns the first read error, else kOk. Shared by FindEntry
  // and ReadDir so the two scans cannot drift. Defined in fs.cc (both users
  // live there).
  template <typename Fn>
  Status ScanDirRecords(ObjectId self, ContainerEntry seg, uint64_t n, Fn&& fn);

  // Entry scan helpers; `slot_out` receives the matching or first-free slot.
  Result<ObjectId> FindEntry(ObjectId self, ContainerEntry seg, const std::string& name,
                             uint64_t* slot_out);

  Status WriteEntry(ObjectId self, ContainerEntry seg, uint64_t slot, const DirEntry& e);
  Status BumpGeneration(ObjectId self, ContainerEntry seg, int64_t busy_delta);

  // Handle of the async-scan ring. Deliberately NOT propagated by copy: a
  // ring's wait/reap pair belongs to one consumer, and a forked process
  // copying its parent's FileSystem (mount table and all) must not start
  // reaping the parent's completions — copies begin with async scans off.
  struct ScanRing {
    ObjectId ring = kInvalidObject;
    ObjectId ct = kInvalidObject;
    ScanRing() = default;
    ScanRing(const ScanRing&) {}
    ScanRing& operator=(const ScanRing&) {
      ring = kInvalidObject;
      ct = kInvalidObject;
      return *this;
    }
  };

  Kernel* kernel_;
  MountTable mounts_;
  ScanRing scan_ring_;
};

}  // namespace histar

#endif  // SRC_UNIXLIB_FS_H_
