// User-level mutex built on the kernel futex (paper §4.1: "IPC support,
// aside from shared memory and gates, is limited to a memory-based futex
// synchronization primitive, on which the user-level library implements
// mutexes").
#ifndef SRC_UNIXLIB_MUTEX_H_
#define SRC_UNIXLIB_MUTEX_H_

#include "src/kernel/kernel.h"

namespace histar {

// A mutex living at byte `offset` of a shared segment. States: 0 free,
// 1 locked, 2 locked-with-waiters (the classic three-state futex mutex).
class SegmentMutex {
 public:
  SegmentMutex(Kernel* kernel, ContainerEntry seg, uint64_t offset)
      : kernel_(kernel), seg_(seg), offset_(offset) {}

  // Returns false if the segment is inaccessible (label denial) — a thread
  // that cannot write the directory cannot take its lock (§5.1).
  bool Lock(ObjectId self) {
    for (;;) {
      uint64_t expected = 0;
      if (CompareExchange(self, 0, 1, &expected)) {
        return true;
      }
      if (expected == ~uint64_t{0}) {
        return false;  // access failure
      }
      // Mark contended and sleep.
      uint64_t observed;
      if (!CompareExchange(self, 1, 2, &observed) && observed == 0) {
        continue;  // became free; retry fast path
      }
      kernel_->sys_futex_wait(self, seg_, offset_, 2, 50);
    }
  }

  void Unlock(ObjectId self) {
    uint64_t v = Load(self);
    Store(self, 0);
    if (v == 2) {
      kernel_->sys_futex_wake(self, seg_, offset_, 1);
    }
  }

 private:
  // The simulator has no shared-memory atomics across the syscall boundary;
  // segment words are only mutated under these helpers, which are serialized
  // by the kernel's object lock per call. The race window between Load and
  // Store mirrors a non-atomic RMW; it is acceptable here because every
  // mutator follows the same protocol and the futex wait re-validates.
  bool CompareExchange(ObjectId self, uint64_t want, uint64_t to, uint64_t* observed) {
    uint64_t v = Load(self);
    *observed = v;
    if (v != want) {
      return false;
    }
    if (!StoreChecked(self, to)) {
      // Read allowed but write denied (e.g. a tainted thread on an untainted
      // directory): report as access failure, not contention, or Lock spins.
      *observed = ~uint64_t{0};
      return false;
    }
    return true;
  }

  uint64_t Load(ObjectId self) {
    uint64_t v = ~uint64_t{0};
    if (kernel_->sys_segment_read(self, seg_, &v, offset_, 8) != Status::kOk) {
      return ~uint64_t{0};
    }
    return v;
  }

  void Store(ObjectId self, uint64_t v) { (void)StoreChecked(self, v); }

  bool StoreChecked(ObjectId self, uint64_t v) {
    return kernel_->sys_segment_write(self, seg_, &v, offset_, 8) == Status::kOk;
  }

  Kernel* kernel_;
  ContainerEntry seg_;
  uint64_t offset_;
};

}  // namespace histar

#endif  // SRC_UNIXLIB_MUTEX_H_
