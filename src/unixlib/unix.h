// Boot helper: assembles a complete Unix-like world on top of the kernel —
// console, file system root, /bin, /tmp, /proc analogue, users (§5.4) — and
// hands back a ProcessContext for "init". Everything here is untrusted
// library code issuing plain syscalls.
#ifndef SRC_UNIXLIB_UNIX_H_
#define SRC_UNIXLIB_UNIX_H_

#include <memory>
#include <string>

#include "src/kernel/kernel.h"
#include "src/unixlib/fs.h"
#include "src/unixlib/process.h"

namespace histar {

// One Unix user: a pair of categories ur (read privilege) and uw (write
// privilege). Threads acting for the user own both; the user's files are
// labeled {ur3, uw0, 1} (§5.4).
struct UnixUser {
  std::string name;
  CategoryId ur = kInvalidCategory;
  CategoryId uw = kInvalidCategory;
  ObjectId home = kInvalidObject;  // home directory container

  Label FileLabel() const {
    return Label(Level::k1, {{ur, Level::k3}, {uw, Level::k0}});
  }
  Label OwnershipEntries() const {
    return Label(Level::k1, {{ur, Level::kStar}, {uw, Level::kStar}});
  }
};

class UnixWorld {
 public:
  // Boots a world inside `kernel`: creates the init thread (label {1},
  // clearance {2}), console device, fs root with /bin /tmp /home, and the
  // process root container.
  static std::unique_ptr<UnixWorld> Boot(Kernel* kernel);

  Kernel* kernel() { return env_.kernel; }
  const UnixEnv& env() const { return env_; }
  ProcessManager& procs() { return *procs_; }
  FileSystem& fs() { return *fs_; }

  ObjectId init_thread() const { return init_; }
  ObjectId fs_root() const { return env_.fs_root; }
  ObjectId console() const { return env_.console; }

  // A context for code running as init (the boot shell).
  ProcessContext& init_context() { return *init_ctx_; }

  // Creates a user: allocates ur/uw (owned by init, who acts as the
  // authentication authority at boot) and a home directory labeled with
  // them. Section 6.2's auth service hands the categories out at login.
  Result<UnixUser> AddUser(const std::string& name);

  // Well-known directories.
  ObjectId bin_dir() const { return bin_; }
  ObjectId tmp_dir() const { return tmp_; }
  ObjectId home_dir() const { return home_; }

 private:
  UnixWorld() = default;

  UnixEnv env_;
  ObjectId init_ = kInvalidObject;
  ObjectId bin_ = kInvalidObject;
  ObjectId tmp_ = kInvalidObject;
  ObjectId home_ = kInvalidObject;
  std::unique_ptr<FileSystem> fs_;
  std::unique_ptr<ProcessManager> procs_;
  std::unique_ptr<ProcessContext> init_ctx_;
};

}  // namespace histar

#endif  // SRC_UNIXLIB_UNIX_H_
