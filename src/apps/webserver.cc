#include "src/apps/webserver.h"

#include <vector>

#include "src/kernel/thread_runner.h"

namespace histar {

// ---- UserStore -----------------------------------------------------------------

std::unique_ptr<UserStore> UserStore::Create(UnixWorld* world) {
  auto s = std::unique_ptr<UserStore>(new UserStore());
  s->world_ = world;
  Result<ObjectId> root =
      world->fs().MakeDir(world->init_thread(), world->fs_root(), "srv", Label(), 32 << 20);
  if (!root.ok()) {
    return nullptr;
  }
  s->root_ = root.value();
  return s;
}

Status UserStore::AddUser(ObjectId self, const UnixUser& user) {
  // The per-user area carries the user's own categories; the store keeps no
  // key to it. Creation requires ownership of ur/uw — i.e. it happens at
  // account-creation time, on a thread already acting as the user.
  Result<ObjectId> dir = world_->fs().MakeDir(self, root_, user.name, user.FileLabel(),
                                              2 << 20);
  return dir.ok() ? Status::kOk : dir.status();
}

Status UserStore::Put(ObjectId self, const std::string& user, const std::string& key,
                      const std::string& value) {
  FileSystem& fs = world_->fs();
  Result<ObjectId> dir = fs.Lookup(self, root_, user);
  if (!dir.ok()) {
    return dir.status();
  }
  // Records inherit the user directory's label. Reading that label is
  // itself label-checked, so the caller must already carry the privilege.
  Result<Label> label = world_->kernel()->sys_obj_get_label(self, SelfEntry(dir.value()));
  if (!label.ok()) {
    return label.status();
  }
  Result<ObjectId> file = fs.Lookup(self, dir.value(), key);
  if (!file.ok()) {
    Result<ObjectId> created = fs.Create(self, dir.value(), key, label.value());
    if (!created.ok()) {
      return created.status();
    }
    file = created;
  } else {
    Status st = fs.Truncate(self, dir.value(), file.value(), 0);
    if (st != Status::kOk) {
      return st;
    }
  }
  return fs.WriteAt(self, dir.value(), file.value(), value.data(), 0, value.size());
}

Result<std::string> UserStore::Get(ObjectId self, const std::string& user,
                                   const std::string& key) {
  FileSystem& fs = world_->fs();
  Result<ObjectId> dir = fs.Lookup(self, root_, user);
  if (!dir.ok()) {
    return dir.status();
  }
  Result<ObjectId> file = fs.Lookup(self, dir.value(), key);
  if (!file.ok()) {
    return file.status();
  }
  Result<uint64_t> size = fs.FileSize(self, dir.value(), file.value());
  if (!size.ok()) {
    return size.status();
  }
  std::string out(size.value(), 0);
  Result<uint64_t> n = fs.ReadAt(self, dir.value(), file.value(), out.data(), 0, out.size());
  if (!n.ok()) {
    return n.status();
  }
  out.resize(n.value());
  return out;
}

// ---- request parsing --------------------------------------------------------------

WebRequest ParseRequest(const std::string& line) {
  WebRequest r;
  size_t sp1 = line.find(' ');
  if (sp1 == std::string::npos) {
    return r;
  }
  std::string verb = line.substr(0, sp1);
  size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string::npos) {
    return r;
  }
  std::string path = line.substr(sp1 + 1, sp2 - sp1 - 1);
  size_t slash = path.find('/');
  if (slash == std::string::npos || slash == 0 || slash + 1 >= path.size()) {
    return r;
  }
  r.user = path.substr(0, slash);
  r.key = path.substr(slash + 1);
  if (line.compare(sp2 + 1, 5, "PASS ") != 0) {
    return r;
  }
  size_t pass_at = sp2 + 6;
  size_t sp3 = line.find(' ', pass_at);
  if (verb == "GET") {
    r.password = line.substr(pass_at, sp3 == std::string::npos ? std::string::npos
                                                               : sp3 - pass_at);
    r.op = WebRequest::Op::kGet;
  } else if (verb == "PUT") {
    if (sp3 == std::string::npos || line.compare(sp3 + 1, 5, "DATA ") != 0) {
      return r;
    }
    r.password = line.substr(pass_at, sp3 - pass_at);
    r.data = line.substr(sp3 + 6);
    r.op = WebRequest::Op::kPut;
  }
  return r;
}

// ---- the worker body ---------------------------------------------------------------

std::string ServeOne(ProcessContext& ctx, AuthSystem* auth, UserStore* store,
                     const WebRequest& req) {
  if (req.op == WebRequest::Op::kBad) {
    return "400 bad";
  }
  // The only way this worker gains any user's privilege: the §6.2 protocol,
  // with the credentials the connection presented. A compromised worker with
  // the wrong password learns exactly one bit and holds nothing.
  Result<LoginResult> login = auth->Login(ctx.self, req.user, req.password);
  if (!login.ok() || !login.value().authenticated) {
    return "403 denied";
  }
  if (req.op == WebRequest::Op::kPut) {
    Status st = store->Put(ctx.self, req.user, req.key, req.data);
    return st == Status::kOk ? "200 stored" : "500 " + std::string(StatusName(st));
  }
  Result<std::string> v = store->Get(ctx.self, req.user, req.key);
  if (!v.ok()) {
    return v.status() == Status::kNotFound ? "404 not-found"
                                           : "500 " + std::string(StatusName(v.status()));
  }
  return "200 " + v.value();
}

// ---- the demultiplexer ---------------------------------------------------------------

std::unique_ptr<WebServer> WebServer::Start(UnixWorld* world, NetDaemon* net, AuthSystem* auth,
                                            UserStore* store, uint16_t port) {
  auto s = std::unique_ptr<WebServer>(new WebServer());
  s->world_ = world;
  s->kernel_ = world->kernel();
  s->net_ = net;
  s->auth_ = auth;
  s->store_ = store;
  s->port_ = port;

  // The demux thread: no user privileges at all. It owns i (the admin's
  // import grant, like the update daemon's: a web server exists to move
  // bytes between the network and storage) and nothing else.
  Label demux_label(Level::k1, {{net->taint().i, Level::kStar}});
  Label demux_clear(Level::k2, {{net->taint().i, Level::k3}});
  s->self_ = s->kernel_->BootstrapThread(demux_label, demux_clear, "httpd-demux");

  // The workers' quota pool: every worker lives in a container carved out of
  // this one — "the connection demultiplexer controls resources granted to
  // each worker daemon through containers" (§6.4).
  CreateSpec wspec;
  wspec.container = s->kernel_->root_container();
  wspec.descrip = "web-workers";
  wspec.quota = 64 << 20;
  Result<ObjectId> pool = s->kernel_->sys_container_create(world->init_thread(), wspec, 0);
  if (!pool.ok()) {
    return nullptr;
  }
  s->workers_ct_ = pool.value();

  // The worker program: args are [name, op, user, key, password, data];
  // response goes out fd 0 (the pipe the demux plumbed in).
  AuthSystem* auth_raw = auth;
  UserStore* store_raw = store;
  world->procs().RegisterProgram("web-worker", [auth_raw, store_raw](ProcessContext& ctx)
                                                   -> int64_t {
    WebRequest req;
    if (ctx.args.size() < 6) {
      return 1;
    }
    req.op = ctx.args[1] == "GET"   ? WebRequest::Op::kGet
             : ctx.args[1] == "PUT" ? WebRequest::Op::kPut
                                    : WebRequest::Op::kBad;
    req.user = ctx.args[2];
    req.key = ctx.args[3];
    req.password = ctx.args[4];
    req.data = ctx.args[5];
    std::string resp = ServeOne(ctx, auth_raw, store_raw, req);
    resp.push_back('\n');
    ctx.fds->Write(ctx.self, 0, resp.data(), resp.size());
    return 0;
  });

  Result<uint64_t> ls = net->Listen(s->self_, port);
  if (!ls.ok()) {
    return nullptr;
  }
  s->listen_sock_ = ls.value();
  s->running_.store(true);
  WebServer* raw = s.get();
  s->host_ = RunOnHostThread(s->kernel_, s->self_, [raw]() { raw->AcceptLoop(); });
  return s;
}

WebServer::~WebServer() { Stop(); }

void WebServer::Stop() {
  running_.store(false);
  if (host_.joinable()) {
    host_.join();
  }
}

void WebServer::AcceptLoop() {
  while (running_.load()) {
    Result<uint64_t> conn = net_->Accept(self_, listen_sock_, 100);
    if (!conn.ok()) {
      continue;
    }
    std::string resp = HandleConnection(conn.value());
    if (!resp.empty()) {
      net_->Send(self_, conn.value(), resp.data(), resp.size());
      served_.fetch_add(1);
    }
    net_->CloseSocket(self_, conn.value());
  }
}

std::string WebServer::HandleConnection(uint64_t conn) {
  // One LF-terminated request line.
  std::string line;
  char buf[512];
  while (line.find('\n') == std::string::npos && line.size() < 4096) {
    Result<uint64_t> n = net_->Recv(self_, conn, buf, sizeof(buf), 2000);
    if (!n.ok() || n.value() == 0) {
      break;
    }
    line.append(buf, n.value());
  }
  size_t eol = line.find('\n');
  if (eol == std::string::npos) {
    return "400 bad\n";
  }
  WebRequest req = ParseRequest(line.substr(0, eol));

  // A container just for this worker: its entire resource budget.
  CreateSpec cspec;
  cspec.container = workers_ct_;
  cspec.descrip = "worker";
  cspec.quota = kWorkerQuota;
  Result<ObjectId> area = kernel_->sys_container_create(self_, cspec, 0);
  if (!area.ok()) {
    return "503 overloaded\n";
  }

  ProcessContext& init_ctx = world_->init_context();
  FdTable pipe_fds(kernel_, init_ctx.ids, Label());
  Result<std::pair<int, int>> pipe = pipe_fds.CreatePipe(world_->init_thread());
  if (!pipe.ok()) {
    return "500 internal\n";
  }

  ProcessOpts popts;
  popts.proc_parent = area.value();
  popts.quota = kWorkerQuota / 2;
  // The admin's import grant: workers may move network data into storage.
  popts.extra_ownership = Label(Level::k1, {{net_->taint().i, Level::kStar}});
  popts.inherit_fds = {pipe_fds.Entry(pipe.value().second).value()};
  std::vector<std::string> args = {"web-worker",
                                   req.op == WebRequest::Op::kGet   ? "GET"
                                   : req.op == WebRequest::Op::kPut ? "PUT"
                                                                    : "BAD",
                                   req.user, req.key, req.password, req.data};
  Result<std::unique_ptr<ProcHandle>> worker =
      world_->procs().Spawn(init_ctx, "web-worker", args, popts);
  std::string resp;
  if (worker.ok()) {
    char rbuf[1024];
    while (resp.find('\n') == std::string::npos) {
      Result<uint64_t> n =
          pipe_fds.ReadTimeout(world_->init_thread(), pipe.value().first, rbuf, sizeof(rbuf),
                               5000);
      if (!n.ok() || n.value() == 0) {
        break;
      }
      resp.append(rbuf, n.value());
    }
    worker.value()->Wait(world_->init_thread(), 5000);
  }
  if (resp.empty()) {
    resp = "500 worker-failed\n";
  }
  pipe_fds.Close(world_->init_thread(), pipe.value().first);
  pipe_fds.Close(world_->init_thread(), pipe.value().second);
  // Revoke the worker's entire area — the demux's resource control needs no
  // cooperation from (or visibility into) the worker.
  kernel_->sys_container_unref(self_, ContainerEntry{workers_ct_, area.value()});
  return resp;
}

}  // namespace histar
