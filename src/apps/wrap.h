// wrap: the 110-line isolation launcher (paper §1, §6.1, Figures 2 and 4).
//
// Invoked with the user's privileges (ownership of the file-read category
// br), wrap:
//   1. allocates a fresh taint category v — of which it is the sole owner;
//   2. creates a private /tmp writable at taint v3 and mounts it over /tmp
//      for the scanner (so helper scratch files stay inside the sandbox);
//   3. creates a v3-tainted result pipe and process area;
//   4. launches the scanner {br⋆, v3, 1}: able to read the user's files,
//      unable to convey a byte to anything untainted;
//   5. reads the verdict through its v ownership, optionally killing the
//      scanner after a deadline (bounding covert-channel bandwidth);
//   6. reports the untainted verdict to the terminal.
//
// So long as wrap is correct, a fully compromised scanner — 40k lines of
// ClamAV, or our clamav-mini pretending to be malicious — cannot leak the
// scanned files.
#ifndef SRC_APPS_WRAP_H_
#define SRC_APPS_WRAP_H_

#include <string>
#include <vector>

#include "src/apps/scanner.h"
#include "src/unixlib/unix.h"

namespace histar {

struct WrapOptions {
  // Categories granting read access to the files under scan (bob's br).
  std::vector<CategoryId> read_categories;
  // Path to the signature database (world-readable).
  std::string db_path = "/db/virus.db";
  // Abort the scan after this budget (covert-channel bound, §6.1).
  uint32_t timeout_ms = 10000;
  // If true, do not create any untainting gate for v: strongest isolation
  // (the paper's wrap makes the same choice).
  bool strong_isolation = true;
};

struct WrapResult {
  bool completed = false;    // scanner finished within the budget
  bool killed = false;       // deadline revocation fired
  ScanReport report;         // valid when completed
  CategoryId v = kInvalidCategory;  // the taint category used (for tests)
};

// Runs one isolated scan of `paths` (absolute file paths). The calling
// thread must own every category in opts.read_categories; it gains nothing
// afterwards (wrap discards its v ownership with the scan).
Result<WrapResult> WrapScan(ProcessContext& ctx, const std::vector<std::string>& paths,
                            const WrapOptions& opts);

}  // namespace histar

#endif  // SRC_APPS_WRAP_H_
