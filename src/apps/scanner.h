// clamav-mini: the untrusted virus scanner of §6.1.
//
// The real evaluation ported ClamAV (40k+ lines). What the experiment needs
// from it is an *untrusted scanner* that (a) reads user files, (b) consults
// a signature database kept fresh by a separate update daemon, (c) spawns
// helper programs to decode input formats, and (d) would love to talk to
// the network. clamav-mini provides exactly that: an Aho–Corasick
// multi-pattern matcher over a serialized signature database, a rot13
// "decoder" helper it spawns for encoded files, and an update daemon that
// fetches databases over netd.
#ifndef SRC_APPS_SCANNER_H_
#define SRC_APPS_SCANNER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/net/netd.h"
#include "src/unixlib/unix.h"

namespace histar {

// One virus signature: a name and the byte pattern that identifies it.
struct Signature {
  std::string name;
  std::vector<uint8_t> pattern;
};

// Aho–Corasick automaton for simultaneous multi-pattern search.
class AhoCorasick {
 public:
  explicit AhoCorasick(const std::vector<Signature>& sigs);

  // Returns the names of all signatures found in `data` (deduplicated).
  std::vector<std::string> Scan(const uint8_t* data, size_t len) const;

  size_t node_count() const { return nodes_.size(); }

 private:
  struct Node {
    std::map<uint8_t, int> next;
    int fail = 0;
    std::vector<int> outputs;  // signature indices ending here
  };
  std::vector<Node> nodes_;
  std::vector<std::string> names_;
};

// Database (de)serialization: "name:hexpattern\n" lines, like ClamAV's .ndb.
std::string SerializeDb(const std::vector<Signature>& sigs);
std::vector<Signature> ParseDb(const std::string& text);

// Scan report written by the scanner over its result pipe.
struct ScanReport {
  uint64_t files_scanned = 0;
  std::vector<std::string> infected;  // "filename: SIGNAME"
  bool ok = false;
};
std::string SerializeReport(const ScanReport& r);
ScanReport ParseReport(const std::string& text);

// Registers the scanner-side programs with the process manager:
//   "avscan"    args: [avscan, db_path, result_fd, file paths…]
//               scans each file; files starting with "R13:" are first
//               decoded by spawning the helper; writes a report to
//               result_fd and exits 0 (1 if anything was infected).
//   "av-helper" args: [av-helper, src_path, dst_path] — rot13-decodes.
void RegisterScannerPrograms(ProcessManager* procs);

// The update daemon: taints itself i2, fetches a fresh database from
// `server_mac:port` over `net`, untaints it (it owns i — the administrator
// granted import privilege at install time) and rewrites `db_path`.
// Registered as program "av-update"; returns the number of signatures
// installed, or negative on failure.
struct UpdateConfig {
  NetDaemon* net = nullptr;
  MacAddr server_mac{};
  uint16_t port = 0;
  std::string db_path;
};
void RegisterUpdateDaemon(ProcessManager* procs, const UpdateConfig* config);

// Serves one database download on `net` (the "mirror"): listens, accepts a
// single connection, sends the serialized db, closes. Run on an i2 client
// thread; returns when served or timed out.
void ServeDbOnce(NetDaemon* net, Kernel* kernel, ObjectId self, uint16_t port,
                 const std::string& db_text);

}  // namespace histar

#endif  // SRC_APPS_SCANNER_H_
