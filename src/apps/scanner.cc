#include "src/apps/scanner.h"

#include <cstdio>
#include <cstring>
#include <deque>

namespace histar {

// ---- Aho–Corasick ---------------------------------------------------------------

AhoCorasick::AhoCorasick(const std::vector<Signature>& sigs) {
  nodes_.emplace_back();  // root
  names_.reserve(sigs.size());
  for (size_t i = 0; i < sigs.size(); ++i) {
    names_.push_back(sigs[i].name);
    int cur = 0;
    for (uint8_t b : sigs[i].pattern) {
      auto it = nodes_[static_cast<size_t>(cur)].next.find(b);
      if (it == nodes_[static_cast<size_t>(cur)].next.end()) {
        nodes_[static_cast<size_t>(cur)].next[b] = static_cast<int>(nodes_.size());
        cur = static_cast<int>(nodes_.size());
        nodes_.emplace_back();
      } else {
        cur = it->second;
      }
    }
    nodes_[static_cast<size_t>(cur)].outputs.push_back(static_cast<int>(i));
  }
  // BFS failure links.
  std::deque<int> queue;
  for (auto& [b, child] : nodes_[0].next) {
    nodes_[static_cast<size_t>(child)].fail = 0;
    queue.push_back(child);
  }
  while (!queue.empty()) {
    int u = queue.front();
    queue.pop_front();
    for (auto& [b, v] : nodes_[static_cast<size_t>(u)].next) {
      int f = nodes_[static_cast<size_t>(u)].fail;
      while (f != 0 && nodes_[static_cast<size_t>(f)].next.count(b) == 0) {
        f = nodes_[static_cast<size_t>(f)].fail;
      }
      auto it = nodes_[static_cast<size_t>(f)].next.find(b);
      int link = (it != nodes_[static_cast<size_t>(f)].next.end() && it->second != v)
                     ? it->second
                     : 0;
      nodes_[static_cast<size_t>(v)].fail = link;
      const auto& fo = nodes_[static_cast<size_t>(link)].outputs;
      auto& vo = nodes_[static_cast<size_t>(v)].outputs;
      vo.insert(vo.end(), fo.begin(), fo.end());
      queue.push_back(v);
    }
  }
}

std::vector<std::string> AhoCorasick::Scan(const uint8_t* data, size_t len) const {
  std::vector<bool> hit(names_.size(), false);
  int cur = 0;
  for (size_t i = 0; i < len; ++i) {
    uint8_t b = data[i];
    while (cur != 0 && nodes_[static_cast<size_t>(cur)].next.count(b) == 0) {
      cur = nodes_[static_cast<size_t>(cur)].fail;
    }
    auto it = nodes_[static_cast<size_t>(cur)].next.find(b);
    cur = it != nodes_[static_cast<size_t>(cur)].next.end() ? it->second : 0;
    for (int out : nodes_[static_cast<size_t>(cur)].outputs) {
      hit[static_cast<size_t>(out)] = true;
    }
  }
  std::vector<std::string> found;
  for (size_t i = 0; i < hit.size(); ++i) {
    if (hit[i]) {
      found.push_back(names_[i]);
    }
  }
  return found;
}

// ---- database format ---------------------------------------------------------------

namespace {

char HexDigit(uint8_t v) { return v < 10 ? static_cast<char>('0' + v) : static_cast<char>('a' + v - 10); }

int HexValue(char c) {
  if (c >= '0' && c <= '9') {
    return c - '0';
  }
  if (c >= 'a' && c <= 'f') {
    return c - 'a' + 10;
  }
  return -1;
}

}  // namespace

std::string SerializeDb(const std::vector<Signature>& sigs) {
  std::string out;
  for (const Signature& s : sigs) {
    out += s.name;
    out += ':';
    for (uint8_t b : s.pattern) {
      out += HexDigit(b >> 4);
      out += HexDigit(b & 0xf);
    }
    out += '\n';
  }
  return out;
}

std::vector<Signature> ParseDb(const std::string& text) {
  std::vector<Signature> sigs;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) {
      eol = text.size();
    }
    std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    size_t colon = line.find(':');
    if (colon == std::string::npos || colon == 0) {
      continue;
    }
    Signature s;
    s.name = line.substr(0, colon);
    for (size_t i = colon + 1; i + 1 < line.size(); i += 2) {
      int hi = HexValue(line[i]);
      int lo = HexValue(line[i + 1]);
      if (hi < 0 || lo < 0) {
        break;
      }
      s.pattern.push_back(static_cast<uint8_t>((hi << 4) | lo));
    }
    if (!s.pattern.empty()) {
      sigs.push_back(std::move(s));
    }
  }
  return sigs;
}

std::string SerializeReport(const ScanReport& r) {
  std::string out = "scanned " + std::to_string(r.files_scanned) + "\n";
  for (const std::string& i : r.infected) {
    out += "FOUND " + i + "\n";
  }
  out += "done\n";
  return out;
}

ScanReport ParseReport(const std::string& text) {
  ScanReport r;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) {
      break;
    }
    std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.rfind("scanned ", 0) == 0) {
      r.files_scanned = static_cast<uint64_t>(std::stoll(line.substr(8)));
    } else if (line.rfind("FOUND ", 0) == 0) {
      r.infected.push_back(line.substr(6));
    } else if (line == "done") {
      r.ok = true;
    }
  }
  return r;
}

// ---- scanner programs ---------------------------------------------------------------

namespace {

// Reads an entire file through the per-process file system.
Result<std::vector<uint8_t>> SlurpFile(ProcessContext& ctx, const std::string& path) {
  Result<std::pair<ObjectId, std::string>> loc = ctx.fs.WalkParent(ctx.self, ctx.cwd, path);
  if (!loc.ok()) {
    return loc.status();
  }
  Result<ObjectId> file = ctx.fs.Lookup(ctx.self, loc.value().first, loc.value().second);
  if (!file.ok()) {
    return file.status();
  }
  Result<uint64_t> size = ctx.fs.FileSize(ctx.self, loc.value().first, file.value());
  if (!size.ok()) {
    return size.status();
  }
  std::vector<uint8_t> data(size.value());
  Result<uint64_t> n =
      ctx.fs.ReadAt(ctx.self, loc.value().first, file.value(), data.data(), 0, data.size());
  if (!n.ok()) {
    return n.status();
  }
  data.resize(n.value());
  return data;
}

Status SpewFile(ProcessContext& ctx, const std::string& path, const std::vector<uint8_t>& data,
                const Label& label) {
  Result<std::pair<ObjectId, std::string>> loc = ctx.fs.WalkParent(ctx.self, ctx.cwd, path);
  if (!loc.ok()) {
    return loc.status();
  }
  Result<ObjectId> file =
      ctx.fs.Create(ctx.self, loc.value().first, loc.value().second, label,
                    kObjectOverheadBytes + data.size() + kPageSize);
  if (!file.ok()) {
    return file.status();
  }
  return ctx.fs.WriteAt(ctx.self, loc.value().first, file.value(), data.data(), 0, data.size());
}

uint8_t Rot13(uint8_t b) {
  if (b >= 'a' && b <= 'z') {
    return static_cast<uint8_t>('a' + (b - 'a' + 13) % 26);
  }
  if (b >= 'A' && b <= 'Z') {
    return static_cast<uint8_t>('A' + (b - 'A' + 13) % 26);
  }
  return b;
}

// "av-helper": decodes src into dst (rot13 body after the "R13:" prefix).
int64_t AvHelperMain(ProcessContext& ctx) {
  if (ctx.args.size() < 3) {
    return 2;
  }
  Result<std::vector<uint8_t>> data = SlurpFile(ctx, ctx.args[1]);
  if (!data.ok()) {
    return 2;
  }
  std::vector<uint8_t> out;
  const std::vector<uint8_t>& in = data.value();
  for (size_t i = 4; i < in.size(); ++i) {  // skip "R13:"
    out.push_back(Rot13(in[i]));
  }
  // The decoded copy carries the helper's own taint automatically: the
  // label here is the thread's *minimum* legal label for a new object.
  Label mine = ctx.kernel->sys_self_get_label(ctx.self).value();
  Label file_label;
  for (CategoryId c : mine.Categories()) {
    Level l = mine.get(c);
    if (l == Level::k2 || l == Level::k3) {
      file_label.set(c, l);
    }
  }
  return SpewFile(ctx, ctx.args[2], out, file_label) == Status::kOk ? 0 : 2;
}

// "avscan": the scanner proper.
int64_t AvScanMain(ProcessContext& ctx) {
  if (ctx.args.size() < 3) {
    return 2;
  }
  const std::string& db_path = ctx.args[1];
  int result_fd = std::stoi(ctx.args[2]);

  ScanReport report;
  Result<std::vector<uint8_t>> db_raw = SlurpFile(ctx, db_path);
  if (!db_raw.ok()) {
    std::string out = SerializeReport(report);
    ctx.fds->Write(ctx.self, result_fd, out.data(), out.size());
    return 2;
  }
  std::vector<Signature> sigs =
      ParseDb(std::string(db_raw.value().begin(), db_raw.value().end()));
  AhoCorasick ac(sigs);

  for (size_t i = 3; i < ctx.args.size(); ++i) {
    const std::string& path = ctx.args[i];
    Result<std::vector<uint8_t>> data = SlurpFile(ctx, path);
    if (!data.ok()) {
      continue;
    }
    std::vector<uint8_t> bytes = data.take();
    if (bytes.size() >= 4 && memcmp(bytes.data(), "R13:", 4) == 0) {
      // Encoded file: spawn the helper to decode into our private /tmp —
      // the "wide variety of external helper programs" of §1, each of
      // which inherits the scanner's taint (and its read capabilities, so
      // it can open the encoded input).
      std::string decoded_path = "tmp/decoded-" + std::to_string(i);
      ProcessOpts hopts;
      Label mine = ctx.kernel->sys_self_get_label(ctx.self).value();
      for (CategoryId c : mine.Categories()) {
        if (mine.get(c) == Level::kStar) {
          hopts.extra_ownership.set(c, Level::kStar);
        }
      }
      Result<std::unique_ptr<ProcHandle>> h = ctx.mgr->Spawn(
          ctx, "av-helper", {"av-helper", path, decoded_path}, hopts);
      if (!h.ok()) {
        continue;
      }
      Result<int64_t> st = h.value()->Wait(ctx.self);
      if (!st.ok() || st.value() != 0) {
        continue;
      }
      Result<std::vector<uint8_t>> dec = SlurpFile(ctx, decoded_path);
      if (!dec.ok()) {
        continue;
      }
      bytes = dec.take();
    }
    ++report.files_scanned;
    std::vector<std::string> found = ac.Scan(bytes.data(), bytes.size());
    for (const std::string& name : found) {
      report.infected.push_back(path + ": " + name);
    }
  }
  report.ok = true;
  std::string out = SerializeReport(report);
  ctx.fds->Write(ctx.self, result_fd, out.data(), out.size());
  return report.infected.empty() ? 0 : 1;
}

}  // namespace

void RegisterScannerPrograms(ProcessManager* procs) {
  procs->RegisterProgram("avscan", AvScanMain);
  procs->RegisterProgram("av-helper", AvHelperMain);
}

// ---- update daemon ---------------------------------------------------------------

void RegisterUpdateDaemon(ProcessManager* procs, const UpdateConfig* config) {
  const UpdateConfig* cfg = config;
  procs->RegisterProgram("av-update", [cfg](ProcessContext& ctx) -> int64_t {
    Kernel* k = ctx.kernel;
    // Reach the network. If the daemon owns i (import privilege granted by
    // the administrator at install time) its ⋆ already dominates the i2
    // data and no self-tainting is needed — that ownership is precisely
    // what lets it later write the untainted database file. A daemon
    // without the grant must taint itself i2 and will find the database
    // write blocked below.
    Label mine = k->sys_self_get_label(ctx.self).value();
    bool owns_i = mine.Owns(cfg->net->taint().i);
    if (!owns_i) {
      Label tainted = mine.Join(cfg->net->ClientTaint());
      if (k->sys_self_set_label(ctx.self, tainted) != Status::kOk) {
        return -1;
      }
    }
    Result<uint64_t> conn = cfg->net->Connect(ctx.self, cfg->server_mac, cfg->port);
    if (!conn.ok()) {
      return -2;
    }
    std::string db_text;
    char buf[2048];
    for (;;) {
      Result<uint64_t> n = cfg->net->Recv(ctx.self, conn.value(), buf, sizeof(buf), 5000);
      if (!n.ok() || n.value() == 0) {
        break;
      }
      db_text.append(buf, n.value());
    }
    cfg->net->CloseSocket(ctx.self, conn.value());
    if (db_text.empty()) {
      return -3;
    }
    // A daemon that had to taint itself is now stuck at i2 — taint never
    // comes off (§2) — and the untainted database write below will fail.
    // The i-owning daemon sails through.
    std::vector<Signature> sigs = ParseDb(db_text);
    if (sigs.empty()) {
      return -5;
    }
    // Rewrite the database file.
    Result<std::pair<ObjectId, std::string>> loc =
        ctx.fs.WalkParent(ctx.self, ctx.cwd, cfg->db_path);
    if (!loc.ok()) {
      return -6;
    }
    ctx.fs.Unlink(ctx.self, loc.value().first, loc.value().second);
    Result<ObjectId> file = ctx.fs.Create(ctx.self, loc.value().first, loc.value().second,
                                          Label(), kObjectOverheadBytes + db_text.size() +
                                                       kPageSize);
    if (!file.ok()) {
      return -7;
    }
    if (ctx.fs.WriteAt(ctx.self, loc.value().first, file.value(), db_text.data(), 0,
                       db_text.size()) != Status::kOk) {
      return -8;
    }
    return static_cast<int64_t>(sigs.size());
  });
}

void ServeDbOnce(NetDaemon* net, Kernel* kernel, ObjectId self, uint16_t port,
                 const std::string& db_text) {
  Result<uint64_t> ls = net->Listen(self, port);
  if (!ls.ok()) {
    return;
  }
  Result<uint64_t> conn = net->Accept(self, ls.value(), 10000);
  if (!conn.ok()) {
    return;
  }
  net->Send(self, conn.value(), db_text.data(), db_text.size());
  net->CloseSocket(self, conn.value());
}

}  // namespace histar
