#include "src/apps/wrap.h"

#include <chrono>

#include "src/core/trace.h"

namespace histar {

Result<WrapResult> WrapScan(ProcessContext& ctx, const std::vector<std::string>& paths,
                            const WrapOptions& opts) {
  Kernel* k = ctx.kernel;
  ObjectId self = ctx.self;
  WrapResult result;

  // 1. A fresh taint category; wrap is its only owner.
  Result<CategoryId> v = k->sys_cat_create(self);
  if (!v.ok()) {
    return v.status();
  }
  result.v = v.value();
  Label vtaint(Level::k1, {{v.value(), Level::k3}});

  // 2. The private /tmp, writable at v3 (Figure 2's "Private /tmp").
  Result<ObjectId> priv_tmp =
      ctx.fs.MakeRoot(self, k->root_container(), vtaint, 32 << 20);
  if (!priv_tmp.ok()) {
    return priv_tmp.status();
  }
  // 3. A v3 process area: the tainted scanner cannot allocate in the
  // untainted default proc_root, so wrap donates a container (the same
  // resource-donation pattern as §5.5's gate calls).
  CreateSpec aspec;
  aspec.container = k->root_container();
  aspec.label = vtaint;
  aspec.descrip = "scan-area";
  aspec.quota = 64 << 20;
  Result<ObjectId> area = k->sys_container_create(self, aspec, 0);
  if (!area.ok()) {
    return area.status();
  }

  // 4. The result pipe, tainted v3 so the scanner can write it; wrap reads
  // through its ownership of v.
  FdTable pipe_fds(k, ctx.ids, vtaint);
  Result<std::pair<int, int>> pipe = pipe_fds.CreatePipe(self);
  if (!pipe.ok()) {
    return pipe.status();
  }

  // 5. Launch the scanner {br⋆, v3, 1}: it can read the user's files and
  // write nothing untainted. Helper processes it spawns inherit v3.
  ProcessOpts popts;
  for (CategoryId c : opts.read_categories) {
    popts.extra_ownership.set(c, Level::kStar);
  }
  popts.taint = vtaint;
  popts.proc_parent = area.value();
  // Strong isolation (§6.1): no untainting gate of any kind for v — the
  // default, spelled out. The only bits that leave the sandbox are the ones
  // wrap reads from the pipe through its own v ownership.
  popts.exit_untaint.clear();
  popts.inherit_fds.push_back(pipe_fds.Entry(pipe.value().second).value());
  popts.quota = 32 << 20;

  std::vector<std::string> args = {"avscan", opts.db_path, "0"};
  for (const std::string& p : paths) {
    args.push_back(p);
  }
  // Overlay the private /tmp for the child only (Plan 9-style per-process
  // mounts; the child copies our table at launch).
  ctx.fs.mounts().Mount(ctx.env.fs_root, "tmp", priv_tmp.value());
  Result<std::unique_ptr<ProcHandle>> scanner = ctx.mgr->Spawn(ctx, "avscan", args, popts);
  ctx.fs.mounts().Unmount(ctx.env.fs_root, "tmp");
  if (!scanner.ok()) {
    return scanner.status();
  }

  // 6. Collect the verdict, bounded by the covert-channel budget. wrap does
  // not create an untainting gate for v (strong isolation): the only
  // information that escapes the sandbox is what we read here, through
  // wrap's own v ownership.
  std::string text;
  auto deadline = trace::SteadyNow() + std::chrono::milliseconds(opts.timeout_ms);
  char buf[1024];
  while (trace::SteadyNow() < deadline) {
    Result<uint64_t> n = pipe_fds.ReadTimeout(self, pipe.value().first, buf, sizeof(buf), 50);
    if (n.ok() && n.value() > 0) {
      text.append(buf, n.value());
      ScanReport r = ParseReport(text);
      if (r.ok) {
        result.report = r;
        result.completed = true;
        break;
      }
    } else if (!n.ok() && n.status() != Status::kAgain && n.status() != Status::kTimedOut) {
      break;
    }
  }
  if (!result.completed) {
    // Deadline: revoke the scanner's resources. This needs no cooperation
    // from (or visibility into) the sandbox — wrap just severs the area.
    result.killed = true;
  }
  scanner.value()->Wait(self, result.completed ? opts.timeout_ms : 1);
  k->sys_container_unref(self, ContainerEntry{k->root_container(), area.value()});
  k->sys_container_unref(self, ContainerEntry{k->root_container(), priv_tmp.value()});
  pipe_fds.Close(self, pipe.value().first);
  pipe_fds.Close(self, pipe.value().second);

  // 7. Shed the v ownership: the category dies with the scan.
  Label mine = k->sys_self_get_label(self).value();
  mine.set(v.value(), Level::k1);
  k->sys_self_set_label(self, mine);
  return result;
}

}  // namespace histar
