// Asbestos-style web services on HiStar (paper §6.4).
//
// "The original motivating application for Asbestos was its web server,
// which isolated different users' data to tolerate buggy or malicious web
// service code. We have built a similar web server for HiStar... HiStar's
// connection demultiplexer controls resources granted to each worker daemon
// through containers. Authentication uses an instance of the daemon
// described in Section 6.2. HiStar also has an experimental privilege-
// separated database."
//
// The decomposition, mirroring that paragraph:
//  * `UserStore` — the privilege-separated database. The store itself holds
//    NO user privileges: every record is a segment labeled {ur3, uw0, 1},
//    and callers bring their own categories. A fully compromised store can
//    neither read nor forge any user's records; it is pure untrusted
//    bookkeeping (naming and quota), like the Unix library itself.
//  * worker processes — one per request, launched by the demultiplexer with
//    only the resources of a donated per-worker container and *no* user
//    privileges. A worker acquires its user's categories exclusively by
//    running the §6.2 login protocol with the credentials presented on the
//    connection; service code compromise therefore exposes at most the data
//    of users whose (correct) passwords the attacker already holds.
//  * `WebServer` — the demultiplexer: accepts connections on an untrusted
//    netd stack, parses a minimal request, spawns the worker, relays the
//    response. It owns nothing but the listen socket and the workers' quota
//    pool.
//
// Request wire format (one line, LF-terminated):
//   GET <user>/<key> PASS <password>
//   PUT <user>/<key> PASS <password> DATA <bytes...>
// Response: "200 <data>" | "403 denied" | "404 not-found" | "400 bad".
#ifndef SRC_APPS_WEBSERVER_H_
#define SRC_APPS_WEBSERVER_H_

#include <atomic>
#include <string>
#include <thread>

#include "src/auth/auth.h"
#include "src/net/netd.h"

namespace histar {

// The privilege-separated user-data store (the paper's "experimental
// privilege-separated database"; ours is a labeled key-value store, not
// SQL — the paper's is "unlike the Asbestos database" too).
class UserStore {
 public:
  // Creates the store's container tree under the filesystem root. The
  // creating thread keeps no special access: all privilege is per-record.
  static std::unique_ptr<UserStore> Create(UnixWorld* world);

  // Creates the per-user area. Called with a thread owning the user's
  // categories (account creation time); the area is labeled {ur3, uw0, 1}.
  Status AddUser(ObjectId self, const UnixUser& user);

  // Record access. `self` must carry the right categories — the store adds
  // none. Get returns kLabelCheckFailed/kNotFound exactly as the kernel
  // decides.
  Status Put(ObjectId self, const std::string& user, const std::string& key,
             const std::string& value);
  Result<std::string> Get(ObjectId self, const std::string& user, const std::string& key);

  ObjectId root() const { return root_; }

 private:
  UserStore() = default;

  UnixWorld* world_ = nullptr;
  ObjectId root_ = kInvalidObject;  // /srv: one subdirectory per user
};

struct WebRequest {
  enum class Op { kGet, kPut, kBad } op = Op::kBad;
  std::string user;
  std::string key;
  std::string password;
  std::string data;
};

WebRequest ParseRequest(const std::string& line);

// One worker execution: log in as the requester, touch only their records.
// Runs on the calling thread (the spawned worker process's). Returns the
// response string. Exposed for tests; the demultiplexer drives it through a
// worker process.
std::string ServeOne(ProcessContext& ctx, AuthSystem* auth, UserStore* store,
                     const WebRequest& req);

// The connection demultiplexer.
class WebServer {
 public:
  static std::unique_ptr<WebServer> Start(UnixWorld* world, NetDaemon* net, AuthSystem* auth,
                                          UserStore* store, uint16_t port);
  ~WebServer();

  void Stop();
  uint16_t port() const { return port_; }
  uint64_t requests_served() const { return served_.load(); }
  // Quota donated to each worker's container (tests poke at exhaustion).
  uint64_t worker_quota() const { return kWorkerQuota; }

 private:
  static constexpr uint64_t kWorkerQuota = 8 << 20;

  WebServer() = default;
  void AcceptLoop();
  std::string HandleConnection(uint64_t conn);

  UnixWorld* world_ = nullptr;
  Kernel* kernel_ = nullptr;
  NetDaemon* net_ = nullptr;
  AuthSystem* auth_ = nullptr;
  UserStore* store_ = nullptr;
  uint16_t port_ = 0;
  uint64_t listen_sock_ = 0;
  ObjectId self_ = kInvalidObject;   // the demux thread (unprivileged + i2)
  ObjectId workers_ct_ = kInvalidObject;  // quota pool for worker containers
  std::thread host_;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> served_{0};
};

}  // namespace histar

#endif  // SRC_APPS_WEBSERVER_H_
