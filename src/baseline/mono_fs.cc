#include "src/baseline/mono_fs.h"

#include <algorithm>
#include <cstring>

#include "src/core/sync.h"
#include "src/core/thread_annotations.h"

namespace monosim {

// The baseline lives outside namespace histar but still uses the annotated
// wrappers — raw std primitives are banned tree-wide (histar-lint
// raw-sync-primitive).
using histar::CondVar;
using histar::Mutex;
using histar::MutexLock;

MonoFs::MonoFs(DiskModel* disk) : disk_(disk) {}

Status MonoFs::Mkfs() {
  uint64_t magic = 0x4d4f4e4f46530000ULL;
  Status st = disk_->Write(0, &magic, 8);
  if (st != Status::kOk) {
    return st;
  }
  next_block_ = kDataStart / kBlockSize;
  return Status::kOk;
}

uint64_t MonoFs::AllocBlock() {
  // Directory clustering: hand out strictly increasing block numbers, so
  // files created back-to-back sit next to each other on the platter.
  return next_block_++;
}

Result<uint64_t> MonoFs::Create(const std::string& name) {
  if (dir_.count(name) != 0) {
    return Status::kExists;
  }
  MonoInode ino;
  ino.inum = next_inum_++;
  ino.dirty_meta = true;
  dir_[name] = ino.inum;
  inodes_[ino.inum] = std::move(ino);
  return dir_[name];
}

Result<uint64_t> MonoFs::LookupFile(const std::string& name) {
  auto it = dir_.find(name);
  if (it == dir_.end()) {
    return Status::kNotFound;
  }
  return it->second;
}

Status MonoFs::Unlink(const std::string& name) {
  auto it = dir_.find(name);
  if (it == dir_.end()) {
    return Status::kNotFound;
  }
  inodes_.erase(it->second);
  cache_.erase(it->second);
  cached_.erase(it->second);
  dir_.erase(it);
  return Status::kOk;
}

Status MonoFs::Write(uint64_t inum, uint64_t off, const void* buf, uint64_t len) {
  auto it = inodes_.find(inum);
  if (it == inodes_.end()) {
    return Status::kNotFound;
  }
  MonoInode& ino = it->second;
  uint64_t end = off + len;
  while (ino.blocks.size() * kBlockSize < end) {
    ino.blocks.push_back(AllocBlock());
    ino.dirty_meta = true;
  }
  if (end > ino.size) {
    ino.size = end;
    ino.dirty_meta = true;
  }
  // Into the page cache; blocks become dirty and are written at fsync/sync.
  std::vector<uint8_t>& data = cache_[inum];
  if (data.size() < end) {
    data.resize(end, 0);
  }
  memcpy(data.data() + off, buf, len);
  cached_.insert(inum);
  for (uint64_t b = off / kBlockSize; b <= (end - 1) / kBlockSize; ++b) {
    ino.dirty_blocks.insert(b);
  }
  return Status::kOk;
}

Result<uint64_t> MonoFs::Read(uint64_t inum, uint64_t off, void* buf, uint64_t len) {
  auto it = inodes_.find(inum);
  if (it == inodes_.end()) {
    return Status::kNotFound;
  }
  MonoInode& ino = it->second;
  if (off >= ino.size) {
    return uint64_t{0};
  }
  uint64_t n = std::min(len, ino.size - off);
  if (cached_.count(inum) != 0) {
    const std::vector<uint8_t>& data = cache_[inum];
    memcpy(buf, data.data() + off, std::min<uint64_t>(n, data.size() - off));
    return n;
  }
  // Cache miss: read the covering blocks from disk (the DiskModel decides
  // whether lookahead turns this into a free ride).
  uint64_t first = off / kBlockSize;
  uint64_t last = (off + n - 1) / kBlockSize;
  std::vector<uint8_t> block(kBlockSize);
  for (uint64_t b = first; b <= last && b < ino.blocks.size(); ++b) {
    Status st = disk_->Read(ino.blocks[b] * kBlockSize, block.data(), kBlockSize);
    if (st != Status::kOk) {
      return st;
    }
  }
  memset(buf, 0, n);
  return n;
}

Status MonoFs::JournalCommit(uint64_t payload_bytes) {
  // Journal record + commit block, written sequentially, then a barrier —
  // the ext3 commit sequence.
  if (journal_head_ + payload_bytes + kBlockSize > kJournalBytes) {
    journal_head_ = 0;  // wrap (checkpointing the journal is free here)
  }
  std::vector<uint8_t> rec(payload_bytes + kBlockSize, 0);
  Status st = disk_->Write(kJournalStart + journal_head_, rec.data(), rec.size());
  if (st != Status::kOk) {
    return st;
  }
  journal_head_ += rec.size();
  ++journal_commits_;
  return disk_->Flush();
}

Status MonoFs::WriteBlock(const MonoInode& ino, uint64_t block_index) {
  std::vector<uint8_t> block(kBlockSize, 0);
  return disk_->Write(ino.blocks[block_index] * kBlockSize, block.data(), kBlockSize);
}

Status MonoFs::Fsync(uint64_t inum) {
  auto it = inodes_.find(inum);
  if (it == inodes_.end()) {
    return Status::kNotFound;
  }
  MonoInode& ino = it->second;
  // Ordered mode: data first, in ascending block order (the elevator).
  std::vector<uint64_t> blocks(ino.dirty_blocks.begin(), ino.dirty_blocks.end());
  std::sort(blocks.begin(), blocks.end());
  for (uint64_t b : blocks) {
    if (b < ino.blocks.size()) {
      Status st = WriteBlock(ino, b);
      if (st != Status::kOk) {
        return st;
      }
    }
  }
  ino.dirty_blocks.clear();
  if (!ino.dirty_meta) {
    // Pure data overwrite: no metadata changed, so ordered mode needs no
    // journal commit — just the data barrier. This is why ext3's sync
    // random-write column stays close to HiStar's in-place page flush.
    return disk_->Flush();
  }
  // ...then the metadata journal commit.
  Status st = JournalCommit(kBlockSize);
  if (st != Status::kOk) {
    return st;
  }
  ino.dirty_meta = false;
  return Status::kOk;
}

Status MonoFs::FsyncDir() { return JournalCommit(kBlockSize); }

Status MonoFs::SyncAll() {
  // Batched writeback: dirty blocks stream out in block order (the elevator
  // earns its keep), followed by a single journal commit.
  std::map<uint64_t, std::pair<const MonoInode*, uint64_t>> sorted;
  for (auto& [inum, ino] : inodes_) {
    for (uint64_t b : ino.dirty_blocks) {
      if (b < ino.blocks.size()) {
        sorted[ino.blocks[b]] = {&ino, b};
      }
    }
  }
  for (const auto& [disk_block, what] : sorted) {
    Status st = WriteBlock(*what.first, what.second);
    if (st != Status::kOk) {
      return st;
    }
  }
  for (auto& [inum, ino] : inodes_) {
    ino.dirty_blocks.clear();
    ino.dirty_meta = false;
  }
  return JournalCommit(kBlockSize);
}

void MonoFs::DropCaches() {
  cache_.clear();
  cached_.clear();
}

// ---- MonoPipe ---------------------------------------------------------------------

struct MonoPipe::Impl {
  Mutex mu;
  CondVar readable;
  CondVar writable;
  std::vector<uint8_t> buf GUARDED_BY(mu);
  size_t rpos GUARDED_BY(mu) = 0;
  size_t wpos GUARDED_BY(mu) = 0;
  uint64_t syscalls GUARDED_BY(mu) = 0;
  static constexpr size_t kCap = 65536;
};

MonoPipe::MonoPipe() : impl_(new Impl) { impl_->buf.resize(Impl::kCap); }
MonoPipe::~MonoPipe() { delete impl_; }

void MonoPipe::Write(const void* buf, uint64_t len) {
  MutexLock lock(&impl_->mu);
  ++impl_->syscalls;
  impl_->writable.Wait(impl_->mu, [this, len] {
    impl_->mu.AssertHeld();  // predicate runs with the wait mutex reacquired
    return impl_->wpos - impl_->rpos + len <= Impl::kCap;
  });
  const uint8_t* src = static_cast<const uint8_t*>(buf);
  for (uint64_t i = 0; i < len; ++i) {
    impl_->buf[(impl_->wpos + i) % Impl::kCap] = src[i];
  }
  impl_->wpos += len;
  impl_->readable.NotifyOne();
}

uint64_t MonoPipe::Read(void* buf, uint64_t len) {
  MutexLock lock(&impl_->mu);
  ++impl_->syscalls;
  impl_->readable.Wait(impl_->mu, [this] {
    impl_->mu.AssertHeld();  // predicate runs with the wait mutex reacquired
    return impl_->wpos > impl_->rpos;
  });
  uint64_t avail = impl_->wpos - impl_->rpos;
  uint64_t n = std::min(len, avail);
  uint8_t* dst = static_cast<uint8_t*>(buf);
  for (uint64_t i = 0; i < n; ++i) {
    dst[i] = impl_->buf[(impl_->rpos + i) % Impl::kCap];
  }
  impl_->rpos += n;
  impl_->writable.NotifyOne();
  return n;
}

uint64_t MonoPipe::syscalls() const {
  // Locked: the pipe benches read this from the producer thread while the
  // consumer is mid-Read (it used to read the counter bare).
  MutexLock lock(&impl_->mu);
  return impl_->syscalls;
}

// ---- MonoProcessModel ----------------------------------------------------------------

uint64_t MonoProcessModel::ForkExecTrue() const {
  // Simulate the monolithic kernel's work: copy the parent image (fork),
  // zero a fresh image (exec), and account the fixed syscall budget.
  std::vector<uint8_t> parent(image_bytes, 1);
  std::vector<uint8_t> child(parent);           // fork: dup the image
  std::vector<uint8_t> fresh(image_bytes, 0);   // exec: new zeroed image
  // Touch the copies so the optimizer cannot elide them.
  volatile uint8_t sink = child[image_bytes / 2] + fresh[image_bytes / 3];
  (void)sink;
  return syscalls_per_forkexec;
}

}  // namespace monosim
