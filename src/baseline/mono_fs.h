// Baseline: a monolithic, ext3-flavored file system over the same DiskModel.
//
// The paper's Figure 12 compares HiStar against Linux (ext3) and OpenBSD.
// This module provides the comparison column: a conventional kernel file
// system with
//   * block-based allocation (4 kB blocks, bitmap allocator) — vs HiStar's
//     extent-based delayed allocation,
//   * a metadata journal: fsync commits a journal record + barrier, then
//     writes dirty data blocks in place — vs HiStar's whole-state WAL,
//   * a page cache so async operations run at memory speed,
//   * directory-clustered layout: blocks for files created in the same
//     directory are allocated contiguously, which is what lets the drive's
//     read lookahead erase rotational latency in the LFS small-file read
//     phase (§7.1's explanation of Linux's 10× win).
//
// It is deliberately NOT label-checked: it exists to measure, not to secure.
#ifndef SRC_BASELINE_MONO_FS_H_
#define SRC_BASELINE_MONO_FS_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/core/status.h"
#include "src/store/disk_model.h"

namespace monosim {

using histar::DiskModel;
using histar::Result;
using histar::Status;

inline constexpr uint64_t kBlockSize = 4096;

struct MonoInode {
  uint64_t inum = 0;
  uint64_t size = 0;
  std::vector<uint64_t> blocks;  // direct block list (simulated)
  bool dirty_meta = false;
  std::unordered_set<uint64_t> dirty_blocks;  // block indices with cached data
};

class MonoFs {
 public:
  explicit MonoFs(DiskModel* disk);

  // Format: journal at the front, data blocks after.
  Status Mkfs();

  Result<uint64_t> Create(const std::string& name);
  Result<uint64_t> LookupFile(const std::string& name);
  Status Unlink(const std::string& name);

  Status Write(uint64_t inum, uint64_t off, const void* buf, uint64_t len);
  Result<uint64_t> Read(uint64_t inum, uint64_t off, void* buf, uint64_t len);

  // fsync(file): journal the inode (sequential write + barrier), then write
  // dirty data blocks in place (+ barrier), like ext3 ordered mode.
  Status Fsync(uint64_t inum);
  // fsync(directory): ext3 commits just the modified directory entry — one
  // journal record — which is the whole of the paper's 173 s vs 456 s unlink
  // gap against HiStar's checkpoint-the-world approach.
  Status FsyncDir();
  // sync(): flush everything dirty with batched sequential writes.
  Status SyncAll();
  // Drops cached file data so subsequent reads hit the "disk".
  void DropCaches();

  uint64_t journal_commits() const { return journal_commits_; }

 private:
  // Allocates a data block near the previous allocation (directory
  // clustering: sequential creates get sequential blocks).
  uint64_t AllocBlock();

  Status JournalCommit(uint64_t payload_bytes);
  Status WriteBlock(const MonoInode& ino, uint64_t block_index);

  DiskModel* disk_;
  std::map<std::string, uint64_t> dir_;  // single flat directory suffices
  std::unordered_map<uint64_t, MonoInode> inodes_;
  // Page cache: (inum, block index) → data present in memory.
  std::unordered_map<uint64_t, std::vector<uint8_t>> cache_;  // keyed by inum
  std::unordered_set<uint64_t> cached_;                        // inums with data
  uint64_t next_inum_ = 1;
  uint64_t next_block_ = 0;
  uint64_t journal_head_ = 0;
  uint64_t journal_commits_ = 0;

  static constexpr uint64_t kJournalStart = 2 * kBlockSize;
  static constexpr uint64_t kJournalBytes = 64 << 20;
  static constexpr uint64_t kDataStart = kJournalStart + kJournalBytes;
};

// Baseline IPC: an in-kernel pipe — one lock, one buffer, one condition
// variable; the monolithic fast path the paper's Linux column enjoys.
class MonoPipe {
 public:
  MonoPipe();
  ~MonoPipe();

  // Blocking write/read of exactly `len` bytes (len ≤ capacity).
  void Write(const void* buf, uint64_t len);
  uint64_t Read(void* buf, uint64_t len);

  // "Syscall" counter — every op counts one, mirroring Linux's read/write.
  uint64_t syscalls() const;

 private:
  struct Impl;
  Impl* impl_;
};

// Baseline process model: fork+exec of /bin/true costs a fixed, small number
// of syscalls (9 in the paper) and a memory-copy proportional to the parent
// image; spawn does not exist.
struct MonoProcessModel {
  uint64_t image_bytes = 128 * 1024;  // parent image copied at fork
  uint64_t syscalls_per_forkexec = 9;

  // Runs one simulated fork/exec/exit/wait cycle; returns syscalls used.
  uint64_t ForkExecTrue() const;
};

}  // namespace monosim

#endif  // SRC_BASELINE_MONO_FS_H_
