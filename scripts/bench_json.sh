#!/usr/bin/env bash
# Runs the trajectory benches with --benchmark_format=json and folds the
# outputs into machine-checkable JSON at the repo root
# (bench/emit_trajectory.cc does the folding; the env block records nproc +
# git sha, and a machine-readable caveat when the host has fewer than 8
# CPUs):
#   * BENCH_pr6.json — the PR 6 scaling rows (labels, objtable, IPC rings);
#   * BENCH_pr8.json — the PR 8 engine rows (blob vs Bε-tree dirty-1000
#     checkpoint and restore), checked by scripts/check_bench_pr8.sh;
#   * BENCH_pr10.json — the PR 10 tracing-overhead rows: the warm lock-free
#     batch and the dirty-1000 checkpoint, once from the normal build and
#     once from a -DHISTAR_TRACE=0 build (rows tagged "@notrace"), checked
#     by scripts/check_bench_pr10.sh. Skipped with a note if the notrace
#     build dir is absent.
#
# Usage: scripts/bench_json.sh [build-dir] [pr6-out-file] [pr8-out-file] \
#                              [pr10-out-file] [notrace-build-dir]
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build}"
OUT="${2:-$ROOT/BENCH_pr6.json}"
OUT8="${3:-$ROOT/BENCH_pr8.json}"
OUT10="${4:-$ROOT/BENCH_pr10.json}"
NOTRACE="${5:-$ROOT/build-notrace}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

for bin in bench_ablation_labels bench_ablation_objtable bench_fig12_ipc \
           bench_fig12_lfs_small bench_emit_trajectory; do
  if [ ! -x "$BUILD/$bin" ]; then
    echo "bench_json.sh: $BUILD/$bin missing — build with google-benchmark available" >&2
    exit 1
  fi
done

# Keep runs short: these rows feed a trajectory, not a publication. The
# benchmark library still repeats each row enough for a stable mean.
MIN_TIME="${BENCH_MIN_TIME:-0.05}"

"$BUILD/bench_ablation_labels" \
  --benchmark_filter='BM_RegistryLeqContended' \
  --benchmark_min_time="$MIN_TIME" \
  --benchmark_format=json > "$TMP/labels.json"

"$BUILD/bench_ablation_objtable" \
  --benchmark_filter='BM_ObjTableResolveContended' \
  --benchmark_min_time="$MIN_TIME" \
  --benchmark_format=json > "$TMP/objtable.json"

"$BUILD/bench_fig12_ipc" \
  --benchmark_filter='BM_HiStarRingSegOps' \
  --benchmark_min_time="$MIN_TIME" \
  --benchmark_format=json > "$TMP/ipc.json"

SHA="$(git -C "$ROOT" rev-parse --short HEAD 2>/dev/null || echo unknown)"
NPROC="$(nproc 2>/dev/null || echo 0)"

"$BUILD/bench_emit_trajectory" \
  --out "$OUT" --pr 6 --sha "$SHA" --nproc "$NPROC" \
  "$TMP/labels.json" "$TMP/objtable.json" "$TMP/ipc.json"

# PR 8 engine rows: Iterations(1)/UseManualTime rows, so no min_time knob.
"$BUILD/bench_fig12_lfs_small" \
  --benchmark_filter='BM_EngineCheckpointDirty|BM_EngineRestore' \
  --benchmark_format=json > "$TMP/engine.json"

"$BUILD/bench_emit_trajectory" \
  --out "$OUT8" --pr 8 --sha "$SHA" --nproc "$NPROC" \
  "$TMP/engine.json"

# PR 10 tracing-overhead rows: the same two shapes from two trees. The warm
# lock-free batch is the recorder's worst case (the event + histogram write
# is the only kernel work besides the reads); the dirty-1000 checkpoint
# covers the store-op recording path. The notrace tree is configured with
# -DHISTAR_TRACE=0 so every Record* call compiles out.
if [ -x "$NOTRACE/bench_fig12_ipc" ] && [ -x "$NOTRACE/bench_fig12_lfs_small" ]; then
  "$BUILD/bench_fig12_ipc" \
    --benchmark_filter='BM_HiStarLockFreeBatchGet' \
    --benchmark_min_time="$MIN_TIME" \
    --benchmark_format=json > "$TMP/lockfree.json"
  "$NOTRACE/bench_fig12_ipc" \
    --benchmark_filter='BM_HiStarLockFreeBatchGet' \
    --benchmark_min_time="$MIN_TIME" \
    --benchmark_format=json > "$TMP/lockfree_notrace.json"
  "$BUILD/bench_fig12_lfs_small" \
    --benchmark_filter='BM_EngineCheckpointDirty' \
    --benchmark_format=json > "$TMP/ckpt.json"
  "$NOTRACE/bench_fig12_lfs_small" \
    --benchmark_filter='BM_EngineCheckpointDirty' \
    --benchmark_format=json > "$TMP/ckpt_notrace.json"

  "$BUILD/bench_emit_trajectory" \
    --out "$OUT10" --pr 10 --sha "$SHA" --nproc "$NPROC" \
    "$TMP/lockfree.json" "$TMP/ckpt.json" \
    --tag notrace "$TMP/lockfree_notrace.json" "$TMP/ckpt_notrace.json"
else
  echo "bench_json.sh: $NOTRACE missing bench binaries — skipping $OUT10" >&2
  echo "  (configure it with: cmake -B build-notrace -S . -DCMAKE_CXX_FLAGS=-DHISTAR_TRACE=0)" >&2
fi
