#!/usr/bin/env bash
# Runs the PR 6 trajectory benches with --benchmark_format=json and folds
# the outputs into BENCH_pr6.json at the repo root (bench/emit_trajectory.cc
# does the folding; the env block records nproc + git sha, and a machine-
# readable caveat when the host has fewer than 8 CPUs).
#
# Usage: scripts/bench_json.sh [build-dir] [out-file]
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build}"
OUT="${2:-$ROOT/BENCH_pr6.json}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

for bin in bench_ablation_labels bench_ablation_objtable bench_fig12_ipc bench_emit_trajectory; do
  if [ ! -x "$BUILD/$bin" ]; then
    echo "bench_json.sh: $BUILD/$bin missing — build with google-benchmark available" >&2
    exit 1
  fi
done

# Keep runs short: these rows feed a trajectory, not a publication. The
# benchmark library still repeats each row enough for a stable mean.
MIN_TIME="${BENCH_MIN_TIME:-0.05}"

"$BUILD/bench_ablation_labels" \
  --benchmark_filter='BM_RegistryLeqContended' \
  --benchmark_min_time="$MIN_TIME" \
  --benchmark_format=json > "$TMP/labels.json"

"$BUILD/bench_ablation_objtable" \
  --benchmark_filter='BM_ObjTableResolveContended' \
  --benchmark_min_time="$MIN_TIME" \
  --benchmark_format=json > "$TMP/objtable.json"

"$BUILD/bench_fig12_ipc" \
  --benchmark_filter='BM_HiStarRingSegOps' \
  --benchmark_min_time="$MIN_TIME" \
  --benchmark_format=json > "$TMP/ipc.json"

SHA="$(git -C "$ROOT" rev-parse --short HEAD 2>/dev/null || echo unknown)"
NPROC="$(nproc 2>/dev/null || echo 0)"

"$BUILD/bench_emit_trajectory" \
  --out "$OUT" --sha "$SHA" --nproc "$NPROC" \
  "$TMP/labels.json" "$TMP/objtable.json" "$TMP/ipc.json"
