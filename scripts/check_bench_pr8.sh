#!/usr/bin/env bash
# Machine checks for the PR 8 engine rows in BENCH_pr8.json (written by
# scripts/bench_json.sh). Three acceptance inequalities, blob vs Bε-tree:
#   1. dirty-1000 checkpoint: betree issues fewer device write ops than blob
#      (one message section vs one blob per dirty object);
#   2. dirty-1000 checkpoint: betree bytes written stay within 2x of the
#      serialized payload (message framing is cheap);
#   3. restore: the blob image pays >= 10x the betree image's disk-model
#      seeks (scattered blobs vs sequential node/section runs).
# grep/sed/awk only — no python, no JSON library.
#
# Usage: scripts/check_bench_pr8.sh [BENCH_pr8.json]
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
F="${1:-$ROOT/BENCH_pr8.json}"

if [ ! -f "$F" ]; then
  echo "check_bench_pr8.sh: $F missing — run scripts/bench_json.sh first" >&2
  exit 1
fi

# ctr <row-name-prefix> <counter> — pull one counter off the matching row.
ctr() {
  local row
  row="$(grep -F "\"full_name\": \"$1" "$F" | head -1)"
  if [ -z "$row" ]; then
    echo "check_bench_pr8.sh: no row matching $1 in $F" >&2
    exit 1
  fi
  local val
  val="$(printf '%s\n' "$row" | sed -n "s/.*\"$2\": \([0-9.eE+-]*\).*/\1/p")"
  if [ -z "$val" ]; then
    echo "check_bench_pr8.sh: row $1 has no counter $2" >&2
    exit 1
  fi
  printf '%s\n' "$val"
}

WOPS_BLOB="$(ctr 'BM_EngineCheckpointDirty/files:1000/engine:0' wops)"
WOPS_BETREE="$(ctr 'BM_EngineCheckpointDirty/files:1000/engine:1' wops)"
WBYTES_BETREE="$(ctr 'BM_EngineCheckpointDirty/files:1000/engine:1' wbytes)"
PAYLOAD="$(ctr 'BM_EngineCheckpointDirty/files:1000/engine:1' payload)"
SEEKS_BLOB="$(ctr 'BM_EngineRestore/files:1000/engine:0' seeks)"
SEEKS_BETREE="$(ctr 'BM_EngineRestore/files:1000/engine:1' seeks)"

awk -v wops_blob="$WOPS_BLOB" -v wops_betree="$WOPS_BETREE" \
    -v wbytes_betree="$WBYTES_BETREE" -v payload="$PAYLOAD" \
    -v seeks_blob="$SEEKS_BLOB" -v seeks_betree="$SEEKS_BETREE" 'BEGIN {
  ok = 1
  if (!(wops_betree + 0 < wops_blob + 0)) {
    print "FAIL: betree checkpoint write ops (" wops_betree ") not < blob (" wops_blob ")"
    ok = 0
  }
  if (!(wbytes_betree + 0 <= 2 * (payload + 0))) {
    print "FAIL: betree checkpoint bytes (" wbytes_betree ") > 2x payload (" payload ")"
    ok = 0
  }
  floor = seeks_betree + 0 < 1 ? 1 : seeks_betree + 0
  if (!(seeks_blob + 0 >= 10 * floor)) {
    print "FAIL: blob restore seeks (" seeks_blob ") < 10x betree seeks (" seeks_betree ")"
    ok = 0
  }
  if (ok) {
    print "BENCH_pr8 checks passed:"
    print "  checkpoint wops: betree " wops_betree " < blob " wops_blob
    print "  checkpoint bytes: betree " wbytes_betree " <= 2x payload " payload
    print "  restore seeks: blob " seeks_blob " >= 10x betree " seeks_betree
  }
  exit ok ? 0 : 1
}'
