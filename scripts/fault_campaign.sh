#!/usr/bin/env bash
# Runs the full randomized fault-injection matrix (PR 7): the seeded
# schedule campaign in tests/store/fault_campaign_test.cc at CI scale, plus
# the deterministic fault suites, tee'ing everything into one log suitable
# for upload as a build artifact.
#
# Usage: scripts/fault_campaign.sh [build-dir] [log-file]
# Env:
#   FAULT_SCHEDULES  schedules per workload (default 100 → 400 schedules
#                    across the four workloads, betree-heavy included)
#   FAULT_SEED       replay exactly one failing schedule seed and exit
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build}"
LOG="${2:-$ROOT/fault_campaign.log}"

if [ ! -x "$BUILD/store_fault_campaign_test" ]; then
  echo "fault_campaign.sh: $BUILD/store_fault_campaign_test missing — build the test suite first" >&2
  exit 1
fi

: > "$LOG"

if [ -n "${FAULT_SEED:-}" ]; then
  # Replay mode: one seed, all workloads, full output.
  echo "== replaying FAULT_SEED=$FAULT_SEED ==" | tee -a "$LOG"
  FAULT_SEED="$FAULT_SEED" "$BUILD/store_fault_campaign_test" 2>&1 | tee -a "$LOG"
  exit "${PIPESTATUS[0]}"
fi

SCHEDULES="${FAULT_SCHEDULES:-100}"
echo "== randomized campaign: $SCHEDULES schedules/workload ==" | tee -a "$LOG"
FAULT_SCHEDULES="$SCHEDULES" "$BUILD/store_fault_campaign_test" 2>&1 | tee -a "$LOG"
rc="${PIPESTATUS[0]}"

# The deterministic fault suites ride along so the artifact is a complete
# fault-model record, not just the randomized half.
for t in store_superblock_fault_test store_alloc_failure_test store_sync_fault_status_test; do
  if [ -x "$BUILD/$t" ]; then
    echo "== $t ==" | tee -a "$LOG"
    "$BUILD/$t" 2>&1 | tee -a "$LOG"
    [ "${PIPESTATUS[0]}" -eq 0 ] || rc=1
  fi
done

echo "== fault campaign exit: $rc (log: $LOG) ==" | tee -a "$LOG"
exit "$rc"
