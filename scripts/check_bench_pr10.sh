#!/usr/bin/env bash
# Machine checks for the PR 10 tracing-overhead rows in BENCH_pr10.json
# (written by scripts/bench_json.sh from a normal tree and a
# -DHISTAR_TRACE=0 tree; notrace rows carry an "@notrace" suffix).
#   1. warm lock-free batch: traced ns/op <= 1.05x notrace + a small
#      absolute grace (the rows are ~microseconds, so a pure percentage
#      gate would flap on scheduler noise; BENCH_PR10_GRACE_NS overrides);
#   2. dirty-1000 checkpoint (betree): same 5% + grace bound on the
#      disk-model time;
#   3. determinism: tracing must not change what the store writes — the
#      checkpoint's device write-op count is identical in both trees.
# grep/sed/awk only — no python, no JSON library.
#
# Usage: scripts/check_bench_pr10.sh [BENCH_pr10.json]
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
F="${1:-$ROOT/BENCH_pr10.json}"
GRACE_NS="${BENCH_PR10_GRACE_NS:-200}"

if [ ! -f "$F" ]; then
  echo "check_bench_pr10.sh: $F missing — run scripts/bench_json.sh with a build-notrace tree first" >&2
  exit 1
fi

# field <exact-full-name> <field> — pull one numeric field off the matching
# row. The name must be exact (closing quote included in the match) so the
# traced row never shadows its "@notrace" twin.
field() {
  local row
  row="$(grep -F "\"full_name\": \"$1\"" "$F" | head -1)"
  if [ -z "$row" ]; then
    echo "check_bench_pr10.sh: no row named $1 in $F" >&2
    exit 1
  fi
  local val
  val="$(printf '%s\n' "$row" | sed -n "s/.*\"$2\": \([0-9.eE+-]*\).*/\1/p")"
  if [ -z "$val" ]; then
    echo "check_bench_pr10.sh: row $1 has no field $2" >&2
    exit 1
  fi
  printf '%s\n' "$val"
}

LF='BM_HiStarLockFreeBatchGet'
CK='BM_EngineCheckpointDirty/files:1000/engine:1/iterations:1/manual_time'

LF_ON="$(field "$LF" ns_per_op)"
LF_OFF="$(field "$LF@notrace" ns_per_op)"
CK_ON="$(field "$CK" ns_per_op)"
CK_OFF="$(field "$CK@notrace" ns_per_op)"
CK_WOPS_ON="$(field "$CK" wops)"
CK_WOPS_OFF="$(field "$CK@notrace" wops)"

awk -v lf_on="$LF_ON" -v lf_off="$LF_OFF" \
    -v ck_on="$CK_ON" -v ck_off="$CK_OFF" \
    -v wops_on="$CK_WOPS_ON" -v wops_off="$CK_WOPS_OFF" \
    -v grace="$GRACE_NS" 'BEGIN {
  ok = 1
  lf_budget = 1.05 * (lf_off + 0) + grace + 0
  if (!(lf_on + 0 <= lf_budget)) {
    print "FAIL: lock-free batch traced ns/op (" lf_on ") > 1.05x notrace (" lf_off ") + " grace "ns"
    ok = 0
  }
  ck_budget = 1.05 * (ck_off + 0) + grace + 0
  if (!(ck_on + 0 <= ck_budget)) {
    print "FAIL: checkpoint traced ns/op (" ck_on ") > 1.05x notrace (" ck_off ") + " grace "ns"
    ok = 0
  }
  if (wops_on + 0 != wops_off + 0) {
    print "FAIL: tracing changed checkpoint write ops (" wops_on " vs " wops_off ")"
    ok = 0
  }
  if (ok) {
    print "BENCH_pr10 checks passed:"
    print "  lock-free batch: traced " lf_on " <= 1.05x notrace " lf_off " + " grace "ns"
    print "  checkpoint: traced " ck_on " <= 1.05x notrace " ck_off " + " grace "ns"
    print "  checkpoint wops unchanged by tracing: " wops_on
  }
  exit ok ? 0 : 1
}'
