// Tests for the histar-lint discipline checker itself (tools/histar-lint/).
//
// Every rule ships with a good/bad fixture pair under
// tools/histar-lint/fixtures/: the bad file must produce at least one
// finding of exactly that rule, the good file — which includes decoys such
// as the forbidden tokens inside comments and string literals — must stay
// silent. A final test lints the real src/ tree and requires zero findings,
// which is the same bar the CI static-analysis job enforces.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "tools/histar-lint/lint.h"

namespace histar {
namespace lint {
namespace {

namespace fs = std::filesystem;

std::string ReadFile(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << p;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

fs::path FixtureDir() {
  return fs::path(HISTAR_SOURCE_DIR) / "tools" / "histar-lint" / "fixtures";
}

// "second-table-lock" → "second_table_lock"
std::string Underscored(const std::string& rule) {
  std::string s = rule;
  for (char& c : s) {
    if (c == '-') c = '_';
  }
  return s;
}

TEST(HistarLint, RuleNamesAreStableAndComplete) {
  const std::vector<std::string> names = AllRuleNames();
  const std::vector<std::string> expected = {
      "second-table-lock",    "registry-bypass",
      "epoch-guard-blocking", "nofail-region-check",
      "shard-mutex-outside-tablelock", "raw-sync-primitive",
      "raw-clock-read",
  };
  EXPECT_EQ(names, expected);
}

TEST(HistarLint, EveryRuleHasFixturePair) {
  for (const std::string& rule : AllRuleNames()) {
    const std::string stem = Underscored(rule);
    EXPECT_TRUE(fs::exists(FixtureDir() / (stem + "_bad.cc")))
        << rule << " is missing its bad fixture";
    EXPECT_TRUE(fs::exists(FixtureDir() / (stem + "_good.cc")))
        << rule << " is missing its good fixture";
  }
}

TEST(HistarLint, BadFixturesFireTheirRule) {
  for (const std::string& rule : AllRuleNames()) {
    const fs::path bad = FixtureDir() / (Underscored(rule) + "_bad.cc");
    const std::vector<Finding> findings =
        LintSource("fixtures/" + bad.filename().string(), ReadFile(bad), {rule});
    EXPECT_GE(findings.size(), 1u) << rule << " missed its bad fixture";
    for (const Finding& f : findings) {
      EXPECT_EQ(f.rule, rule);
      EXPECT_GT(f.line, 0);
      EXPECT_FALSE(f.message.empty());
    }
  }
}

TEST(HistarLint, GoodFixturesStaySilent) {
  for (const std::string& rule : AllRuleNames()) {
    const fs::path good = FixtureDir() / (Underscored(rule) + "_good.cc");
    const std::vector<Finding> findings =
        LintSource("fixtures/" + good.filename().string(), ReadFile(good), {rule});
    EXPECT_TRUE(findings.empty())
        << rule << " false-positived on its good fixture: "
        << (findings.empty() ? "" : findings[0].message);
  }
}

TEST(HistarLint, BadFixtureLinesPointAtTheViolation) {
  // Spot-check that line numbers survive comment/string blanking: the raw
  // std::mutex in the bad fixture sits on a known line, after two comment
  // lines and two includes.
  const fs::path bad = FixtureDir() / "raw_sync_primitive_bad.cc";
  const std::vector<Finding> findings =
      LintSource("x.cc", ReadFile(bad), {"raw-sync-primitive"});
  ASSERT_FALSE(findings.empty());
  EXPECT_EQ(findings[0].line, 8);  // std::mutex g_mu;
}

// ---- CleanSource -----------------------------------------------------------

TEST(CleanSource, BlanksLineAndBlockComments) {
  const std::string in = "int a; // std::mutex here\nint /* TableLock */ b;\n";
  const std::string out = CleanSource(in);
  EXPECT_EQ(out.find("mutex"), std::string::npos);
  EXPECT_EQ(out.find("TableLock"), std::string::npos);
  EXPECT_NE(out.find("int a;"), std::string::npos);
  EXPECT_NE(out.find('b'), std::string::npos);
}

TEST(CleanSource, BlanksStringAndCharLiterals) {
  const std::string in =
      "const char* s = \"std::lock_guard\"; char c = 'x';\n";
  const std::string out = CleanSource(in);
  EXPECT_EQ(out.find("lock_guard"), std::string::npos);
  EXPECT_EQ(out.find('x'), std::string::npos);
  EXPECT_NE(out.find("const char* s ="), std::string::npos);
}

TEST(CleanSource, HandlesEscapesAndRawStrings) {
  const std::string in =
      "auto a = \"esc \\\" std::mutex\"; auto r = R\"(TableLock lk)\"; int z;\n";
  const std::string out = CleanSource(in);
  EXPECT_EQ(out.find("mutex"), std::string::npos);
  EXPECT_EQ(out.find("TableLock"), std::string::npos);
  EXPECT_NE(out.find("int z;"), std::string::npos);
}

TEST(CleanSource, PreservesNewlinesForLineNumbers) {
  const std::string in = "a\n/* b\nc\nd */\ne\n";
  const std::string out = CleanSource(in);
  EXPECT_EQ(std::count(in.begin(), in.end(), '\n'),
            std::count(out.begin(), out.end(), '\n'));
}

TEST(CleanSource, MultiLineBlockCommentKeepsFollowingLineIntact) {
  const std::string in = "/*\n std::mutex m;\n*/\nstd::mutex real;\n";
  const std::vector<Finding> findings =
      LintSource("x.cc", in, {"raw-sync-primitive"});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 4);
}

// ---- the real tree ----------------------------------------------------------

// The same check the CI job runs: the discipline holds everywhere under
// src/. A finding here means either a genuine violation crept in or a rule
// needs a sharper exemption — both are build-stoppers.
TEST(HistarLint, RealTreeIsClean) {
  const fs::path root = fs::path(HISTAR_SOURCE_DIR);
  std::vector<Finding> all;
  int files = 0;
  for (const auto& entry : fs::recursive_directory_iterator(root / "src")) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext != ".cc" && ext != ".h") continue;
    const std::string rel =
        fs::relative(entry.path(), root).generic_string();
    ++files;
    const std::vector<Finding> f = LintSource(rel, ReadFile(entry.path()));
    all.insert(all.end(), f.begin(), f.end());
  }
  EXPECT_GT(files, 30);  // sanity: we actually scanned the tree
  for (const Finding& f : all) {
    ADD_FAILURE() << f.file << ":" << f.line << ": [" << f.rule << "] "
                  << f.message;
  }
}

}  // namespace
}  // namespace lint
}  // namespace histar
