// The incremental-checkpoint subsystem and the deduplicated label table
// (ISSUE 4 tentpole; docs/persistence.md has the formats).
//
// Properties under test:
//  * the first checkpoint is a full base; later ones are increments that
//    write O(dirty) object images and an O(delta) section — never the
//    O(live) map rewrite of the pre-incremental format;
//  * a base is forced every max_increments epochs, resetting the chain;
//  * checkpoint blobs reference labels by 32-bit id, so a label-heavy world
//    (1k objects sharing ≤32 labels) writes measurably fewer bytes than the
//    self-contained format, and restores to an equivalent world;
//  * restore loads the label table first and re-interns once; the id remap
//    handles tables whose ids this boot cannot reproduce;
//  * the generation-based dirty retire keeps an object dirty for the NEXT
//    increment when a write lands between the snapshot cut and the store
//    commit (the PR 2 property, extended to the incremental path).
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <map>

#include "src/store/single_level_store.h"
#include "tests/kernel/kernel_test_util.h"

namespace histar {
namespace {

StoreTuning SmallTuning(EngineKind engine = EngineKind::kBlob) {
  StoreTuning t;
  t.log_region_bytes = 1 << 20;
  t.log_apply_threshold = 50;
  t.max_increments = 4;
  t.engine = engine;
  return t;
}

// Serializes every live object of `k` in the canonical self-contained
// format. Two kernels are equivalent iff these maps are equal: the inline
// blob covers type, id, creation_seq, label bytes, quota, flags, descrip,
// metadata, and the type-specific payload.
std::map<ObjectId, std::vector<uint8_t>> WorldImage(const Kernel& k) {
  std::map<ObjectId, std::vector<uint8_t>> img;
  for (ObjectId id : k.LiveObjects()) {
    std::vector<uint8_t> bytes;
    EXPECT_TRUE(k.SerializeObject(id, &bytes));
    img[id] = std::move(bytes);
  }
  return img;
}

// Every chain property below must hold for both engines: the blob engine's
// map-record sections and the Bε-tree engine's message-batch sections ride
// the same superblock chain and the same WAL.
class IncrementalCheckpointTest : public KernelTest,
                                  public ::testing::WithParamInterface<EngineKind> {
 protected:
  StoreTuning Tuning() const { return SmallTuning(GetParam()); }

  void SetUp() override {
    KernelTest::SetUp();
    DiskGeometry g;
    g.capacity_bytes = 128 << 20;
    g.zero_latency = true;
    g.store_data = true;
    disk_ = std::make_unique<DiskModel>(g);
    store_ = std::make_unique<SingleLevelStore>(disk_.get(), Tuning());
    ASSERT_EQ(store_->Format(), Status::kOk);
    kernel_->AttachPersistTarget(store_.get());
  }

  std::unique_ptr<Kernel> Reboot() {
    auto k = std::make_unique<Kernel>();
    recovered_store_ = std::make_unique<SingleLevelStore>(disk_.get(), Tuning());
    EXPECT_EQ(recovered_store_->Recover(k.get()), Status::kOk);
    return k;
  }

  std::unique_ptr<DiskModel> disk_;
  std::unique_ptr<SingleLevelStore> store_;
  std::unique_ptr<SingleLevelStore> recovered_store_;
};

INSTANTIATE_TEST_SUITE_P(Engines, IncrementalCheckpointTest,
                         ::testing::Values(EngineKind::kBlob, EngineKind::kBetree),
                         [](const ::testing::TestParamInfo<EngineKind>& info) {
                           return info.param == EngineKind::kBetree ? "betree" : "blob";
                         });

TEST_P(IncrementalCheckpointTest, FirstCheckpointIsBaseLaterOnesIncrements) {
  ObjectId seg = MakeSegment(Label(), 256);
  ASSERT_EQ(kernel_->sys_sync(init_), Status::kOk);
  EXPECT_TRUE(store_->last_commit_was_base());
  EXPECT_EQ(store_->chain_length(), 1u);
  uint64_t epoch0 = store_->epoch();

  char b = 'x';
  ASSERT_EQ(kernel_->sys_segment_write(init_, RootEntry(seg), &b, 0, 1), Status::kOk);
  ASSERT_EQ(kernel_->sys_sync(init_), Status::kOk);
  EXPECT_FALSE(store_->last_commit_was_base());
  EXPECT_EQ(store_->chain_length(), 2u);
  EXPECT_GT(store_->epoch(), epoch0);
}

TEST_P(IncrementalCheckpointTest, IncrementWritesDirtyCountNotLiveCount) {
  constexpr int kLive = 200;
  constexpr int kTouched = 5;
  std::vector<ObjectId> segs;
  for (int i = 0; i < kLive; ++i) {
    segs.push_back(MakeSegment(Label(), 64));
  }
  uint64_t base_before = disk_->bytes_written();
  ASSERT_EQ(kernel_->sys_sync(init_), Status::kOk);
  uint64_t base_bytes = disk_->bytes_written() - base_before;
  ASSERT_TRUE(store_->last_commit_was_base());
  uint64_t base_section = store_->last_section_bytes();

  char b = 'y';
  for (int i = 0; i < kTouched; ++i) {
    ASSERT_EQ(kernel_->sys_segment_write(init_, RootEntry(segs[static_cast<size_t>(i)]), &b,
                                         0, 1),
              Status::kOk);
  }
  uint64_t before = disk_->bytes_written();
  ASSERT_EQ(kernel_->sys_sync(init_), Status::kOk);
  uint64_t incr_bytes = disk_->bytes_written() - before;

  EXPECT_FALSE(store_->last_commit_was_base());
  // O(k), not O(n): exactly the touched blobs...
  EXPECT_EQ(store_->last_commit_objects(), static_cast<uint64_t>(kTouched));
  if (GetParam() == EngineKind::kBlob) {
    // ...and a section listing k map records, nowhere near the full-map base
    // section (which carries 200+ records plus the label table). Blob-only:
    // the Bε-tree's base section is just a root pointer (the world lives in
    // tree nodes), so its increment sections — which carry full object
    // images as messages — are *larger* than its base section by design.
    EXPECT_LT(store_->last_section_bytes() * 4, base_section);
  }
  // Total disk traffic for the increment is a small fraction of the base
  // commit's, for both engines: O(dirty) blobs-or-messages plus a section
  // and a superblock, vs the full world.
  EXPECT_LT(incr_bytes * 4, base_bytes);
}

TEST_P(IncrementalCheckpointTest, BaseIsForcedEveryMaxIncrements) {
  ObjectId seg = MakeSegment(Label(), 64);
  ASSERT_EQ(kernel_->sys_sync(init_), Status::kOk);  // base, chain = 1
  char b = 'z';
  // max_increments = 4: four increments extend the chain, the fifth commit
  // folds everything back into a fresh base.
  for (int i = 0; i < 4; ++i) {
    ASSERT_EQ(kernel_->sys_segment_write(init_, RootEntry(seg), &b, 0, 1), Status::kOk);
    ASSERT_EQ(kernel_->sys_sync(init_), Status::kOk);
    EXPECT_FALSE(store_->last_commit_was_base());
    EXPECT_EQ(store_->chain_length(), static_cast<size_t>(i) + 2);
  }
  ASSERT_EQ(kernel_->sys_segment_write(init_, RootEntry(seg), &b, 0, 1), Status::kOk);
  ASSERT_EQ(kernel_->sys_sync(init_), Status::kOk);
  EXPECT_TRUE(store_->last_commit_was_base());
  EXPECT_EQ(store_->chain_length(), 1u);
}

TEST_P(IncrementalCheckpointTest, LabelTableDedupsLabelHeavyWorld) {
  // ≥1k objects sharing ≤32 labels (the ISSUE 4 acceptance shape). The
  // labels are level combinations over three categories — three explicit
  // entries make each inline label ~4 words, which the label-ref format
  // collapses to 4 bytes per object plus one table record per distinct
  // label. (Three categories, not one per label: the persisted table must
  // be intern-order complete for id stability, so every re-intern of the
  // creating thread's growing ownership label would ride along and muddy
  // the size accounting.)
  constexpr int kObjects = 1000;
  constexpr int kLabels = 27;
  CategoryId cats[3] = {kernel_->sys_cat_create(init_).value(),
                        kernel_->sys_cat_create(init_).value(),
                        kernel_->sys_cat_create(init_).value()};
  const Level levels[3] = {Level::k0, Level::k2, Level::k3};
  std::vector<Label> labels;
  for (int i = 0; i < kLabels; ++i) {
    Label l(Level::k1);
    l.set(cats[0], levels[i % 3]);
    l.set(cats[1], levels[(i / 3) % 3]);
    l.set(cats[2], levels[(i / 9) % 3]);
    labels.push_back(l);
  }
  std::vector<ObjectId> segs;
  for (int i = 0; i < kObjects; ++i) {
    segs.push_back(MakeSegment(labels[static_cast<size_t>(i % kLabels)], 32));
  }
  ASSERT_EQ(kernel_->sys_sync(init_), Status::kOk);

  // Per-object saving: the label-ref image of every segment is smaller than
  // its self-contained image, and summed over the world the saving dwarfs
  // the one-time label table. (The object-map records exist in both formats
  // — the pre-incremental store rewrote the full map image every sync — so
  // the fair comparison is blob bytes + label-table bytes vs blob bytes
  // with inline labels.)
  uint64_t inline_total = 0;
  uint64_t ref_total = 0;
  for (ObjectId id : segs) {
    std::vector<uint8_t> inline_bytes;
    std::vector<uint8_t> ref_bytes;
    ASSERT_TRUE(kernel_->SerializeObject(id, &inline_bytes));
    ASSERT_TRUE(kernel_->SerializeObject(id, &ref_bytes, /*label_refs=*/true));
    EXPECT_LT(ref_bytes.size(), inline_bytes.size());
    inline_total += inline_bytes.size();
    ref_total += ref_bytes.size();
  }
  uint64_t table_bytes = 0;
  kernel_->label_registry().EnumerateSince({}, [&table_bytes](LabelId, const Label& l) {
    std::vector<uint8_t> b;
    l.Serialize(&b);
    table_bytes += 8 + b.size();  // id + length words + label image
  });
  EXPECT_LT(ref_total + table_bytes, inline_total);
  EXPECT_GE(store_->label_table_size(), static_cast<size_t>(kLabels));

  // And the world restores to full object/label equivalence.
  std::map<ObjectId, std::vector<uint8_t>> before = WorldImage(*kernel_);
  std::unique_ptr<Kernel> k2 = Reboot();
  EXPECT_EQ(WorldImage(*k2), before);
  // Spot-check the security state actually bites: a stranger at {1} cannot
  // read a fully k3-tainted segment (labels[26]) after reboot.
  ObjectId stranger = k2->BootstrapThread(Label(), Label(Level::k2), "stranger");
  char buf[8];
  EXPECT_EQ(k2->sys_segment_read(stranger, ContainerEntry{k2->root_container(), segs[26]},
                                 buf, 0, 4),
            Status::kLabelCheckFailed);
}

TEST_P(IncrementalCheckpointTest, ChainContinuesAcrossReboot) {
  // Recovery re-interns the label table in ascending-id order, reproducing
  // the writing boot's ids — so the recovered store may keep extending the
  // same chain instead of rewriting the world.
  ObjectId seg = MakeSegment(Label(), 128);
  ASSERT_EQ(kernel_->sys_sync(init_), Status::kOk);
  char b = 'a';
  ASSERT_EQ(kernel_->sys_segment_write(init_, RootEntry(seg), &b, 0, 1), Status::kOk);
  ASSERT_EQ(kernel_->sys_sync(init_), Status::kOk);
  ASSERT_EQ(store_->chain_length(), 2u);

  std::unique_ptr<Kernel> k2 = Reboot();
  CurrentThread bind(init_);
  EXPECT_EQ(recovered_store_->chain_length(), 2u);
  b = 'b';
  ASSERT_EQ(k2->sys_segment_write(init_, ContainerEntry{k2->root_container(), seg}, &b, 0, 1),
            Status::kOk);
  ASSERT_EQ(k2->sys_sync(init_), Status::kOk);
  // Ids were reproducible, so the post-reboot sync stays incremental.
  EXPECT_FALSE(recovered_store_->last_commit_was_base());
  EXPECT_EQ(recovered_store_->chain_length(), 3u);
  EXPECT_EQ(recovered_store_->last_commit_objects(), 1u);

  std::map<ObjectId, std::vector<uint8_t>> before = WorldImage(*k2);
  auto store3 = std::make_unique<SingleLevelStore>(disk_.get(), Tuning());
  auto k3 = std::make_unique<Kernel>();
  ASSERT_EQ(store3->Recover(k3.get()), Status::kOk);
  EXPECT_EQ(WorldImage(*k3), before);
}

TEST_P(IncrementalCheckpointTest, DeadObjectsRecordedByIncrements) {
  ObjectId keep = MakeSegment(Label(), 64);
  ObjectId gone = MakeSegment(Label(), 64);
  ASSERT_EQ(kernel_->sys_sync(init_), Status::kOk);
  ASSERT_EQ(kernel_->sys_container_unref(init_, RootEntry(gone)), Status::kOk);
  ASSERT_EQ(kernel_->sys_sync(init_), Status::kOk);
  ASSERT_FALSE(store_->last_commit_was_base());  // the death rode an increment

  std::unique_ptr<Kernel> k2 = Reboot();
  EXPECT_TRUE(k2->ObjectExists(keep));
  EXPECT_FALSE(k2->ObjectExists(gone));
}

TEST_P(IncrementalCheckpointTest, WalRecordsReplayOverTheChain) {
  // WAL blobs are self-contained; they must replay on top of base +
  // increments regardless of the label table's id space.
  ObjectId seg = MakeSegment(Label(), 64);
  ASSERT_EQ(kernel_->sys_sync(init_), Status::kOk);
  char b = 'w';
  ASSERT_EQ(kernel_->sys_segment_write(init_, RootEntry(seg), &b, 0, 1), Status::kOk);
  ASSERT_EQ(kernel_->sys_sync_object(init_, RootEntry(seg)), Status::kOk);

  std::unique_ptr<Kernel> k2 = Reboot();
  CurrentThread bind(init_);
  char out = 0;
  ASSERT_EQ(k2->sys_segment_read(init_, ContainerEntry{k2->root_container(), seg}, &out, 0, 1),
            Status::kOk);
  EXPECT_EQ(out, 'w');
}

TEST_P(IncrementalCheckpointTest, LongRunningCommitStreamFoldsChain) {
  // The superblock holds 48 (offset, length) section slots. Before this PR a
  // commit stream that outlived the slots forced a full base rollover — an
  // O(live-world) write spike in the middle of an otherwise O(dirty)
  // workload. Now the store folds the oldest half of the increments into one
  // merged increment and keeps going: with max_increments effectively
  // disabled, a 120-sync stream must never exceed the slot budget, never
  // write a second base, fold at least once, and still restore exactly.
  StoreTuning t = Tuning();
  t.max_increments = 100000;  // only the slot budget bounds the chain
  store_ = std::make_unique<SingleLevelStore>(disk_.get(), t);
  ASSERT_EQ(store_->Format(), Status::kOk);
  kernel_->AttachPersistTarget(store_.get());

  ObjectId seg = MakeSegment(Label(), 64);
  ASSERT_EQ(kernel_->sys_sync(init_), Status::kOk);  // the one and only base
  ASSERT_TRUE(store_->last_commit_was_base());

  for (int i = 0; i < 120; ++i) {
    char b = static_cast<char>('a' + i % 26);
    ASSERT_EQ(kernel_->sys_segment_write(init_, RootEntry(seg), &b,
                                         static_cast<uint64_t>(i % 64), 1),
              Status::kOk);
    ASSERT_EQ(kernel_->sys_sync(init_), Status::kOk);
    EXPECT_FALSE(store_->last_commit_was_base())
        << "sync " << i << " fell back to a base rollover";
    EXPECT_LE(store_->chain_length(), 48u) << "sync " << i;
  }
  EXPECT_GE(store_->chain_folds(), 1u);

  std::map<ObjectId, std::vector<uint8_t>> before = WorldImage(*kernel_);
  std::unique_ptr<Kernel> k2 = Reboot();
  EXPECT_EQ(WorldImage(*k2), before);
  CurrentThread bind(init_);
  char out = 0;
  ASSERT_EQ(k2->sys_segment_read(init_, ContainerEntry{k2->root_container(), seg}, &out,
                                 119 % 64, 1),
            Status::kOk);
  EXPECT_EQ(out, static_cast<char>('a' + 119 % 26));
}

// ---- the id remap (restore with a table this boot cannot reproduce) ---------

TEST(LabelTableRemapTest, RemapResolvesForeignIdsAndForcesRewrite) {
  // Donor kernel: a labeled segment serialized in label-ref format, plus
  // the donor's label table records.
  Kernel donor;
  ObjectId init = donor.BootstrapThread(Label(Level::k1), Label(Level::k2), "init");
  CurrentThread bind(init);
  CategoryId c = donor.sys_cat_create(init).value();
  Label taint(Level::k1, {{c, Level::k3}});
  CreateSpec spec;
  spec.container = donor.root_container();
  spec.descrip = "donor-seg";
  spec.quota = kObjectOverheadBytes + 64 + kPageSize;
  // Burn a few allocations first: both kernels draw object ids from the
  // same deterministic sequence, and the recipient below allocates several
  // threads of its own — the labeled segment's id must not collide.
  for (int i = 0; i < 8; ++i) {
    spec.label = Label();
    ASSERT_TRUE(donor.sys_segment_create(init, spec, 8).ok());
  }
  spec.label = taint;
  ObjectId seg = donor.sys_segment_create(init, spec, 64).value();
  std::vector<uint8_t> ref_blob;
  ASSERT_TRUE(donor.SerializeObject(seg, &ref_blob, /*label_refs=*/true));

  std::vector<LabelTableRecord> table;
  donor.label_registry().EnumerateSince({}, [&table](LabelId id, const Label& l) {
    LabelTableRecord rec;
    rec.id = id;
    l.Serialize(&rec.bytes);
    table.push_back(std::move(rec));
  });

  // Recipient kernel with extra labels interned first: the donor's slot
  // sequence cannot be reproduced, so ids move and the remap is not the
  // identity — restore must still resolve every reference.
  Kernel other;
  ObjectId oinit = other.BootstrapThread(Label(Level::k0), Label(Level::k3), "skew");
  for (int i = 0; i < 4; ++i) {
    CategoryId oc = other.sys_cat_create(oinit).value();
    (void)other.BootstrapThread(Label(Level::k1, {{oc, Level::k2}}), Label(Level::k2), "skew");
  }
  bool stable = true;
  ASSERT_EQ(other.RestoreLabelTable(table, &stable), Status::kOk);
  EXPECT_FALSE(stable);
  ASSERT_EQ(other.RestoreObject(ref_blob), Status::kOk);
  // The label came back bit-for-bit even though its id moved: the canonical
  // inline serialization (which resolves the handle through the registry)
  // matches the donor's exactly.
  std::vector<uint8_t> round;
  ASSERT_TRUE(other.SerializeObject(seg, &round));
  std::vector<uint8_t> donor_round;
  ASSERT_TRUE(donor.SerializeObject(seg, &donor_round));
  EXPECT_EQ(round, donor_round);

  // An unreproducible table re-dirties the world at FinishRestore so the
  // next sync rewrites every blob in the new id space.
  other.FinishRestore(other.root_container());
  EXPECT_FALSE(other.DirtyObjects().empty());
}

TEST(LabelTableRemapTest, MalformedTableRecordsAreRejected) {
  Kernel k;
  std::vector<LabelTableRecord> bad(1);
  bad[0].id = kInvalidLabelId;  // id 0 is never handed out
  Label().Serialize(&bad[0].bytes);
  EXPECT_EQ(k.RestoreLabelTable(bad, nullptr), Status::kCorrupt);

  std::vector<LabelTableRecord> torn(1);
  torn[0].id = 17;
  Label().Serialize(&torn[0].bytes);
  torn[0].bytes.pop_back();  // truncated label image
  EXPECT_EQ(k.RestoreLabelTable(torn, nullptr), Status::kCorrupt);
}

// ---- generation-based dirty retire on the incremental path ------------------

// A persist target that mutates an object *during* the commit — the write
// that lands between the snapshot cut and the store's return. The PR 2
// generation rule must keep that object dirty so the NEXT increment
// re-serializes it; otherwise the increment chain silently loses the write.
class MidCommitWriter : public PersistTarget {
 public:
  Status Checkpoint(const CheckpointBatch& batch) override {
    last_dirty_ids.clear();
    for (const ObjectImage& img : batch.dirty) {
      last_dirty_ids.push_back(img.id);
    }
    ++checkpoints;
    if (mid_commit) {
      mid_commit();  // simulate the racing writer
    }
    return Status::kOk;
  }
  Status SyncOne(ObjectId, const std::vector<uint8_t>&, uint64_t) override {
    return Status::kOk;
  }
  Status SyncPages(ObjectId, uint64_t, const std::vector<uint8_t>&) override {
    return Status::kOk;
  }

  std::function<void()> mid_commit;
  std::vector<ObjectId> last_dirty_ids;
  int checkpoints = 0;
};

TEST_P(IncrementalCheckpointTest, WriteDuringCommitStaysDirtyForNextIncrement) {
  MidCommitWriter target;
  kernel_->AttachPersistTarget(&target);
  ObjectId seg = MakeSegment(Label(), 16);
  char b = '1';
  ASSERT_EQ(kernel_->sys_segment_write(init_, RootEntry(seg), &b, 0, 1), Status::kOk);

  // While the first checkpoint commits (no shard lock held), another write
  // lands on the already-serialized segment.
  target.mid_commit = [&]() {
    char c = '2';
    ASSERT_EQ(kernel_->sys_segment_write(init_, RootEntry(seg), &c, 0, 1), Status::kOk);
  };
  ASSERT_EQ(kernel_->sys_sync(init_), Status::kOk);
  ASSERT_TRUE(std::count(target.last_dirty_ids.begin(), target.last_dirty_ids.end(), seg));

  // The mid-commit write must survive the retire: the next sync (the next
  // increment) re-serializes the segment with the new byte.
  target.mid_commit = nullptr;
  ASSERT_EQ(kernel_->sys_sync(init_), Status::kOk);
  EXPECT_TRUE(std::count(target.last_dirty_ids.begin(), target.last_dirty_ids.end(), seg))
      << "write landing between snapshot cut and store commit was lost";

  // And a third sync with nothing outstanding is empty — the mark was
  // retired exactly once its generation matched.
  ASSERT_EQ(kernel_->sys_sync(init_), Status::kOk);
  EXPECT_FALSE(std::count(target.last_dirty_ids.begin(), target.last_dirty_ids.end(), seg));
  kernel_->AttachPersistTarget(store_.get());
}

}  // namespace
}  // namespace histar
