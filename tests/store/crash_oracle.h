// Shared crash-recovery oracle (PR 7). The pre/post-crash state-equivalence
// machinery extracted from recovery_crash_test.cc so every store fault test
// — the crash matrix, the superblock corruption tests, and the randomized
// fault campaign — asserts recovery correctness the same way.
//
// Model: the disk crashes, the kernel does not. The live kernel that keeps
// running across a failed sync IS the shadow the paper's recovery contract
// is checked against: a reboot from disk must reproduce a world the live
// system actually passed through at a commit point.
//
// Two strengths of check, because syncs differ in what they promise:
//  * EXACT: after a successful group sync the entire dirty world is
//    committed under one superblock flip — the recovered image must be
//    byte-identical (canonical inline serialization, label-table-interning
//    independent) to the live image at that sync. The oracle also knows the
//    exact durable image right after any passed reboot check (recovery does
//    not write), and can extend it through a successful single-object sync
//    when no failed commit's residue is pending.
//  * PER-OBJECT: a failed sync leaves commit-boundary ambiguity (the flip
//    may have landed while the syscall reported failure), and residue from
//    the failure (blobs already written, pending object-map updates) may
//    ride along with the NEXT commit. The whole-world image is then not
//    predictable without modeling store internals, but every recovered
//    object must still be byte-identical to SOME state that object really
//    held at a sync call — recovery may time-travel per object, it may
//    never invent bytes. The next successful group sync (or passed reboot
//    check) collapses the ambiguity and restores EXACT mode.
#ifndef TESTS_STORE_CRASH_ORACLE_H_
#define TESTS_STORE_CRASH_ORACLE_H_

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <vector>

#include "src/store/single_level_store.h"

namespace histar {

// Object id → canonical serialized image (labels inline, so the bytes do
// not depend on the label table's interned ids and compare stably across
// recoveries).
using WorldMap = std::map<ObjectId, std::vector<uint8_t>>;

inline WorldMap WorldImage(const Kernel& k) {
  WorldMap img;
  for (ObjectId id : k.LiveObjects()) {
    std::vector<uint8_t> bytes;
    EXPECT_TRUE(k.SerializeObject(id, &bytes));
    img[id] = std::move(bytes);
  }
  return img;
}

// One reboot: a fresh store + kernel restored from whatever is on disk.
// `status` is Recover()'s verdict; the kernel is only meaningful on kOk.
struct RebootResult {
  std::unique_ptr<SingleLevelStore> store;
  std::unique_ptr<Kernel> kernel;
  Status status = Status::kOk;
};

inline RebootResult RebootFromDisk(DiskModel* disk, const StoreTuning& tuning) {
  RebootResult r;
  r.store = std::make_unique<SingleLevelStore>(disk, tuning);
  r.kernel = std::make_unique<Kernel>();
  r.status = r.store->Recover(r.kernel.get());
  return r;
}

// Atomicity check for crashes parked around one sync: the recovered world
// must be one of the supplied candidate images (typically {last committed,
// post-sync} — a crash on the commit boundary can persist the flip while
// the syscall reports failure).
inline ::testing::AssertionResult WorldAmong(const WorldMap& recovered,
                                             std::initializer_list<const WorldMap*> candidates) {
  for (const WorldMap* c : candidates) {
    if (recovered == *c) {
      return ::testing::AssertionSuccess();
    }
  }
  return ::testing::AssertionFailure()
         << "recovered world (" << recovered.size()
         << " objects) matches none of the " << candidates.size()
         << " candidate commit points";
}

// All-or-nothing byte check for a single segment: every byte must be the
// old fill or every byte the new fill — a mixture is a torn write that
// recovery let through.
inline ::testing::AssertionResult AllOldOrAllNew(const std::vector<uint8_t>& got,
                                                 uint8_t old_fill, uint8_t new_fill,
                                                 bool* was_new = nullptr) {
  bool all_old = true;
  bool all_new = true;
  for (uint8_t b : got) {
    all_old = all_old && b == old_fill;
    all_new = all_new && b == new_fill;
    if (b != old_fill && b != new_fill) {
      return ::testing::AssertionFailure()
             << "byte 0x" << std::hex << int{b} << " is neither old fill 0x"
             << int{old_fill} << " nor new fill 0x" << int{new_fill};
    }
  }
  if (was_new != nullptr) {
    *was_new = all_new;
  }
  if (all_old || all_new) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure() << "segment recovered as a mixture of old and new bytes";
}

// The campaign oracle proper: tracks what could legally be durable as the
// live kernel runs through syncs, failures, and reboot checks.
class CrashOracle {
 public:
  // `initial` is the world image at the first committed state (post-format
  // first sync, or whatever the schedule treats as its baseline).
  explicit CrashOracle(const WorldMap& initial) : exact_(initial) { RecordLive(initial); }

  // Every state passed here becomes a legal per-object recovery target:
  // syncs write object images from the live state at the call, so these are
  // exactly the bytes that can ever reach the disk.
  void RecordLive(const WorldMap& live) {
    for (const auto& [id, bytes] : live) {
      std::vector<std::vector<uint8_t>>& states = history_[id];
      bool known = false;
      for (const std::vector<uint8_t>& s : states) {
        if (s == bytes) {
          known = true;
          break;
        }
      }
      if (!known) {
        states.push_back(bytes);
      }
    }
  }

  // A group sync (sys_sync) returned `st` with the live world now `live`.
  void OnGroupSync(Status st, const WorldMap& live) {
    RecordLive(live);
    if (st == Status::kOk) {
      // The checkpoint covered every dirty object AND any residue from
      // earlier failed commits: durable == live, ambiguity gone.
      exact_ = live;
      carryover_ = false;
    } else {
      // Boundary ambiguity + residue: durable is old, new, or (after the
      // next commit) a hybrid. Drop to per-object mode.
      exact_.reset();
      carryover_ = true;
    }
  }

  // A single-object sync (sys_sync_object of `id`) returned `st`.
  void OnObjectSync(Status st, ObjectId id, const WorldMap& live) {
    RecordLive(live);
    if (st == Status::kOk && exact_.has_value() && !carryover_) {
      // Clean WAL append: durable is the known image with exactly this
      // object's bytes updated (its link in a parent container is NOT
      // persisted by this — POSIX-fsync-like, the parent needs its own
      // sync, and the oracle correctly keeps the parent's old bytes).
      auto it = live.find(id);
      if (it != live.end()) {
        (*exact_)[id] = it->second;
        return;
      }
      exact_.reset();
    } else if (st != Status::kOk) {
      exact_.reset();
      carryover_ = true;
    } else {
      // Success, but residue from an earlier failure may have committed
      // alongside the record (large-object path folds pending updates).
      exact_.reset();
    }
  }

  // Reboot check: `recovered` came off a successful Recover() with no fault
  // armed. On success the candidate set collapses — the durable world is
  // now known exactly (recovery never writes).
  ::testing::AssertionResult CheckRecovered(const WorldMap& recovered) {
    if (exact_.has_value()) {
      if (recovered == *exact_) {
        return ::testing::AssertionSuccess();
      }
      return ::testing::AssertionFailure()
             << "strict mode: recovered world differs from the committed image ("
             << Diff(*exact_, recovered) << ")";
    }
    // Per-object mode: every recovered object must hold bytes it really had
    // at some sync point. Presence/absence is not constrained (a failed
    // commit's residue decides which updates and deletes became durable),
    // byte content is.
    for (const auto& [id, bytes] : recovered) {
      auto it = history_.find(id);
      if (it == history_.end()) {
        return ::testing::AssertionFailure()
               << "recovered object " << id << " was never created by the workload";
      }
      bool known = false;
      for (const std::vector<uint8_t>& s : it->second) {
        if (s == bytes) {
          known = true;
          break;
        }
      }
      if (!known) {
        return ::testing::AssertionFailure()
               << "recovered object " << id << " (" << bytes.size()
               << " bytes) matches none of its " << it->second.size()
               << " historical states — recovery invented bytes";
      }
    }
    exact_ = recovered;  // collapse: this is what is durable right now
    return ::testing::AssertionSuccess();
  }

  bool exact_mode() const { return exact_.has_value(); }

 private:
  static std::string Diff(const WorldMap& want, const WorldMap& got) {
    std::ostringstream os;
    size_t changed = 0;
    for (const auto& [id, bytes] : want) {
      auto it = got.find(id);
      if (it == got.end()) {
        os << " -" << id;
        ++changed;
      } else if (it->second != bytes) {
        os << " ~" << id;
        ++changed;
      }
      if (changed > 8) break;
    }
    for (const auto& [id, bytes] : got) {
      if (want.find(id) == want.end()) {
        os << " +" << id;
      }
    }
    return "want " + std::to_string(want.size()) + " objects, got " +
           std::to_string(got.size()) + ", delta:" + os.str();
  }

  // The exactly-known durable image, when one exists.
  std::optional<WorldMap> exact_;
  // A failed commit's residue (written blobs, pending map updates) may ride
  // along with the next commit until a successful group sync clears it.
  bool carryover_ = false;
  // Every byte-state each object ever presented to a sync.
  std::map<ObjectId, std::vector<std::vector<uint8_t>>> history_;
};

}  // namespace histar

#endif  // TESTS_STORE_CRASH_ORACLE_H_
