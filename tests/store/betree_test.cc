// The Bε-tree engine (PR 8 tentpole; src/store/betree.{h,cc}, msg.h).
//
// Layers under test, bottom up:
//  * the message algebra (MsgBuffer latest-wins coalescing, the wire format,
//    range extraction — the unit an interior node flushes to one child);
//  * the tree itself: a base flush injects staged messages, splits leaves
//    and interior nodes, writes dirty nodes children-first, and the whole
//    structure reloads bit-exactly through a reboot;
//  * increment overlay: message batches in committed sections override the
//    on-disk tree during recovery without touching a node;
//  * crash discipline: a crash or torn node write mid-base-flush fails the
//    commit before the superblock flip (old root boots), and the sticky
//    base-pending flag forces the retry to be a base;
//  * the sys_sync_pages split: in place on a clean leaf blob (no commit),
//    staged restage + commit otherwise;
//  * engine adoption: recovery follows the section header's engine byte,
//    not the configured tuning — either engine's disk boots under either
//    default;
//  * fold equivalence: MergeSectionBodies replays like the originals;
//  * allocation-failure sweep over the base flush path.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "src/store/betree.h"
#include "src/store/msg.h"
#include "src/store/single_level_store.h"
#include "src/store/store_alloc.h"
#include "tests/kernel/kernel_test_util.h"
#include "tests/store/crash_oracle.h"

namespace histar {
namespace {

// ---- message algebra ---------------------------------------------------------

Msg Upsert(uint64_t id, std::vector<uint8_t> bytes, uint64_t meta_len) {
  Msg m;
  m.kind = MsgKind::kUpsert;
  m.id = id;
  m.meta_len = meta_len;
  m.bytes = std::move(bytes);
  return m;
}

Msg Delete(uint64_t id) {
  Msg m;
  m.kind = MsgKind::kDelete;
  m.id = id;
  return m;
}

Msg MapUpdate(uint64_t id, uint64_t meta_len) {
  Msg m;
  m.kind = MsgKind::kMapUpdate;
  m.id = id;
  m.meta_len = meta_len;
  return m;
}

Msg LabelDelta(uint32_t id, std::vector<uint8_t> bytes) {
  Msg m;
  m.kind = MsgKind::kLabelDelta;
  m.id = id;
  m.bytes = std::move(bytes);
  return m;
}

TEST(BetreeMsg, BufferCoalescesLatestWins) {
  MsgBuffer b;
  b.Apply(Upsert(7, {1, 2, 3, 4}, 4));
  b.Apply(Upsert(7, {9, 9}, 2));  // newer image replaces
  ASSERT_EQ(b.objects().size(), 1u);
  EXPECT_EQ(b.objects().at(7).bytes, (std::vector<uint8_t>{9, 9}));

  b.Apply(MapUpdate(7, 1));  // patches the staged upsert's meta_len
  EXPECT_EQ(b.objects().at(7).kind, MsgKind::kUpsert);
  EXPECT_EQ(b.objects().at(7).meta_len, 1u);
  b.Apply(MapUpdate(7, 100));  // clamped to the staged image
  EXPECT_EQ(b.objects().at(7).meta_len, 2u);

  b.Apply(Delete(7));  // tombstone replaces the upsert...
  EXPECT_EQ(b.objects().at(7).kind, MsgKind::kDelete);
  b.Apply(MapUpdate(7, 3));  // ...and shrugs off metadata patches
  EXPECT_EQ(b.objects().at(7).kind, MsgKind::kDelete);

  b.Apply(MapUpdate(8, 5));  // no staged image: kept for the leaf
  EXPECT_EQ(b.objects().at(8).kind, MsgKind::kMapUpdate);

  b.Apply(LabelDelta(3, {1}));
  b.Apply(LabelDelta(3, {2, 2}));  // latest label image wins
  ASSERT_EQ(b.labels().size(), 1u);
  EXPECT_EQ(b.labels().at(3), (std::vector<uint8_t>{2, 2}));
  EXPECT_EQ(b.count(), 3u);  // two object entries + one label
}

TEST(BetreeMsg, WireRoundTripAllKinds) {
  std::vector<Msg> in;
  in.push_back(Upsert(42, {5, 6, 7}, 2));
  in.push_back(Delete(43));
  in.push_back(LabelDelta(9, {8, 8, 8, 8}));
  in.push_back(MapUpdate(44, 16));
  std::vector<uint8_t> wire;
  for (const Msg& m : in) {
    size_t before = wire.size();
    SerializeMsg(m, &wire);
    EXPECT_EQ(wire.size() - before, MsgWireBytes(m));
  }
  storewire::Reader r{wire.data(), wire.size()};
  for (const Msg& want : in) {
    Msg got;
    ASSERT_TRUE(ParseMsg(&r, &got));
    EXPECT_EQ(got.kind, want.kind);
    EXPECT_EQ(got.id, want.id);
    EXPECT_EQ(got.meta_len, want.meta_len);
    EXPECT_EQ(got.bytes, want.bytes);
  }
  EXPECT_EQ(r.pos, wire.size());

  // Truncation anywhere inside the last message fails cleanly.
  storewire::Reader t{wire.data(), wire.size() - 1};
  Msg m;
  ASSERT_TRUE(ParseMsg(&t, &m));
  ASSERT_TRUE(ParseMsg(&t, &m));
  ASSERT_TRUE(ParseMsg(&t, &m));
  EXPECT_FALSE(ParseMsg(&t, &m));
}

TEST(BetreeMsg, ExtractRangePartitions) {
  MsgBuffer b;
  for (uint64_t id = 1; id <= 10; ++id) {
    b.Apply(Upsert(id, {static_cast<uint8_t>(id)}, 1));
  }
  uint64_t total = b.bytes();
  std::map<uint64_t, Msg> mid = b.ExtractRange(3, 7);
  ASSERT_EQ(mid.size(), 4u);
  EXPECT_EQ(mid.begin()->first, 3u);
  EXPECT_EQ(mid.rbegin()->first, 6u);
  EXPECT_EQ(b.objects().size(), 6u);
  EXPECT_LT(b.bytes(), total);

  std::map<uint64_t, Msg> tail = b.ExtractRange(7, ~0ULL);  // "to the end"
  ASSERT_EQ(tail.size(), 4u);
  EXPECT_EQ(tail.rbegin()->first, 10u);
  EXPECT_EQ(b.objects().size(), 2u);  // ids 1, 2 remain
}

TEST(BetreeMsg, MergeBodiesEquivalentToSequentialReplay) {
  // The fold path: two increment bodies coalesce into one whose replay
  // matches replaying them oldest-first.
  DiskGeometry g;
  g.capacity_bytes = 1 << 20;
  g.zero_latency = true;
  DiskModel disk(g);
  ExtentAllocator alloc(0, 1 << 20);
  std::vector<Extent> frees;
  EngineContext ctx{&disk, &alloc, &frees};
  BetreeEngine engine(ctx, BetreeParams{});

  MsgBuffer older;
  older.Apply(Upsert(1, {1, 1}, 2));
  older.Apply(Upsert(2, {2, 2}, 2));
  older.Apply(LabelDelta(5, {10}));
  MsgBuffer newer;
  newer.Apply(Delete(1));
  newer.Apply(Upsert(3, {3}, 1));
  newer.Apply(LabelDelta(5, {20}));

  std::vector<std::vector<uint8_t>> bodies(2);
  older.Serialize(&bodies[0]);
  newer.Serialize(&bodies[1]);
  std::vector<uint8_t> merged_wire;
  ASSERT_EQ(engine.MergeSectionBodies(bodies, &merged_wire), Status::kOk);

  storewire::Reader r{merged_wire.data(), merged_wire.size()};
  uint32_t n = r.U32();
  MsgBuffer merged;
  for (uint32_t i = 0; i < n; ++i) {
    Msg m;
    ASSERT_TRUE(ParseMsg(&r, &m));
    merged.Apply(std::move(m));
  }
  EXPECT_EQ(r.pos, merged_wire.size());
  ASSERT_EQ(merged.objects().size(), 3u);
  EXPECT_EQ(merged.objects().at(1).kind, MsgKind::kDelete);  // tombstone survives
  EXPECT_EQ(merged.objects().at(2).bytes, (std::vector<uint8_t>{2, 2}));
  EXPECT_EQ(merged.objects().at(3).bytes, (std::vector<uint8_t>{3}));
  ASSERT_EQ(merged.labels().size(), 1u);
  EXPECT_EQ(merged.labels().at(5), (std::vector<uint8_t>{20}));  // latest wins

  std::vector<std::vector<uint8_t>> torn = bodies;
  torn[1].pop_back();
  std::vector<uint8_t> out;
  EXPECT_EQ(engine.MergeSectionBodies(torn, &out), Status::kCorrupt);
}

// ---- the tree under the store ------------------------------------------------

class BetreeStoreTest : public KernelTest {
 protected:
  // Toy geometry: ~2 kB nodes and a 2 kB root buffer, so a few dozen
  // 200-byte objects build a real multi-level tree and nearly every group
  // sync wants a base flush.
  static StoreTuning TinyTuning(uint64_t root_buffer_bytes = 2048) {
    StoreTuning t;
    t.log_region_bytes = 1 << 20;
    t.log_apply_threshold = 50;
    t.engine = EngineKind::kBetree;
    t.betree.node_bytes = 2048;
    t.betree.buffer_bytes = 1024;
    t.betree.root_buffer_bytes = root_buffer_bytes;
    t.betree.fanout = 4;
    return t;
  }

  void SetUp() override {
    KernelTest::SetUp();
    DiskGeometry g;
    g.capacity_bytes = 64 << 20;
    g.zero_latency = true;
    g.store_data = true;
    disk_ = std::make_unique<DiskModel>(g);
    MakeStore(TinyTuning());
  }

  void MakeStore(const StoreTuning& t) {
    tuning_ = t;
    store_ = std::make_unique<SingleLevelStore>(disk_.get(), tuning_);
    ASSERT_EQ(store_->Format(), Status::kOk);
    kernel_->AttachPersistTarget(store_.get());
  }

  BetreeEngine* Tree(SingleLevelStore* s = nullptr) {
    return static_cast<BetreeEngine*>((s != nullptr ? s : store_.get())->engine());
  }

  std::unique_ptr<DiskModel> disk_;
  StoreTuning tuning_;
  std::unique_ptr<SingleLevelStore> store_;
};

TEST_F(BetreeStoreTest, BaseFlushBuildsMultiLevelTreeThatReloads) {
  std::vector<ObjectId> segs;
  for (int i = 0; i < 80; ++i) {
    segs.push_back(MakeSegment(Label(), 200));
  }
  ASSERT_EQ(kernel_->sys_sync(init_), Status::kOk);
  ASSERT_TRUE(store_->last_commit_was_base());
  EXPECT_GE(Tree()->height(), 2);  // 80 images never fit one 2 kB leaf
  EXPECT_GT(Tree()->node_count(), 4u);
  EXPECT_EQ(Tree()->staged_bytes(), 0u);  // the flush consumed the buffers

  WorldMap before = WorldImage(*kernel_);
  RebootResult r = RebootFromDisk(disk_.get(), tuning_);
  ASSERT_EQ(r.status, Status::kOk);
  EXPECT_EQ(WorldImage(*r.kernel), before);
  // The reloaded tree is the written tree, not a rebuilt one.
  EXPECT_EQ(Tree(r.store.get())->node_count(), Tree()->node_count());
  EXPECT_EQ(Tree(r.store.get())->height(), Tree()->height());
}

TEST_F(BetreeStoreTest, IncrementMessagesOverlayTreeOnRecovery) {
  // Big root buffer: after the first base, everything stays an increment —
  // recovery must lay the message batches over the on-disk tree.
  MakeStore(TinyTuning(/*root_buffer_bytes=*/1 << 20));
  std::vector<ObjectId> segs;
  for (int i = 0; i < 40; ++i) {
    segs.push_back(MakeSegment(Label(), 200));
  }
  ASSERT_EQ(kernel_->sys_sync(init_), Status::kOk);
  ASSERT_TRUE(store_->last_commit_was_base());
  uint64_t nodes_after_base = Tree()->node_count();

  char b = '!';
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(kernel_->sys_segment_write(init_, RootEntry(segs[static_cast<size_t>(i)]),
                                         &b, 0, 1),
              Status::kOk);
  }
  ASSERT_EQ(kernel_->sys_container_unref(init_, RootEntry(segs[10])), Status::kOk);
  ASSERT_EQ(kernel_->sys_sync(init_), Status::kOk);
  EXPECT_FALSE(store_->last_commit_was_base());
  // The increment staged messages; the on-disk tree is untouched.
  EXPECT_EQ(Tree()->node_count(), nodes_after_base);
  EXPECT_GT(Tree()->staged_bytes(), 0u);

  WorldMap before = WorldImage(*kernel_);
  RebootResult r = RebootFromDisk(disk_.get(), tuning_);
  ASSERT_EQ(r.status, Status::kOk);
  EXPECT_EQ(WorldImage(*r.kernel), before);
  EXPECT_FALSE(r.kernel->ObjectExists(segs[10]));  // the tombstone applied
  CurrentThread bind(init_);
  char out = 0;
  ASSERT_EQ(r.kernel->sys_segment_read(
                init_, ContainerEntry{r.kernel->root_container(), segs[0]}, &out, 0, 1),
            Status::kOk);
  EXPECT_EQ(out, '!');
}

TEST_F(BetreeStoreTest, CrashMidBaseFlushBootsOldRootThenRetriesAsBase) {
  std::vector<ObjectId> segs;
  for (int i = 0; i < 30; ++i) {
    segs.push_back(MakeSegment(Label(), 200));
  }
  ASSERT_EQ(kernel_->sys_sync(init_), Status::kOk);
  WorldMap committed = WorldImage(*kernel_);

  // Dirty enough to overflow the 2 kB root buffer (next sync = base flush),
  // then crash a few thousand bytes into the node writes.
  char b = '?';
  for (ObjectId s : segs) {
    ASSERT_EQ(kernel_->sys_segment_write(init_, RootEntry(s), &b, 0, 1), Status::kOk);
  }
  disk_->CrashAfterBytes(3000);
  EXPECT_NE(kernel_->sys_sync(init_), Status::kOk);
  EXPECT_TRUE(Tree()->base_pending()) << "failed base flush must stay sticky";

  // The flip never happened: a reboot sees the last committed world.
  disk_->Repair();
  RebootResult r = RebootFromDisk(disk_.get(), tuning_);
  ASSERT_EQ(r.status, Status::kOk);
  EXPECT_EQ(WorldImage(*r.kernel), committed);

  // The live store retries — and the retry must be a base (the consumed
  // messages live only in the in-memory tree now).
  ASSERT_EQ(kernel_->sys_sync(init_), Status::kOk);
  EXPECT_TRUE(store_->last_commit_was_base());
  EXPECT_FALSE(Tree()->base_pending());
  RebootResult r2 = RebootFromDisk(disk_.get(), tuning_);
  ASSERT_EQ(r2.status, Status::kOk);
  EXPECT_EQ(WorldImage(*r2.kernel), WorldImage(*kernel_));
}

TEST_F(BetreeStoreTest, TornInteriorNodeWriteFailsCommitBeforeFlip) {
  std::vector<ObjectId> segs;
  for (int i = 0; i < 40; ++i) {
    segs.push_back(MakeSegment(Label(), 200));
  }
  ASSERT_EQ(kernel_->sys_sync(init_), Status::kOk);
  ASSERT_GE(Tree()->height(), 2);
  WorldMap committed = WorldImage(*kernel_);

  char b = '#';
  for (ObjectId s : segs) {
    ASSERT_EQ(kernel_->sys_segment_write(init_, RootEntry(s), &b, 0, 1), Status::kOk);
  }
  // Tear the first heap write of the flush (node writes precede the section
  // write): an arbitrary 17-byte prefix persists, then the device dies.
  FaultPlan plan;
  FaultRule rule;
  rule.kind = FaultKind::kTorn;
  rule.on_read = false;
  // Past the superblock slots (8 kB) and the 1 MB WAL region: heap only.
  // A group sync writes no WAL, so the first heap write of this sync is a
  // tree node (the flush precedes the section write).
  rule.offset_lo = (8 << 10) + (1 << 20);
  rule.arg = 17;
  plan.rules.push_back(rule);
  disk_->SetFaultPlan(std::move(plan));
  EXPECT_NE(kernel_->sys_sync(init_), Status::kOk);
  EXPECT_EQ(disk_->faults_injected(FaultKind::kTorn), 1u);

  // The torn node is unreachable — the old superblock still names the old
  // root, and recovery checksums would reject the torn image anyway.
  disk_->Repair();
  RebootResult r = RebootFromDisk(disk_.get(), tuning_);
  ASSERT_EQ(r.status, Status::kOk);
  EXPECT_EQ(WorldImage(*r.kernel), committed);

  ASSERT_EQ(kernel_->sys_sync(init_), Status::kOk);
  RebootResult r2 = RebootFromDisk(disk_.get(), tuning_);
  ASSERT_EQ(r2.status, Status::kOk);
  EXPECT_EQ(WorldImage(*r2.kernel), WorldImage(*kernel_));
}

TEST_F(BetreeStoreTest, SyncPagesWritesInPlaceOnCleanLeafStagesOtherwise) {
  // Big root buffer so the second group sync stays an increment — its
  // object image lives in the committed message buffer, not the tree.
  MakeStore(TinyTuning(/*root_buffer_bytes=*/1 << 20));
  ObjectId seg = MakeSegment(Label(), 256);
  ASSERT_EQ(kernel_->sys_sync(init_), Status::kOk);  // base: object home = leaf blob
  uint64_t epoch_clean = store_->epoch();

  // Clean leaf: the payload flush goes in place — no commit, no new epoch.
  char b = 'p';
  ASSERT_EQ(kernel_->sys_segment_write(init_, RootEntry(seg), &b, 64, 1), Status::kOk);
  ASSERT_EQ(kernel_->sys_sync_pages(init_, RootEntry(seg), 64, 1), Status::kOk);
  EXPECT_EQ(store_->epoch(), epoch_clean);

  RebootResult r = RebootFromDisk(disk_.get(), tuning_);
  ASSERT_EQ(r.status, Status::kOk);
  CurrentThread bind(init_);
  char out = 0;
  ASSERT_EQ(r.kernel->sys_segment_read(
                init_, ContainerEntry{r.kernel->root_container(), seg}, &out, 64, 1),
            Status::kOk);
  EXPECT_EQ(out, 'p');

  // Staged image (an object whose freshest bytes rode an increment and sit
  // in the root buffer, not a leaf): the flush must restage and commit.
  ObjectId young = MakeSegment(Label(), 256);
  ASSERT_EQ(kernel_->sys_sync(init_), Status::kOk);  // increment: image = message
  EXPECT_FALSE(store_->last_commit_was_base());
  char c = 'q';
  ASSERT_EQ(kernel_->sys_segment_write(init_, RootEntry(young), &c, 32, 1), Status::kOk);
  uint64_t epoch_before = store_->epoch();
  ASSERT_EQ(kernel_->sys_sync_pages(init_, RootEntry(young), 32, 1), Status::kOk);
  EXPECT_GT(store_->epoch(), epoch_before) << "staged flush must commit";

  RebootResult r2 = RebootFromDisk(disk_.get(), tuning_);
  ASSERT_EQ(r2.status, Status::kOk);
  out = 0;
  ASSERT_EQ(r2.kernel->sys_segment_read(
                init_, ContainerEntry{r2.kernel->root_container(), young}, &out, 32, 1),
            Status::kOk);
  EXPECT_EQ(out, 'q');
}

TEST_F(BetreeStoreTest, RecoveryAdoptsOnDiskEngineOverTuning) {
  // Same disk layout knobs as TinyTuning, default (blob) engine. Only the
  // engine choice may differ between the writing and the booting config —
  // the WAL region size is layout, not policy.
  StoreTuning blob_tuning;
  blob_tuning.log_region_bytes = 1 << 20;
  blob_tuning.log_apply_threshold = 50;

  // Betree-written disk, blob-configured boot.
  ObjectId seg = MakeSegment(Label(), 128);
  ASSERT_EQ(kernel_->sys_sync(init_), Status::kOk);
  WorldMap before = WorldImage(*kernel_);
  RebootResult r = RebootFromDisk(disk_.get(), blob_tuning);
  ASSERT_EQ(r.status, Status::kOk);
  EXPECT_EQ(r.store->engine_kind(), EngineKind::kBetree);
  EXPECT_STREQ(r.store->engine_name(), "betree");
  EXPECT_EQ(WorldImage(*r.kernel), before);
  EXPECT_TRUE(r.kernel->ObjectExists(seg));

  // Blob-written disk, betree-configured boot — on a fresh kernel, so the
  // whole world is dirty and actually reaches the blank blob disk.
  DiskGeometry g;
  g.capacity_bytes = 64 << 20;
  g.zero_latency = true;
  g.store_data = true;
  auto blob_disk = std::make_unique<DiskModel>(g);
  auto blob_store = std::make_unique<SingleLevelStore>(blob_disk.get(), blob_tuning);
  ASSERT_EQ(blob_store->Format(), Status::kOk);
  auto blob_kernel = std::make_unique<Kernel>();
  ObjectId binit = blob_kernel->BootstrapThread(Label(Level::k1), Label(Level::k2), "init");
  CurrentThread bind(binit);
  blob_kernel->AttachPersistTarget(blob_store.get());
  ASSERT_EQ(blob_kernel->sys_sync(binit), Status::kOk);
  WorldMap blob_world = WorldImage(*blob_kernel);
  RebootResult rb = RebootFromDisk(blob_disk.get(), TinyTuning());
  ASSERT_EQ(rb.status, Status::kOk);
  EXPECT_EQ(rb.store->engine_kind(), EngineKind::kBlob);
  EXPECT_EQ(WorldImage(*rb.kernel), blob_world);
}

TEST_F(BetreeStoreTest, AllocationFailureSweepOverBaseFlush) {
  // Fail the Nth allocator check for N = 1..24, each against a base flush
  // with real tree work. Whatever fails must leave the store retriable and
  // the disk bootable to the last committed world.
  std::vector<ObjectId> segs;
  for (int i = 0; i < 20; ++i) {
    segs.push_back(MakeSegment(Label(), 200));
  }
  ASSERT_EQ(kernel_->sys_sync(init_), Status::kOk);

  for (int n = 1; n <= 24; ++n) {
    WorldMap committed = WorldImage(*kernel_);
    char b = static_cast<char>('a' + n);
    for (ObjectId s : segs) {
      ASSERT_EQ(kernel_->sys_segment_write(init_, RootEntry(s), &b, 0, 1), Status::kOk);
    }
    StoreAlloc::FailNth(static_cast<uint64_t>(n));
    Status st = kernel_->sys_sync(init_);
    StoreAlloc::Disarm();
    if (st != Status::kOk) {
      // Failed before the flip: the disk still boots the old world, the
      // kernel still holds the dirty marks.
      EXPECT_FALSE(kernel_->DirtyObjects().empty()) << "N=" << n;
      RebootResult r = RebootFromDisk(disk_.get(), tuning_);
      ASSERT_EQ(r.status, Status::kOk) << "N=" << n;
      EXPECT_EQ(WorldImage(*r.kernel), committed) << "N=" << n;
      ASSERT_EQ(kernel_->sys_sync(init_), Status::kOk) << "N=" << n;
    }
    RebootResult r = RebootFromDisk(disk_.get(), tuning_);
    ASSERT_EQ(r.status, Status::kOk) << "N=" << n;
    EXPECT_EQ(WorldImage(*r.kernel), WorldImage(*kernel_)) << "N=" << n;
  }
}

}  // namespace
}  // namespace histar
