// Crash-injection matrix for the single-level store (paper §3/§4: "Write-
// ahead logging ensures atomicity and crash-consistency").
//
// Property under test: for a crash at *any* byte offset within a checkpoint
// or WAL append, recovery yields a consistent world — every object is either
// entirely at its pre-sync or entirely at its post-sync state, the object
// map validates, and the root container is intact. TEST_P sweeps crash
// points across the full write volume of the operation.
#include <gtest/gtest.h>

#include <random>

#include "src/store/single_level_store.h"
#include "tests/kernel/kernel_test_util.h"
#include "tests/store/crash_oracle.h"

namespace histar {
namespace {

StoreTuning TestTuning() {
  StoreTuning t;
  t.log_region_bytes = 1 << 20;
  t.log_apply_threshold = 50;
  return t;
}

class CrashMatrix : public KernelTest, public ::testing::WithParamInterface<int> {
 protected:
  void SetUp() override {
    KernelTest::SetUp();
    DiskGeometry g;
    g.capacity_bytes = 64 << 20;
    g.zero_latency = true;
    g.store_data = true;
    disk_ = std::make_unique<DiskModel>(g);
    store_ = std::make_unique<SingleLevelStore>(disk_.get(), TestTuning());
    ASSERT_EQ(store_->Format(), Status::kOk);
    kernel_->AttachPersistTarget(store_.get());
  }

  // Boots a fresh kernel from whatever survived on disk.
  std::unique_ptr<Kernel> Reboot() {
    RebootResult r = RebootFromDisk(disk_.get(), TestTuning());
    EXPECT_EQ(r.status, Status::kOk);
    recovered_store_ = std::move(r.store);
    return std::move(r.kernel);
  }

  std::unique_ptr<DiskModel> disk_;
  std::unique_ptr<SingleLevelStore> store_;
  std::unique_ptr<SingleLevelStore> recovered_store_;
};

// Crash during the second checkpoint, at a parameterized byte offset. The
// segment must read back as all-ones (old state) or all-twos (new state) —
// never a mixture, and never unreadable.
TEST_P(CrashMatrix, CheckpointIsAllOrNothing) {
  constexpr uint64_t kLen = 4096;
  ObjectId seg = MakeSegment(Label(), kLen);
  std::vector<uint8_t> ones(kLen, 1);
  ASSERT_EQ(kernel_->sys_segment_write(init_, RootEntry(seg), ones.data(), 0, kLen),
            Status::kOk);
  ASSERT_EQ(kernel_->sys_sync(init_), Status::kOk);
  uint64_t baseline_bytes = disk_->bytes_written();

  std::vector<uint8_t> twos(kLen, 2);
  ASSERT_EQ(kernel_->sys_segment_write(init_, RootEntry(seg), twos.data(), 0, kLen),
            Status::kOk);

  // The second checkpoint writes roughly what the first did after the
  // initial boot-state dump; park the crash point at GetParam() percent of
  // a conservative estimate.
  uint64_t estimate = baseline_bytes / 2 + kLen;
  uint64_t crash_at = estimate * static_cast<uint64_t>(GetParam()) / 100 + 1;
  disk_->CrashAfterBytes(crash_at);
  Status st = kernel_->sys_sync(init_);
  disk_->Repair();

  std::unique_ptr<Kernel> k2 = Reboot();
  CurrentThread bind(init_);
  std::vector<uint8_t> out(kLen, 0xee);
  ASSERT_EQ(k2->sys_segment_read(init_, ContainerEntry{k2->root_container(), seg}, out.data(),
                                 0, kLen),
            Status::kOk);
  bool was_new = false;
  EXPECT_TRUE(AllOldOrAllNew(out, 1, 2, &was_new))
      << "torn segment after crash at byte " << crash_at;
  if (st == Status::kOk) {
    // If the checkpoint claimed success, the new state must be what
    // recovered (the superblock flip is the commit point).
    EXPECT_TRUE(was_new);
  }
}

INSTANTIATE_TEST_SUITE_P(CrashPoints, CrashMatrix,
                         ::testing::Values(1, 5, 15, 30, 45, 60, 75, 90, 99));

// The same property for the WAL path: fsync of one object crashes mid-
// append; recovery yields old or new contents, never garbage.
TEST_P(CrashMatrix, WalAppendIsAllOrNothing) {
  constexpr uint64_t kLen = 2048;
  ObjectId seg = MakeSegment(Label(), kLen);
  std::vector<uint8_t> ones(kLen, 0xaa);
  ASSERT_EQ(kernel_->sys_segment_write(init_, RootEntry(seg), ones.data(), 0, kLen),
            Status::kOk);
  ASSERT_EQ(kernel_->sys_sync(init_), Status::kOk);

  std::vector<uint8_t> twos(kLen, 0xbb);
  ASSERT_EQ(kernel_->sys_segment_write(init_, RootEntry(seg), twos.data(), 0, kLen),
            Status::kOk);
  // A log record is roughly the serialized object (~kLen + header).
  uint64_t crash_at = (kLen + 256) * static_cast<uint64_t>(GetParam()) / 100 + 1;
  disk_->CrashAfterBytes(crash_at);
  (void)kernel_->sys_sync_object(init_, RootEntry(seg));
  disk_->Repair();

  std::unique_ptr<Kernel> k2 = Reboot();
  CurrentThread bind(init_);
  std::vector<uint8_t> out(kLen, 0);
  ASSERT_EQ(k2->sys_segment_read(init_, ContainerEntry{k2->root_container(), seg}, out.data(),
                                 0, kLen),
            Status::kOk);
  EXPECT_TRUE(AllOldOrAllNew(out, 0xaa, 0xbb))
      << "torn WAL recovery at crash byte " << crash_at;
}

// Randomized workload, randomized crash point: whatever survives must
// recover into a world whose every object is readable and whose container
// graph is rooted.
TEST_P(CrashMatrix, RandomWorkloadRecoversConsistent) {
  std::mt19937_64 rng(static_cast<uint64_t>(GetParam()) * 7919);
  std::vector<ObjectId> segs;
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 6; ++i) {
      ObjectId s = MakeSegment(Label(), 256);
      uint64_t stamp = rng();
      kernel_->sys_segment_write(init_, RootEntry(s), &stamp, 0, 8);
      segs.push_back(s);
    }
    if (round == 2) {
      // Delete a few to exercise the dead-object sweep.
      for (int i = 0; i < 3; ++i) {
        kernel_->sys_container_unref(init_, RootEntry(segs[static_cast<size_t>(i)]));
      }
    }
    if (round % 2 == 0) {
      kernel_->sys_sync(init_);
    } else {
      kernel_->sys_sync_object(init_, RootEntry(segs.back()));
    }
  }
  disk_->CrashAfterBytes(rng() % 4096 + 1);
  // Poke until the crash fires (at most a handful of syncs).
  for (int i = 0; i < 8 && !disk_->crashed(); ++i) {
    uint64_t stamp = rng();
    kernel_->sys_segment_write(init_, RootEntry(segs.back()), &stamp, 0, 8);
    (void)kernel_->sys_sync(init_);
  }
  disk_->Repair();

  std::unique_ptr<Kernel> k2 = Reboot();
  CurrentThread bind(init_);
  // Every object the recovered kernel lists must be fully readable.
  for (ObjectId id : k2->LiveObjects()) {
    Result<ObjectType> type = k2->sys_obj_get_type(init_, ContainerEntry{id, id});
    if (type.ok() && type.value() == ObjectType::kContainer) {
      EXPECT_TRUE(k2->sys_container_list(init_, id).ok());
    }
  }
  EXPECT_TRUE(k2->ObjectExists(k2->root_container()));
}

INSTANTIATE_TEST_SUITE_P(WalCrashPoints, CrashMatrix, ::testing::Values(2, 20, 50, 80, 98),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "pct" + std::to_string(info.param) + "b";
                         });

}  // namespace
}  // namespace histar
