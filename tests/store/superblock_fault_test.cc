// Superblock corruption coverage (PR 7 satellite): the two alternating
// superblock slots are the store's commit points, and recovery must treat
// them as mutually redundant — a torn, misdirected, or bit-flipped write to
// the NEWER slot falls back to the older (consistent, possibly older-epoch)
// one; only losing both ends recovery, and then with kNotFound, never an
// abort or a fabricated world.
#include <gtest/gtest.h>

#include <cstring>

#include "src/store/single_level_store.h"
#include "tests/kernel/kernel_test_util.h"
#include "tests/store/crash_oracle.h"

namespace histar {
namespace {

StoreTuning SbTuning() {
  StoreTuning t;
  t.log_region_bytes = 1 << 20;
  t.max_increments = 4;
  return t;
}

class SuperblockFaultTest : public KernelTest {
 protected:
  void SetUp() override {
    KernelTest::SetUp();
    DiskGeometry g;
    g.capacity_bytes = 64 << 20;
    g.zero_latency = true;
    g.store_data = true;
    disk_ = std::make_unique<DiskModel>(g);
    store_ = std::make_unique<SingleLevelStore>(disk_.get(), SbTuning());
    ASSERT_EQ(store_->Format(), Status::kOk);
    kernel_->AttachPersistTarget(store_.get());
  }

  // Commits one epoch: stamp a segment and group-sync.
  void CommitStamp(ObjectId seg, uint64_t stamp) {
    ASSERT_EQ(kernel_->sys_segment_write(init_, RootEntry(seg), &stamp, 0, 8), Status::kOk);
    ASSERT_EQ(kernel_->sys_sync(init_), Status::kOk);
  }

  // The superblock's generation field lives 8 bytes into each slot; the
  // slot with the larger generation is what recovery prefers.
  uint64_t SlotGeneration(uint64_t slot) {
    uint64_t gen = 0;
    EXPECT_EQ(disk_->Read(slot + 8, &gen, 8), Status::kOk);
    return gen;
  }

  uint64_t NewerSlot() { return SlotGeneration(0) >= SlotGeneration(4096) ? 0 : 4096; }

  // Flips one bit inside a slot's checksummed region (the epoch field).
  void FlipBitInSlot(uint64_t slot) {
    uint8_t b = 0;
    ASSERT_EQ(disk_->Read(slot + 32, &b, 1), Status::kOk);
    b ^= 0x10;
    ASSERT_EQ(disk_->Write(slot + 32, &b, 1), Status::kOk);
  }

  std::unique_ptr<DiskModel> disk_;
  std::unique_ptr<SingleLevelStore> store_;
};

// A checksum-defeating flip on the newer copy: recovery must come up on the
// older copy's world — the state of the previous commit — and keep
// committing from there.
TEST_F(SuperblockFaultTest, BitFlipOnNewerCopyFallsBackToOlderEpoch) {
  ObjectId seg = MakeSegment(Label(), 64);
  CommitStamp(seg, 1);
  WorldMap older = WorldImage(*kernel_);
  CommitStamp(seg, 2);
  WorldMap newer = WorldImage(*kernel_);
  ASSERT_NE(older, newer);

  FlipBitInSlot(NewerSlot());
  RebootResult r = RebootFromDisk(disk_.get(), SbTuning());
  ASSERT_EQ(r.status, Status::kOk);
  EXPECT_EQ(WorldImage(*r.kernel), older)
      << "fallback should land on the previous commit, not a hybrid";

  // The fallen-back store must still be able to advance its commit point.
  CurrentThread bind(init_);
  uint64_t stamp = 3;
  ASSERT_EQ(r.kernel->sys_segment_write(
                init_, ContainerEntry{r.kernel->root_container(), seg}, &stamp, 0, 8),
            Status::kOk);
  EXPECT_EQ(r.kernel->sys_sync(init_), Status::kOk);
}

// Both copies individually corrupted: recovery reports an unformatted /
// unrecoverable disk via kNotFound. No crash, no partial world.
TEST_F(SuperblockFaultTest, BothCopiesCorruptReportsNotFound) {
  ObjectId seg = MakeSegment(Label(), 64);
  CommitStamp(seg, 1);
  CommitStamp(seg, 2);
  FlipBitInSlot(0);
  FlipBitInSlot(4096);
  RebootResult r = RebootFromDisk(disk_.get(), SbTuning());
  EXPECT_EQ(r.status, Status::kNotFound);
}

// A torn superblock write (fault plan, offset window over the slots): the
// device crashes with only a prefix of the new superblock persisted. Its
// checksum cannot validate, so recovery uses the other slot — both slots
// now describe pre-sync epochs ("both stale"), and the pre-sync world is
// what must come back.
TEST_F(SuperblockFaultTest, TornSuperblockWriteRecoversPreviousCommit) {
  ObjectId seg = MakeSegment(Label(), 64);
  CommitStamp(seg, 1);
  WorldMap committed = WorldImage(*kernel_);

  FaultPlan plan;
  FaultRule rule;
  rule.kind = FaultKind::kTorn;
  rule.on_read = false;
  rule.offset_lo = 0;
  rule.offset_hi = 8192;  // only superblock writes match
  rule.arg = 100;         // persist 100 bytes of the new superblock
  plan.rules.push_back(rule);
  disk_->SetFaultPlan(std::move(plan));

  uint64_t stamp = 2;
  ASSERT_EQ(kernel_->sys_segment_write(init_, RootEntry(seg), &stamp, 0, 8), Status::kOk);
  EXPECT_NE(kernel_->sys_sync(init_), Status::kOk);
  EXPECT_EQ(disk_->faults_injected(FaultKind::kTorn), 1u);
  disk_->Repair();

  RebootResult r = RebootFromDisk(disk_.get(), SbTuning());
  ASSERT_EQ(r.status, Status::kOk);
  EXPECT_EQ(WorldImage(*r.kernel), committed);
}

// A misdirected superblock write: the flip lands somewhere in the heap's
// free space and the device reports success, so the SYNC CLAIMS SUCCESS but
// the commit point never advanced. This is the one legal
// acknowledged-but-lost case in the fault model (a firmware lie); recovery
// must still produce the previous commit, not garbage.
TEST_F(SuperblockFaultTest, MisdirectedSuperblockWriteLosesAckedCommit) {
  ObjectId seg = MakeSegment(Label(), 64);
  CommitStamp(seg, 1);
  WorldMap committed = WorldImage(*kernel_);

  FaultPlan plan;
  FaultRule rule;
  rule.kind = FaultKind::kMisdirect;
  rule.on_read = false;
  rule.offset_lo = 0;
  rule.offset_hi = 8192;
  rule.arg = 32 << 20;  // far into the heap: deterministically free space
  plan.rules.push_back(rule);
  disk_->SetFaultPlan(std::move(plan));

  uint64_t stamp = 2;
  ASSERT_EQ(kernel_->sys_segment_write(init_, RootEntry(seg), &stamp, 0, 8), Status::kOk);
  Status st = kernel_->sys_sync(init_);
  EXPECT_EQ(st, Status::kOk) << "a misdirected write is silent by definition";
  EXPECT_EQ(disk_->faults_injected(FaultKind::kMisdirect), 1u);

  RebootResult r = RebootFromDisk(disk_.get(), SbTuning());
  ASSERT_EQ(r.status, Status::kOk);
  EXPECT_EQ(WorldImage(*r.kernel), committed)
      << "lost flip must fall back to the last real commit";
}

// Crash parked before the flip (write error on the superblock window): the
// sync fails, both slots stay at their pre-sync generations, and recovery
// lands exactly on the last commit.
TEST_F(SuperblockFaultTest, WriteErrorOnFlipKeepsBothSlotsStale) {
  ObjectId seg = MakeSegment(Label(), 64);
  CommitStamp(seg, 1);
  WorldMap committed = WorldImage(*kernel_);
  uint64_t gen_a = SlotGeneration(0);
  uint64_t gen_b = SlotGeneration(4096);

  FaultPlan plan;
  FaultRule rule;
  rule.kind = FaultKind::kWriteError;
  rule.on_read = false;
  rule.offset_lo = 0;
  rule.offset_hi = 8192;
  plan.rules.push_back(rule);
  disk_->SetFaultPlan(std::move(plan));

  uint64_t stamp = 2;
  ASSERT_EQ(kernel_->sys_segment_write(init_, RootEntry(seg), &stamp, 0, 8), Status::kOk);
  EXPECT_EQ(kernel_->sys_sync(init_), Status::kIoError);

  // Neither slot advanced: the failed flip left no trace in either copy.
  EXPECT_EQ(SlotGeneration(0), gen_a);
  EXPECT_EQ(SlotGeneration(4096), gen_b);

  RebootResult r = RebootFromDisk(disk_.get(), SbTuning());
  ASSERT_EQ(r.status, Status::kOk);
  EXPECT_EQ(WorldImage(*r.kernel), committed);
}

// A failed flip must NOT advance the slot alternation. The writer used to
// alternate on every attempt: after a write error (target slot keeps its
// old generation) the next commit aimed at the OTHER slot — the one holding
// the newest durable superblock — and a torn write there destroyed the only
// recent commit point, time-traveling recovery past every commit (caught by
// the randomized campaign as a recovered root container matching no state
// the oracle ever recorded). The retry must target the same slot, so a
// second fault can never reach the newest durable copy.
TEST_F(SuperblockFaultTest, FailedFlipRetriesSameSlotSoSecondFaultCannotWipeNewestCommit) {
  ObjectId seg = MakeSegment(Label(), 64);
  CommitStamp(seg, 1);
  WorldMap committed = WorldImage(*kernel_);

  // Commit 2: write error inside the superblock window — the flip fails and
  // the target slot keeps its stale generation.
  {
    FaultPlan plan;
    FaultRule rule;
    rule.kind = FaultKind::kWriteError;
    rule.on_read = false;
    rule.offset_lo = 0;
    rule.offset_hi = 8192;
    plan.rules.push_back(rule);
    disk_->SetFaultPlan(std::move(plan));
  }
  uint64_t stamp = 2;
  ASSERT_EQ(kernel_->sys_segment_write(init_, RootEntry(seg), &stamp, 0, 8), Status::kOk);
  EXPECT_EQ(kernel_->sys_sync(init_), Status::kIoError);
  disk_->ClearFaults();

  // Commit 3: torn write inside the superblock window, then the device is
  // gone. With the retry aimed at the SAME stale slot, the newest durable
  // superblock is untouchable; before the fix this tore the newest slot.
  {
    FaultPlan plan;
    FaultRule rule;
    rule.kind = FaultKind::kTorn;
    rule.arg = 64;
    rule.on_read = false;
    rule.offset_lo = 0;
    rule.offset_hi = 8192;
    plan.rules.push_back(rule);
    disk_->SetFaultPlan(std::move(plan));
  }
  stamp = 3;
  ASSERT_EQ(kernel_->sys_segment_write(init_, RootEntry(seg), &stamp, 0, 8), Status::kOk);
  EXPECT_NE(kernel_->sys_sync(init_), Status::kOk);
  disk_->ClearFaults();
  disk_->Repair();

  RebootResult r = RebootFromDisk(disk_.get(), SbTuning());
  ASSERT_EQ(r.status, Status::kOk);
  EXPECT_EQ(WorldImage(*r.kernel), committed)
      << "a faulted retry reached (and destroyed) the newest durable superblock";
}

}  // namespace
}  // namespace histar
