// The latency model behind every Figure-12 I/O row: distance-dependent
// seeks, the drive's read-lookahead window, per-write-request overhead
// (block vs extent granularity), and barrier semantics.
#include <gtest/gtest.h>

#include "src/store/disk_model.h"

namespace histar {
namespace {

DiskGeometry Geo() {
  DiskGeometry g;
  g.capacity_bytes = 1 << 30;
  g.store_data = false;
  return g;
}

uint64_t CostOfWrite(DiskModel* d, uint64_t off, uint64_t len) {
  uint64_t t0 = d->sim_time_ns();
  std::vector<uint8_t> buf(len, 0);
  EXPECT_EQ(d->Write(off, buf.data(), len), Status::kOk);
  return d->sim_time_ns() - t0;
}

uint64_t CostOfRead(DiskModel* d, uint64_t off, uint64_t len) {
  uint64_t t0 = d->sim_time_ns();
  std::vector<uint8_t> buf(len, 0);
  EXPECT_EQ(d->Read(off, buf.data(), len), Status::kOk);
  return d->sim_time_ns() - t0;
}

TEST(DiskLatency, NearSeeksAreTrackSeeks) {
  DiskGeometry g = Geo();
  DiskModel d(g);
  CostOfWrite(&d, 0, 4096);  // park the head at 4096
  // Within the near radius: track seek, not full average.
  uint64_t near = CostOfWrite(&d, 4096 + (1 << 20), 4096);
  // Beyond it: the capacity-average seek.
  uint64_t far = CostOfWrite(&d, 4096 + (1 << 20) + 4 * g.near_seek_bytes, 4096);
  EXPECT_LT(near, far);
  EXPECT_GE(near, g.track_seek_ns);
  EXPECT_GE(far, g.avg_seek_ns);
}

TEST(DiskLatency, SequentialWritesPayTransferOnly) {
  DiskGeometry g = Geo();
  DiskModel d(g);
  CostOfWrite(&d, 0, 4096);
  uint64_t seq = CostOfWrite(&d, 4096, 4096);
  uint64_t transfer = 4096ull * 1'000'000'000 / g.bandwidth_bytes_per_sec;
  EXPECT_EQ(seq, transfer + g.write_request_overhead_ns);
}

TEST(DiskLatency, PerRequestOverheadSeparatesBlockFromExtentWriteback) {
  // The §7.1 sequential-write gap in one assertion: 256 block-sized requests
  // cost measurably more than one extent-sized request for the same bytes.
  DiskGeometry g = Geo();
  DiskModel block_disk(g);
  DiskModel extent_disk(g);
  constexpr uint64_t kTotal = 1 << 20;
  uint64_t blocks = 0;
  for (uint64_t off = 0; off < kTotal; off += 4096) {
    blocks += CostOfWrite(&block_disk, off, 4096);
  }
  uint64_t extent = CostOfWrite(&extent_disk, 0, kTotal);
  EXPECT_GT(blocks, extent);
  EXPECT_NEAR(static_cast<double>(blocks - extent),
              static_cast<double>((kTotal / 4096 - 1) * g.write_request_overhead_ns),
              static_cast<double>(g.write_request_overhead_ns));
}

TEST(DiskLatency, LookaheadWindowCoversNearbyForwardReads) {
  DiskGeometry g = Geo();
  DiskModel d(g);
  uint64_t first = CostOfRead(&d, 1 << 20, 4096);   // positions + fills window
  uint64_t inside = CostOfRead(&d, (1 << 20) + 8192, 4096);  // within window
  uint64_t transfer = 4096ull * 1'000'000'000 / g.bandwidth_bytes_per_sec;
  EXPECT_GT(first, transfer);
  EXPECT_EQ(inside, transfer);
  // Backward reads are never prefetched.
  uint64_t backward = CostOfRead(&d, 1 << 20, 4096);
  EXPECT_GT(backward, transfer);
}

TEST(DiskLatency, DisablingLookaheadChargesARotationPerRead) {
  DiskGeometry g = Geo();
  g.lookahead_enabled = false;
  DiskModel d(g);
  CostOfRead(&d, 0, 4096);
  // Even a strictly sequential successor read misses the sector.
  uint64_t seq = CostOfRead(&d, 4096, 4096);
  EXPECT_GE(seq, g.rotation_ns);
}

TEST(DiskLatency, WritesInvalidateThePrefetchWindow) {
  DiskGeometry g = Geo();
  DiskModel d(g);
  CostOfRead(&d, 1 << 20, 4096);
  CostOfWrite(&d, 512 << 20, 4096);  // head departs, window dropped
  uint64_t transfer = 4096ull * 1'000'000'000 / g.bandwidth_bytes_per_sec;
  uint64_t back = CostOfRead(&d, (1 << 20) + 4096, 4096);
  EXPECT_GT(back, transfer);
}

TEST(DiskLatency, BarrierCostsARotationAndLosesPosition) {
  DiskGeometry g = Geo();
  DiskModel d(g);
  CostOfWrite(&d, 0, 4096);
  uint64_t t0 = d.sim_time_ns();
  ASSERT_EQ(d.Flush(), Status::kOk);
  EXPECT_EQ(d.sim_time_ns() - t0, g.sync_barrier_ns);
  // The logically-sequential next write now repositions.
  uint64_t next = CostOfWrite(&d, 4096, 4096);
  EXPECT_GT(next, 4096ull * 1'000'000'000 / g.bandwidth_bytes_per_sec +
                      g.write_request_overhead_ns);
  // A barrier with nothing outstanding is free (the write above is flushed
  // by the first of these two).
  ASSERT_EQ(d.Flush(), Status::kOk);
  t0 = d.sim_time_ns();
  ASSERT_EQ(d.Flush(), Status::kOk);
  EXPECT_EQ(d.sim_time_ns(), t0);
}

TEST(DiskLatency, ZeroLatencyModeChargesNothing) {
  DiskGeometry g = Geo();
  g.zero_latency = true;
  DiskModel d(g);
  CostOfWrite(&d, 0, 1 << 20);
  CostOfRead(&d, 123456, 4096);
  ASSERT_EQ(d.Flush(), Status::kOk);
  EXPECT_EQ(d.sim_time_ns(), 0u);
}

TEST(DiskLatency, OutOfRangeAccessRejected) {
  DiskGeometry g = Geo();
  DiskModel d(g);
  std::vector<uint8_t> buf(4096);
  EXPECT_EQ(d.Write(g.capacity_bytes - 100, buf.data(), 4096), Status::kRange);
  EXPECT_EQ(d.Read(g.capacity_bytes, buf.data(), 1), Status::kRange);
  // Counters unaffected by rejected operations' byte totals.
  EXPECT_EQ(d.bytes_written(), 0u);
}

}  // namespace
}  // namespace histar
