// B+-tree unit and property tests (paper §4: fixed-size keys and values).
#include "src/store/bptree.h"

#include <gtest/gtest.h>

#include <map>
#include <random>

namespace histar {
namespace {

TEST(BPlusTree, InsertFindErase) {
  BPlusTree<uint64_t, uint64_t> t;
  EXPECT_TRUE(t.empty());
  t.Insert(5, 50);
  t.Insert(3, 30);
  t.Insert(9, 90);
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(t.Find(5).value(), 50u);
  EXPECT_EQ(t.Find(3).value(), 30u);
  EXPECT_FALSE(t.Find(4).has_value());
  EXPECT_TRUE(t.Erase(3));
  EXPECT_FALSE(t.Erase(3));
  EXPECT_FALSE(t.Find(3).has_value());
  EXPECT_EQ(t.size(), 2u);
}

TEST(BPlusTree, InsertOverwrites) {
  BPlusTree<uint64_t, uint64_t> t;
  t.Insert(1, 10);
  t.Insert(1, 11);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.Find(1).value(), 11u);
}

TEST(BPlusTree, FirstGeqFindsCeiling) {
  BPlusTree<uint64_t, uint64_t> t;
  for (uint64_t k : {10, 20, 30, 40}) {
    t.Insert(k, k * 10);
  }
  EXPECT_EQ(t.FirstGeq(15)->first, 20u);
  EXPECT_EQ(t.FirstGeq(20)->first, 20u);
  EXPECT_EQ(t.FirstGeq(41), std::nullopt);
  EXPECT_EQ(t.FirstGeq(0)->first, 10u);
}

TEST(BPlusTree, LastLessFindsFloor) {
  BPlusTree<uint64_t, uint64_t> t;
  for (uint64_t k : {10, 20, 30, 40}) {
    t.Insert(k, k);
  }
  EXPECT_EQ(t.LastLess(15)->first, 10u);
  EXPECT_EQ(t.LastLess(10), std::nullopt);
  EXPECT_EQ(t.LastLess(100)->first, 40u);
}

TEST(BPlusTree, SplitsGrowHeight) {
  BPlusTree<uint64_t, uint64_t, 4> t;  // tiny fanout forces deep trees
  for (uint64_t i = 0; i < 1000; ++i) {
    t.Insert(i, i);
  }
  EXPECT_GT(t.Height(), 3);
  for (uint64_t i = 0; i < 1000; ++i) {
    ASSERT_EQ(t.Find(i).value(), i);
  }
}

TEST(BPlusTree, Key128LexicographicOrder) {
  BPlusTree<Key128, uint64_t> t;
  t.Insert(Key128{1, 100}, 1);
  t.Insert(Key128{1, 200}, 2);
  t.Insert(Key128{2, 0}, 3);
  auto r = t.FirstGeq(Key128{1, 150});
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->second, 2u);
  auto r2 = t.FirstGeq(Key128{1, 201});
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ(r2->second, 3u);
}

TEST(BPlusTree, SerializeRoundTrip) {
  BPlusTree<uint64_t, Extent> t;
  for (uint64_t i = 0; i < 500; ++i) {
    t.Insert(i * 7, Extent{i * 100, i});
  }
  std::vector<uint8_t> image;
  t.Serialize(&image);
  BPlusTree<uint64_t, Extent> u;
  size_t consumed = 0;
  ASSERT_TRUE(u.Deserialize(image.data(), image.size(), &consumed));
  EXPECT_EQ(consumed, image.size());
  EXPECT_EQ(u.size(), t.size());
  for (uint64_t i = 0; i < 500; ++i) {
    ASSERT_EQ(u.Find(i * 7).value(), (Extent{i * 100, i}));
  }
}

TEST(BPlusTree, DeserializeRejectsTruncation) {
  BPlusTree<uint64_t, uint64_t> t;
  t.Insert(1, 2);
  std::vector<uint8_t> image;
  t.Serialize(&image);
  BPlusTree<uint64_t, uint64_t> u;
  EXPECT_FALSE(u.Deserialize(image.data(), image.size() - 1, nullptr));
  EXPECT_FALSE(u.Deserialize(image.data(), 3, nullptr));
}

// Property sweep: the tree must agree with std::map under random workloads.
class BPlusTreeProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BPlusTreeProperty, MatchesReferenceMap) {
  std::mt19937_64 rng(GetParam());
  BPlusTree<uint64_t, uint64_t, 8> t;
  std::map<uint64_t, uint64_t> ref;
  std::uniform_int_distribution<uint64_t> key_dist(0, 500);
  for (int i = 0; i < 5000; ++i) {
    uint64_t k = key_dist(rng);
    switch (rng() % 3) {
      case 0: {
        uint64_t v = rng();
        t.Insert(k, v);
        ref[k] = v;
        break;
      }
      case 1: {
        EXPECT_EQ(t.Erase(k), ref.erase(k) > 0);
        break;
      }
      default: {
        auto it = ref.find(k);
        auto got = t.Find(k);
        if (it == ref.end()) {
          EXPECT_FALSE(got.has_value());
        } else {
          ASSERT_TRUE(got.has_value());
          EXPECT_EQ(*got, it->second);
        }
      }
    }
  }
  EXPECT_EQ(t.size(), ref.size());
  // Ordered iteration agrees.
  std::vector<uint64_t> keys;
  t.ForEach([&](const uint64_t& k, const uint64_t&) { keys.push_back(k); });
  std::vector<uint64_t> ref_keys;
  for (const auto& [k, v] : ref) {
    ref_keys.push_back(k);
  }
  EXPECT_EQ(keys, ref_keys);
  // FirstGeq / LastLess agree at random probes.
  for (int i = 0; i < 200; ++i) {
    uint64_t probe = key_dist(rng);
    auto geq = t.FirstGeq(probe);
    auto it = ref.lower_bound(probe);
    if (it == ref.end()) {
      EXPECT_FALSE(geq.has_value());
    } else {
      ASSERT_TRUE(geq.has_value());
      EXPECT_EQ(geq->first, it->first);
    }
    auto less = t.LastLess(probe);
    auto lit = ref.lower_bound(probe);
    if (lit == ref.begin()) {
      EXPECT_FALSE(less.has_value());
    } else {
      --lit;
      ASSERT_TRUE(less.has_value());
      EXPECT_EQ(less->first, lit->first);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BPlusTreeProperty, ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace histar
