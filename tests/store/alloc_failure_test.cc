// Allocation-failure sweep (PR 7 satellite): every allocating step on the
// store path carries a StoreAlloc::Check() injection point. Failing the
// Nth check for every N a workload performs must surface as Status::kNoMem
// from the syscall — kernel live, world dirty, allocator and object map
// consistent — and the immediately retried commit must succeed and recover
// byte-identically. Run under ASan in CI, the sweep also proves failure
// unwinding leaks nothing.
#include <gtest/gtest.h>

#include "src/store/single_level_store.h"
#include "src/store/store_alloc.h"
#include "tests/kernel/kernel_test_util.h"
#include "tests/store/crash_oracle.h"

namespace histar {
namespace {

StoreTuning SweepTuning() {
  StoreTuning t;
  t.log_region_bytes = 1 << 20;
  t.log_apply_threshold = 4;  // WAL folds commit inside the sweep too
  t.max_increments = 2;       // and base rollovers
  return t;
}

class AllocFailureTest : public KernelTest {
 protected:
  void SetUp() override {
    KernelTest::SetUp();
    DiskGeometry g;
    g.capacity_bytes = 64 << 20;
    g.zero_latency = true;
    g.store_data = true;
    disk_ = std::make_unique<DiskModel>(g);
    store_ = std::make_unique<SingleLevelStore>(disk_.get(), SweepTuning());
    ASSERT_EQ(store_->Format(), Status::kOk);
    kernel_->AttachPersistTarget(store_.get());
  }

  void TearDown() override {
    StoreAlloc::Disarm();
    KernelTest::TearDown();
  }

  std::unique_ptr<DiskModel> disk_;
  std::unique_ptr<SingleLevelStore> store_;
};

// The sweep proper: measure how many allocation checks one checkpoint
// round performs, then re-run the round failing check 1, 2, ... N. Every
// injected failure must yield kNoMem (or land after the round's store work
// and hit nothing), the retry must commit, and the recovered world must
// equal the live one.
TEST_F(AllocFailureTest, EveryNthFailurePointRetriesClean) {
  std::vector<ObjectId> segs;
  for (int i = 0; i < 5; ++i) {
    segs.push_back(MakeSegment(Label(), 128));
  }
  ASSERT_EQ(kernel_->sys_sync(init_), Status::kOk);

  // Calibration round, unarmed: count the checks a round performs.
  auto run_round = [&](uint64_t salt) {
    for (size_t i = 0; i < segs.size(); ++i) {
      uint64_t stamp = salt * 1000 + i;
      EXPECT_EQ(kernel_->sys_segment_write(init_, RootEntry(segs[i]), &stamp, 0, 8),
                Status::kOk);
    }
    return kernel_->sys_sync(init_);
  };
  StoreAlloc::ResetAttempts();
  ASSERT_EQ(run_round(0), Status::kOk);
  const uint64_t checks_per_round = StoreAlloc::attempts();
  ASSERT_GT(checks_per_round, 10u) << "the store path lost its injection points";

  for (uint64_t n = 1; n <= checks_per_round; ++n) {
    for (size_t i = 0; i < segs.size(); ++i) {
      uint64_t stamp = n * 1000 + i;
      ASSERT_EQ(kernel_->sys_segment_write(init_, RootEntry(segs[i]), &stamp, 0, 8),
                Status::kOk);
    }
    StoreAlloc::FailNth(n);
    Status st = kernel_->sys_sync(init_);
    StoreAlloc::Disarm();
    if (st != Status::kOk) {
      EXPECT_EQ(st, Status::kNoMem) << "allocation failure surfaced as " << StatusName(st)
                                    << " at injection point " << n;
      // The kernel survived: the world is still dirty and retryable.
      EXPECT_FALSE(kernel_->DirtyObjects().empty());
      EXPECT_EQ(kernel_->sys_sync(init_), Status::kOk)
          << "retry after injected failure " << n << " did not recover";
    }
    // No corruption latent in the commit: a reboot reproduces the live
    // world exactly.
    RebootResult r = RebootFromDisk(disk_.get(), SweepTuning());
    ASSERT_EQ(r.status, Status::kOk) << "recovery broken after injection point " << n;
    ASSERT_EQ(WorldImage(*r.kernel), WorldImage(*kernel_))
        << "world diverged after injection point " << n;
  }
}

// The WAL path swept the same way: per-object syncs with a low apply
// threshold, so injections land in log appends, log folds, and the
// increments they commit.
TEST_F(AllocFailureTest, WalPathSweepRetriesClean) {
  ObjectId seg = MakeSegment(Label(), 256);
  ASSERT_EQ(kernel_->sys_sync(init_), Status::kOk);

  StoreAlloc::ResetAttempts();
  uint64_t stamp = 7;
  ASSERT_EQ(kernel_->sys_segment_write(init_, RootEntry(seg), &stamp, 0, 8), Status::kOk);
  ASSERT_EQ(kernel_->sys_sync_object(init_, RootEntry(seg)), Status::kOk);
  const uint64_t checks = StoreAlloc::attempts() + 1;

  for (uint64_t n = 1; n <= checks; ++n) {
    stamp = 100 + n;
    ASSERT_EQ(kernel_->sys_segment_write(init_, RootEntry(seg), &stamp, 0, 8), Status::kOk);
    StoreAlloc::FailNth(n);
    Status st = kernel_->sys_sync_object(init_, RootEntry(seg));
    StoreAlloc::Disarm();
    if (st != Status::kOk) {
      EXPECT_EQ(st, Status::kNoMem);
      EXPECT_EQ(kernel_->sys_sync_object(init_, RootEntry(seg)), Status::kOk);
    }
    RebootResult r = RebootFromDisk(disk_.get(), SweepTuning());
    ASSERT_EQ(r.status, Status::kOk);
    ASSERT_EQ(WorldImage(*r.kernel), WorldImage(*kernel_));
  }
}

// Recovery itself allocates (tree rebuilds, label re-interning, blob
// loads): an injected failure there must return kNoMem from Recover — a
// failed boot, not a crashed one — and a clean retry must succeed.
TEST_F(AllocFailureTest, RecoverPathFailureReturnsNoMemAndRetries) {
  std::vector<ObjectId> segs;
  for (int i = 0; i < 4; ++i) {
    segs.push_back(MakeSegment(Label(), 128));
    uint64_t stamp = 40 + static_cast<uint64_t>(i);
    ASSERT_EQ(kernel_->sys_segment_write(init_, RootEntry(segs.back()), &stamp, 0, 8),
              Status::kOk);
  }
  ASSERT_EQ(kernel_->sys_sync(init_), Status::kOk);
  WorldMap committed = WorldImage(*kernel_);

  // Calibrate a clean recovery's check count.
  StoreAlloc::ResetAttempts();
  {
    RebootResult r = RebootFromDisk(disk_.get(), SweepTuning());
    ASSERT_EQ(r.status, Status::kOk);
  }
  const uint64_t checks = StoreAlloc::attempts();
  ASSERT_GT(checks, 0u);

  for (uint64_t n = 1; n <= checks; ++n) {
    StoreAlloc::FailNth(n);
    RebootResult faulty = RebootFromDisk(disk_.get(), SweepTuning());
    StoreAlloc::Disarm();
    EXPECT_TRUE(faulty.status == Status::kNoMem || faulty.status == Status::kOk)
        << "recovery under allocation failure " << n << " returned "
        << StatusName(faulty.status);
    RebootResult clean = RebootFromDisk(disk_.get(), SweepTuning());
    ASSERT_EQ(clean.status, Status::kOk) << "clean retry failed after injection " << n;
    ASSERT_EQ(WorldImage(*clean.kernel), committed);
  }
}

}  // namespace
}  // namespace histar
