// Crash-recovery harness for the incremental-checkpoint store (ISSUE 4):
// checkpoint, kill mid-increment at injected disk-model crash points,
// restore, and assert full object/label equivalence against the pre-crash
// kernel — the recovered world must be byte-identical (canonical inline
// serialization) to the state at the last successful commit.
//
// Also the crash-point test for the old stale-checksum window: a crash
// between sys_sync_pages and the next checkpoint must never make a valid
// blob look corrupt at recovery (blob checksums cover the metadata prefix
// only; in-place payload flushes write real bytes past it).
#include <gtest/gtest.h>

#include <map>

#include "src/store/single_level_store.h"
#include "tests/kernel/kernel_test_util.h"
#include "tests/store/crash_oracle.h"

namespace histar {
namespace {

StoreTuning HarnessTuning() {
  StoreTuning t;
  t.log_region_bytes = 1 << 20;
  t.log_apply_threshold = 25;
  t.max_increments = 3;  // small, so crash sweeps cross base boundaries too
  return t;
}

class RecoveryCrashTest : public KernelTest, public ::testing::WithParamInterface<int> {
 protected:
  void SetUp() override {
    KernelTest::SetUp();
    DiskGeometry g;
    g.capacity_bytes = 64 << 20;
    g.zero_latency = true;
    g.store_data = true;
    disk_ = std::make_unique<DiskModel>(g);
    store_ = std::make_unique<SingleLevelStore>(disk_.get(), HarnessTuning());
    ASSERT_EQ(store_->Format(), Status::kOk);
    kernel_->AttachPersistTarget(store_.get());
  }

  std::unique_ptr<Kernel> Reboot() {
    RebootResult r = RebootFromDisk(disk_.get(), HarnessTuning());
    EXPECT_EQ(r.status, Status::kOk);
    recovered_store_ = std::move(r.store);
    return std::move(r.kernel);
  }

  std::unique_ptr<DiskModel> disk_;
  std::unique_ptr<SingleLevelStore> store_;
  std::unique_ptr<SingleLevelStore> recovered_store_;
};

// The harness proper: a workload of labeled creates, writes, and deletes
// across several committed epochs; the kill lands partway into one more
// increment. Recovery must reproduce either the last committed world (sync
// failed) or the new one (sync reported success before the crash fired).
TEST_P(RecoveryCrashTest, KillMidIncrementRecoversCommittedWorld) {
  CategoryId c = kernel_->sys_cat_create(init_).value();
  Label taint(Level::k1, {{c, Level::k2}});
  std::vector<ObjectId> segs;
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 5; ++i) {
      ObjectId s = MakeSegment(i % 2 == 0 ? taint : Label(), 128);
      uint64_t stamp = static_cast<uint64_t>(round) << 32 | static_cast<uint64_t>(i);
      ASSERT_EQ(kernel_->sys_segment_write(init_, RootEntry(s), &stamp, 0, 8), Status::kOk);
      segs.push_back(s);
    }
    if (round == 1) {
      ASSERT_EQ(kernel_->sys_container_unref(init_, RootEntry(segs[1])), Status::kOk);
    }
    ASSERT_EQ(kernel_->sys_sync(init_), Status::kOk);
  }
  WorldMap committed = WorldImage(*kernel_);

  // One more dirty batch, with the crash parked at GetParam() percent of a
  // conservative estimate of the increment's write volume (blobs + section
  // + superblock).
  uint64_t stamp = 0xdeadbeef;
  for (int i = 0; i < 4; ++i) {
    ASSERT_EQ(kernel_->sys_segment_write(init_, RootEntry(segs[segs.size() - 1 - i]), &stamp,
                                         0, 8),
              Status::kOk);
  }
  uint64_t estimate = 4 * 400 + 1024;
  disk_->CrashAfterBytes(estimate * static_cast<uint64_t>(GetParam()) / 100 + 1);
  Status st = kernel_->sys_sync(init_);
  bool committed_new = st == Status::kOk;
  WorldMap post = WorldImage(*kernel_);
  disk_->Repair();

  std::unique_ptr<Kernel> k2 = Reboot();
  WorldMap recovered = WorldImage(*k2);
  if (committed_new) {
    EXPECT_EQ(recovered, post) << "sync reported success but its state did not recover";
  } else {
    // Atomicity, not which side: a crash landing exactly on the commit
    // boundary can persist the flip while the syscall reports failure.
    EXPECT_TRUE(WorldAmong(recovered, {&committed, &post}))
        << "crash at " << GetParam() << "% recovered a world that was never committed";
  }
  // Either way the label table round-tripped and the recovered store keeps
  // checkpointing (base or increment per its chain position).
  CurrentThread bind(init_);
  ASSERT_EQ(k2->sys_segment_write(init_, ContainerEntry{k2->root_container(), segs[4]}, &stamp,
                                  0, 8),
            Status::kOk);
  EXPECT_EQ(k2->sys_sync(init_), Status::kOk);
}

// The WAL path under the same sweep: per-object syncs interleaved with
// checkpoints, killed mid-append; replay must stop at the torn record and
// the world must equal the last durable prefix.
TEST_P(RecoveryCrashTest, KillMidWalAppendKeepsPrefix) {
  ObjectId seg = MakeSegment(Label(), 512);
  std::vector<uint8_t> ones(512, 0x11);
  ASSERT_EQ(kernel_->sys_segment_write(init_, RootEntry(seg), ones.data(), 0, 512),
            Status::kOk);
  ASSERT_EQ(kernel_->sys_sync(init_), Status::kOk);
  WorldMap committed = WorldImage(*kernel_);

  std::vector<uint8_t> twos(512, 0x22);
  ASSERT_EQ(kernel_->sys_segment_write(init_, RootEntry(seg), twos.data(), 0, 512),
            Status::kOk);
  disk_->CrashAfterBytes((512 + 100) * static_cast<uint64_t>(GetParam()) / 100 + 1);
  Status st = kernel_->sys_sync_object(init_, RootEntry(seg));
  bool committed_new = st == Status::kOk;
  WorldMap post = WorldImage(*kernel_);
  disk_->Repair();

  std::unique_ptr<Kernel> k2 = Reboot();
  WorldMap recovered = WorldImage(*k2);
  if (committed_new) {
    EXPECT_EQ(recovered, post);
  } else {
    EXPECT_TRUE(WorldAmong(recovered, {&committed, &post}));
  }
}

// The stale-checksum window (ISSUE 4 satellite): sys_sync_pages rewrites
// payload in the object's home extent. A crash at ANY byte of that write —
// or simply a reboot before the next checkpoint — must leave a blob that
// validates at recovery, with every payload byte either old or new
// (writeback semantics), never a recovery failure.
TEST_P(RecoveryCrashTest, SyncPagesCrashWindowNeverLooksCorrupt) {
  constexpr uint64_t kLen = 4096;
  ObjectId seg = MakeSegment(Label(), kLen);
  std::vector<uint8_t> ones(kLen, 1);
  ASSERT_EQ(kernel_->sys_segment_write(init_, RootEntry(seg), ones.data(), 0, kLen),
            Status::kOk);
  ASSERT_EQ(kernel_->sys_sync(init_), Status::kOk);

  std::vector<uint8_t> twos(kLen, 2);
  ASSERT_EQ(kernel_->sys_segment_write(init_, RootEntry(seg), twos.data(), 0, kLen),
            Status::kOk);
  disk_->CrashAfterBytes(kLen * static_cast<uint64_t>(GetParam()) / 100 + 1);
  Status st = kernel_->sys_sync_pages(init_, RootEntry(seg), 0, kLen);
  disk_->Repair();

  // Recovery must SUCCEED — with the old full-blob checksum, any crash in
  // this window made the in-place write look like corruption.
  std::unique_ptr<Kernel> k2 = Reboot();
  CurrentThread bind(init_);
  std::vector<uint8_t> out(kLen, 0xee);
  ASSERT_EQ(k2->sys_segment_read(init_, ContainerEntry{k2->root_container(), seg}, out.data(),
                                 0, kLen),
            Status::kOk);
  // sys_sync_pages has writeback semantics: a per-byte mixture of old and
  // new is legal after a crash, but every byte must be one or the other.
  bool all_new = true;
  for (uint8_t b : out) {
    ASSERT_TRUE(b == 1 || b == 2) << "payload byte neither old nor new";
    all_new = all_new && b == 2;
  }
  if (st == Status::kOk) {
    // The flush claimed success before any crash: the new payload is fully
    // durable.
    EXPECT_TRUE(all_new);
  }
}

// Reboot (no crash) in the window between sync_pages and the next
// checkpoint: the flushed pages are durable and the blob validates — the
// exact scenario the single_level_store.h:64 comment used to disclaim.
TEST_F(RecoveryCrashTest, SyncPagesThenRebootKeepsFlushedPages) {
  constexpr uint64_t kLen = 2048;
  ObjectId seg = MakeSegment(Label(), kLen);
  std::vector<uint8_t> ones(kLen, 0xaa);
  ASSERT_EQ(kernel_->sys_segment_write(init_, RootEntry(seg), ones.data(), 0, kLen),
            Status::kOk);
  ASSERT_EQ(kernel_->sys_sync(init_), Status::kOk);

  std::vector<uint8_t> twos(kLen, 0xbb);
  ASSERT_EQ(kernel_->sys_segment_write(init_, RootEntry(seg), twos.data(), 0, kLen),
            Status::kOk);
  ASSERT_EQ(kernel_->sys_sync_pages(init_, RootEntry(seg), 0, kLen), Status::kOk);
  // No further checkpoint: reboot straight off the in-place write.

  std::unique_ptr<Kernel> k2 = Reboot();
  CurrentThread bind(init_);
  std::vector<uint8_t> out(kLen, 0);
  ASSERT_EQ(k2->sys_segment_read(init_, ContainerEntry{k2->root_container(), seg}, out.data(),
                                 0, kLen),
            Status::kOk);
  EXPECT_EQ(out, twos);
}

// Crash during a forced BASE rewrite (chain rollover): the old chain must
// stay intact until the superblock flip, so recovery sees the pre-base
// world.
TEST_P(RecoveryCrashTest, KillDuringBaseRolloverKeepsOldChain) {
  ObjectId seg = MakeSegment(Label(), 256);
  uint64_t stamp = 1;
  ASSERT_EQ(kernel_->sys_segment_write(init_, RootEntry(seg), &stamp, 0, 8), Status::kOk);
  ASSERT_EQ(kernel_->sys_sync(init_), Status::kOk);  // base
  // Fill the chain to one short of rollover (max_increments = 3).
  for (int i = 0; i < 3; ++i) {
    stamp = static_cast<uint64_t>(i) + 2;
    ASSERT_EQ(kernel_->sys_segment_write(init_, RootEntry(seg), &stamp, 0, 8), Status::kOk);
    ASSERT_EQ(kernel_->sys_sync(init_), Status::kOk);
  }
  ASSERT_EQ(store_->chain_length(), 4u);
  WorldMap committed = WorldImage(*kernel_);

  stamp = 99;
  ASSERT_EQ(kernel_->sys_segment_write(init_, RootEntry(seg), &stamp, 0, 8), Status::kOk);
  // The next sync rewrites a full base section; crash partway into it.
  disk_->CrashAfterBytes(600 * static_cast<uint64_t>(GetParam()) / 100 + 1);
  Status st = kernel_->sys_sync(init_);
  WorldMap post = WorldImage(*kernel_);
  disk_->Repair();

  std::unique_ptr<Kernel> k2 = Reboot();
  WorldMap recovered = WorldImage(*k2);
  if (st == Status::kOk) {
    EXPECT_EQ(recovered, post);
  } else {
    EXPECT_TRUE(WorldAmong(recovered, {&committed, &post}));
  }
}

// A WAL-only object (fsynced, never checkpointed) restored at boot has a
// clean dirty mark — the first post-recovery checkpoint must fold its log
// image into the heap before declaring the log subsumed, or the object is
// orphaned: in neither the map nor the replayable log.
TEST_F(RecoveryCrashTest, WalOnlyObjectSurvivesPostRecoveryCheckpoint) {
  ASSERT_EQ(kernel_->sys_sync(init_), Status::kOk);  // base, without X
  ObjectId x = MakeSegment(Label(), 64);
  ASSERT_EQ(kernel_->sys_segment_write(init_, RootEntry(x), "only-in-wal", 0, 12),
            Status::kOk);
  ASSERT_EQ(kernel_->sys_sync_object(init_, RootEntry(x)), Status::kOk);
  // Like POSIX fsync, the directory entry needs its own sync: persist the
  // root container's link to X too.
  ASSERT_EQ(kernel_->sys_sync_object(init_, RootEntry(kernel_->root_container())),
            Status::kOk);

  std::unique_ptr<Kernel> k2 = Reboot();
  ASSERT_TRUE(k2->ObjectExists(x));
  // The recovered kernel has no dirty mark for X; this checkpoint used to
  // advance log_applied_seq_ past X's record without writing X anywhere.
  ASSERT_EQ(k2->sys_sync(init_), Status::kOk);

  auto store3 = std::make_unique<SingleLevelStore>(disk_.get(), HarnessTuning());
  auto k3 = std::make_unique<Kernel>();
  ASSERT_EQ(store3->Recover(k3.get()), Status::kOk);
  ASSERT_TRUE(k3->ObjectExists(x)) << "WAL-only object orphaned by the checkpoint";
  CurrentThread bind(init_);
  char buf[16] = {};
  ASSERT_EQ(k3->sys_segment_read(init_, ContainerEntry{k3->root_container(), x}, buf, 0, 12),
            Status::kOk);
  EXPECT_STREQ(buf, "only-in-wal");
}

// A failed checkpoint must leave acknowledged WAL records in place: if the
// in-memory log head/tail reset before the commit is durable, the next
// fsync overwrites live records that the on-disk superblock still needs
// for replay.
TEST_F(RecoveryCrashTest, FailedCheckpointKeepsAcknowledgedWalRecords) {
  ObjectId a = MakeSegment(Label(), 64);
  ObjectId b = MakeSegment(Label(), 64);
  ASSERT_EQ(kernel_->sys_segment_write(init_, RootEntry(a), "old-a", 0, 6), Status::kOk);
  ASSERT_EQ(kernel_->sys_sync(init_), Status::kOk);  // base: A = "old-a"

  ASSERT_EQ(kernel_->sys_segment_write(init_, RootEntry(a), "new-a", 0, 6), Status::kOk);
  ASSERT_EQ(kernel_->sys_sync_object(init_, RootEntry(a)), Status::kOk);  // acked

  disk_->CrashAfterBytes(1);  // the next checkpoint fails on its first write
  EXPECT_NE(kernel_->sys_sync(init_), Status::kOk);
  disk_->Repair();

  // Another fsync after the failed commit: must append AFTER A's record,
  // not restart the log region at offset zero over it.
  ASSERT_EQ(kernel_->sys_segment_write(init_, RootEntry(b), "new-b", 0, 6), Status::kOk);
  ASSERT_EQ(kernel_->sys_sync_object(init_, RootEntry(b)), Status::kOk);

  std::unique_ptr<Kernel> k2 = Reboot();
  CurrentThread bind(init_);
  char buf[8] = {};
  ASSERT_EQ(k2->sys_segment_read(init_, ContainerEntry{k2->root_container(), a}, buf, 0, 6),
            Status::kOk);
  EXPECT_STREQ(buf, "new-a") << "acknowledged fsync lost to a failed checkpoint";
  ASSERT_EQ(k2->sys_segment_read(init_, ContainerEntry{k2->root_container(), b}, buf, 0, 6),
            Status::kOk);
  EXPECT_STREQ(buf, "new-b");
}

INSTANTIATE_TEST_SUITE_P(CrashPoints, RecoveryCrashTest,
                         ::testing::Values(1, 10, 25, 40, 55, 70, 85, 99),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "pct" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace histar
