// Randomized fault-injection campaign (PR 7 tentpole).
//
// Drives seeded multi-crash schedules against the single-level store across
// base checkpoints, increments, WAL appends, and base rollovers, on four
// workloads (dirty-heavy, label-churn, ring-driven, and betree-heavy — the
// Bε-tree engine under a toy geometry so faults race message flushes, node
// splits, and torn interior-node writes). Each round mutates the
// live kernel, arms one fault from the DiskModel FaultPlan / StoreAlloc
// repertoire (torn write, misdirected write, read error, write error, bit
// flip, full-device crash, allocation failure — or none), syncs, then boots
// a fresh kernel from the disk and checks it against the CrashOracle: the
// recovered world must be a state the live system actually passed through.
// The kernel itself never crashes — it is the shadow (satellite: a failed
// sync leaves the kernel live and the world dirty).
//
// Silent-corruption classes (misdirected writes, durable bit flips on the
// write path) can defeat checksums by construction — segment payload past
// meta_len is deliberately unchecksummed (sys_sync_pages writeback
// semantics). Once one fires, the schedule drops to structural checking:
// recovery must either report corruption or produce a well-formed world
// (root intact, every object serializable) — it must never abort or hang.
//
// Reproducibility: every schedule is driven by one uint64 seed printed on
// failure as "FAULT_SEED=<seed> (workload <name>)". Environment knobs:
//   FAULT_SCHEDULES   schedules per workload (default 70 → 280 total)
//   FAULT_SEED        replay exactly one seed on every workload
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "src/core/trace.h"
#include "src/kernel/thread_runner.h"
#include "src/store/single_level_store.h"
#include "src/store/store_alloc.h"
#include "tests/store/crash_oracle.h"

namespace histar {
namespace {

enum class Workload { kDirtyHeavy, kLabelChurn, kRingDriven, kBetreeHeavy };

StoreTuning CampaignTuning(Workload w) {
  StoreTuning t;
  t.log_region_bytes = 1 << 20;
  t.log_apply_threshold = 8;   // low, so WAL folds commit mid-schedule
  t.max_increments = 3;        // low, so schedules cross base rollovers
  if (w == Workload::kBetreeHeavy) {
    // The Bε-tree engine with a toy geometry: a ~1 kB root buffer makes
    // nearly every sync a base flush (message injection, interior-buffer
    // overflow pushes, leaf splits, the arena node write), so the armed
    // faults race real tree writes — torn interior nodes included — not
    // just section/superblock traffic.
    t.engine = EngineKind::kBetree;
    t.betree.node_bytes = 1024;
    t.betree.buffer_bytes = 512;
    t.betree.root_buffer_bytes = 1024;
    t.betree.fanout = 4;
  }
  return t;
}

const char* WorkloadName(Workload w) {
  switch (w) {
    case Workload::kDirtyHeavy: return "dirty-heavy";
    case Workload::kLabelChurn: return "label-churn";
    case Workload::kRingDriven: return "ring-driven";
    case Workload::kBetreeHeavy: return "betree-heavy";
  }
  return "?";
}

// Campaign-wide fault-class tally (acceptance: >= 4 classes must fire).
struct CampaignStats {
  uint64_t injected[kNumFaultKinds] = {};
  uint64_t alloc_failures = 0;
  uint64_t schedules = 0;
  uint64_t rounds = 0;
  uint64_t relaxed_schedules = 0;

  int ClassesFired() const {
    // torn, misdirect, read-error+bitflip (detection class), write-error,
    // device-crash, alloc-failure.
    int n = 0;
    n += injected[static_cast<int>(FaultKind::kTorn)] > 0;
    n += injected[static_cast<int>(FaultKind::kMisdirect)] > 0;
    n += (injected[static_cast<int>(FaultKind::kReadError)] +
          injected[static_cast<int>(FaultKind::kBitFlip)]) > 0;
    n += injected[static_cast<int>(FaultKind::kWriteError)] > 0;
    n += injected[static_cast<int>(FaultKind::kCrashDevice)] > 0;
    n += alloc_failures > 0;
    return n;
  }
};

// One schedule's state: a live kernel bound to a store on a faultable disk.
// Not a gtest fixture — the campaign builds hundreds of these inside one
// test body.
class Schedule {
 public:
  Schedule(Workload w, uint64_t seed, CampaignStats* stats)
      : workload_(w), seed_(seed), rng_(seed), stats_(stats), tuning_(CampaignTuning(w)) {
    DiskGeometry g;
    g.capacity_bytes = 64 << 20;
    g.zero_latency = true;
    g.store_data = true;
    disk_ = std::make_unique<DiskModel>(g);
    store_ = std::make_unique<SingleLevelStore>(disk_.get(), tuning_);
    EXPECT_EQ(store_->Format(), Status::kOk);
    kernel_ = std::make_unique<Kernel>();
    init_ = kernel_->BootstrapThread(Label(Level::k1), Label(Level::k2), "init");
    CurrentThread::Set(init_);
    kernel_->AttachPersistTarget(store_.get());
  }

  ~Schedule() {
    for (size_t k = 0; k < kNumFaultKinds; ++k) {
      stats_->injected[k] += disk_->faults_injected(static_cast<FaultKind>(k));
    }
    CurrentThread::Set(kInvalidObject);
  }

  // Returns false (with a gtest failure recorded) if any oracle check
  // failed; the caller prints the replay line.
  bool Run() {
    // Silent-corruption classes end strict checking for the rest of the
    // schedule, so only a quarter of schedules may arm them — the rest
    // keep the byte-exact oracle live to the end.
    allow_silent_ = rng_() % 4 == 0;
    SetupWorkload();
    if (kernel_->sys_sync(init_) != Status::kOk) {
      ADD_FAILURE() << "baseline sync failed before any fault was armed";
      return false;
    }
    oracle_ = std::make_unique<CrashOracle>(WorldImage(*kernel_));

    int rounds = 4 + static_cast<int>(rng_() % 4);
    for (int r = 0; r < rounds; ++r) {
      ++stats_->rounds;
      if (!RunRound()) {
        return false;
      }
    }
    return Finish();
  }

 private:
  // --- workload bodies ------------------------------------------------

  ObjectId NewSegment(const Label& l, uint64_t len) {
    CreateSpec spec;
    spec.container = kernel_->root_container();
    spec.label = l;
    spec.descrip = "fc-seg";
    spec.quota = kObjectOverheadBytes + len + kPageSize;
    Result<ObjectId> s = kernel_->sys_segment_create(init_, spec, len);
    if (!s.ok()) {
      return kInvalidObject;
    }
    segs_.push_back(s.value());
    return s.value();
  }

  ContainerEntry RootEntry(ObjectId o) const {
    return ContainerEntry{kernel_->root_container(), o};
  }

  void SetupWorkload() {
    if (workload_ == Workload::kRingDriven) {
      CreateSpec spec;
      spec.container = kernel_->root_container();
      spec.descrip = "fc-ring";
      spec.quota = 16 * kPageSize;
      Result<ObjectId> r = kernel_->sys_ring_create(init_, spec, 0);
      ASSERT_TRUE(r.ok()) << StatusName(r.status());
      ring_ = r.value();
    }
    if (workload_ == Workload::kLabelChurn) {
      Result<CategoryId> c = kernel_->sys_cat_create(init_);
      ASSERT_TRUE(c.ok());
      cat_ = c.value();
    }
    for (int i = 0; i < 4; ++i) {
      NewSegment(Label(), 128 + (rng_() % 4) * 64);
    }
  }

  void Mutate() {
    switch (workload_) {
      case Workload::kDirtyHeavy: {
        // Touch most of the live set plus a creation or two: increments
        // carry many blobs, rollover arrives fast.
        int creates = static_cast<int>(rng_() % 3);
        for (int i = 0; i < creates; ++i) {
          NewSegment(Label(), 128);
        }
        for (ObjectId s : segs_) {
          if (rng_() % 4 == 0) continue;
          uint64_t stamp = rng_();
          (void)kernel_->sys_segment_write(init_, RootEntry(s), &stamp, 0, 8);
        }
        break;
      }
      case Workload::kLabelChurn: {
        // Labeled creates and deletes: the label table grows a delta most
        // epochs and the dead sweep runs.
        Label taint(Level::k1, {{cat_, Level::k2}});
        for (int i = 0; i < 2; ++i) {
          NewSegment(rng_() % 2 == 0 ? taint : Label(), 96);
        }
        if (segs_.size() > 5 && rng_() % 2 == 0) {
          size_t victim = rng_() % segs_.size();
          if (kernel_->sys_container_unref(init_, RootEntry(segs_[victim])) == Status::kOk) {
            segs_.erase(segs_.begin() + static_cast<long>(victim));
          }
        }
        for (ObjectId s : segs_) {
          if (rng_() % 3 != 0) continue;
          uint64_t stamp = rng_();
          (void)kernel_->sys_segment_write(init_, RootEntry(s), &stamp, 0, 8);
        }
        break;
      }
      case Workload::kBetreeHeavy: {
        // Touch every segment with multi-word writes so the staged message
        // batch overflows the toy root buffer almost every sync, and churn
        // the live set so tombstone messages and splits ride the flushes.
        int creates = static_cast<int>(rng_() % 3);
        for (int i = 0; i < creates; ++i) {
          NewSegment(Label(), 128 + (rng_() % 4) * 64);
        }
        if (segs_.size() > 6 && rng_() % 3 == 0) {
          size_t victim = rng_() % segs_.size();
          if (kernel_->sys_container_unref(init_, RootEntry(segs_[victim])) == Status::kOk) {
            segs_.erase(segs_.begin() + static_cast<long>(victim));
          }
        }
        for (ObjectId s : segs_) {
          if (rng_() % 5 == 0) continue;
          uint64_t stamp[4] = {rng_(), rng_(), rng_(), rng_()};
          (void)kernel_->sys_segment_write(init_, RootEntry(s), stamp, (rng_() % 3) * 32,
                                           sizeof(stamp));
        }
        break;
      }
      case Workload::kRingDriven: {
        // Dirty objects through the async ring: submit a linked chain of
        // segment writes, wait, reap. The ring object itself churns too.
        std::vector<uint64_t> stamps(4);
        std::vector<RingOp> ops;
        for (int i = 0; i < 3 && !segs_.empty(); ++i) {
          ObjectId s = segs_[rng_() % segs_.size()];
          stamps[static_cast<size_t>(i)] = rng_();
          ops.push_back(RingOp{SyscallReq{
              SegmentWriteReq{RootEntry(s), &stamps[static_cast<size_t>(i)], 0, 8}}});
        }
        ContainerEntry re = RootEntry(ring_);
        Result<uint64_t> t = kernel_->sys_ring_submit(init_, re, std::move(ops));
        if (t.ok()) {
          (void)kernel_->sys_ring_wait(init_, re, t.value(), 5000);
          (void)kernel_->sys_ring_reap(init_, re, 0);
        }
        break;
      }
    }
  }

  // --- fault arming ---------------------------------------------------

  // Picks one fault for this round, setting armed_silent_ (the rule is a
  // silent-corruption class — schedule drops to structural checks once it
  // actually fires) and armed_read_ (the rule targets recovery reads and
  // stays armed across the reboot check).
  void ArmFault() {
    armed_silent_ = false;
    armed_read_ = false;
    FaultPlan plan;
    FaultRule rule;
    rule.on_read = false;
    // Most write traffic lands in the heap; point a third of the rules at
    // the superblock slots so commit points get corrupted too.
    if (rng_() % 3 == 0) {
      rule.offset_lo = 0;
      rule.offset_hi = 8192;
    }
    // Let the fault land a few writes into the sync rather than always on
    // the first matching one.
    if (rng_() % 2 == 0) {
      rule.op_index = rng_() % 6;
      rule.offset_lo = 0;  // op-index rules match anywhere
      rule.offset_hi = ~uint64_t{0};
    }
    switch (rng_() % 8) {
      case 0:  // no fault this round: clean commits interleave
        return;
      case 1:
        rule.kind = FaultKind::kTorn;
        rule.arg = rng_() % 4096;
        break;
      case 2:
        if (!allow_silent_) {
          rule.kind = FaultKind::kTorn;
          rule.arg = rng_() % 4096;
          break;
        }
        rule.kind = FaultKind::kMisdirect;
        rule.arg = 4096 + rng_() % (1 << 20);
        armed_silent_ = true;
        break;
      case 3:
        rule.kind = FaultKind::kWriteError;
        break;
      case 4:
        if (!allow_silent_) {
          rule.kind = FaultKind::kWriteError;
          break;
        }
        rule.kind = FaultKind::kBitFlip;
        rule.arg = rng_();
        armed_silent_ = true;  // durable flip; may hit unchecksummed payload
        break;
      case 5:
        rule.kind = FaultKind::kCrashDevice;
        break;
      case 6:
        StoreAlloc::FailNth(1 + rng_() % 10);
        return;
      case 7:
        // Recovery-time read fault, armed for the reboot check below (the
        // sync path only writes, so the rule survives it untouched).
        rule.on_read = true;
        rule.kind = rng_() % 2 == 0 ? FaultKind::kReadError : FaultKind::kBitFlip;
        rule.arg = rng_();
        rule.op_index = rng_() % 16;
        armed_read_ = true;
        break;
    }
    plan.rules.push_back(rule);
    disk_->SetFaultPlan(std::move(plan));
  }

  // --- the round ------------------------------------------------------

  bool RunRound() {
    Mutate();
    uint64_t misdirect_before = disk_->faults_injected(FaultKind::kMisdirect);
    uint64_t flip_before = disk_->faults_injected(FaultKind::kBitFlip);
    ArmFault();
    bool alloc_armed = StoreAlloc::armed();

    // Sync the live kernel — group sync usually, per-object sync often.
    Status st;
    bool dirty_before = !kernel_->DirtyObjects().empty();
    if (!segs_.empty() && rng_() % 3 == 0) {
      ObjectId target = segs_[rng_() % segs_.size()];
      st = kernel_->sys_sync_object(init_, RootEntry(target));
      oracle_->OnObjectSync(st, target, WorldImage(*kernel_));
    } else {
      st = kernel_->sys_sync(init_);
      oracle_->OnGroupSync(st, WorldImage(*kernel_));
    }
    if (alloc_armed && !StoreAlloc::armed() && st != Status::kOk) {
      ++stats_->alloc_failures;
    }
    if (armed_silent_ &&
        (disk_->faults_injected(FaultKind::kMisdirect) > misdirect_before ||
         disk_->faults_injected(FaultKind::kBitFlip) > flip_before)) {
      if (!relaxed_) {
        relaxed_ = true;
        ++stats_->relaxed_schedules;
      }
    }

    // The kernel must survive any failed sync: still live, world dirty.
    // (A round's RNG can skip every mutation — then there are no marks to
    // retire and a faulted sync legitimately fails with a clean world.)
    if (st != Status::kOk && !relaxed_ && dirty_before) {
      EXPECT_FALSE(kernel_->DirtyObjects().empty())
          << "failed sync (" << StatusName(st) << ") retired dirty marks";
    }

    if (disk_->crashed()) {
      disk_->Repair();
    }
    // A recovery-read fault stays armed across the reboot check on
    // purpose; anything else still pending (e.g. an op-index rule the sync
    // never reached) is cleared so the check is clean.
    bool read_fault_armed = armed_read_ && disk_->pending_faults() > 0;
    if (!read_fault_armed) {
      disk_->ClearFaults();
    }
    StoreAlloc::Disarm();

    return RebootCheck(read_fault_armed);
  }

  // Boots a fresh kernel off the disk and holds it against the oracle.
  // With a read fault armed the first boot may fail or time-travel; after
  // clearing, a clean boot must pass strictly.
  bool RebootCheck(bool read_fault_armed) {
    if (read_fault_armed) {
      RebootResult faulty = RebootFromDisk(disk_.get(), tuning_);
      // Any status is legal — kIoError/kCorrupt (detected), or kOk with a
      // transient flip that recovery's checksums didn't cover. Never an
      // abort; structural sanity when it claims success.
      if (faulty.status == Status::kOk && !StructurallySane(*faulty.kernel)) {
        ADD_FAILURE() << "read-faulted recovery produced a malformed world";
        return false;
      }
      disk_->ClearFaults();
    }
    RebootResult r = RebootFromDisk(disk_.get(), tuning_);
    if (relaxed_) {
      // A silent fault fired earlier: corruption may be detected (any
      // error) or latent (well-formed world with time-shifted bytes).
      if (r.status == Status::kOk && !StructurallySane(*r.kernel)) {
        ADD_FAILURE() << "recovery after a silent fault produced a malformed world";
        return false;
      }
      return true;
    }
    if (r.status != Status::kOk) {
      ADD_FAILURE() << "clean recovery failed: " << StatusName(r.status);
      return false;
    }
    ::testing::AssertionResult ok = oracle_->CheckRecovered(WorldImage(*r.kernel));
    if (!ok) {
      ADD_FAILURE() << ok.message();
      return false;
    }
    return true;
  }

  bool StructurallySane(const Kernel& k) {
    // root may be unset: a read fault on the newer superblock slot can
    // legitimately time-travel the boot to the Format-time mirror (no
    // checkpoint yet, only WAL-replayed objects) — that is a reachable
    // crash state, not corruption.
    if (k.root_container() != kInvalidObject && !k.ObjectExists(k.root_container())) {
      return false;
    }
    for (ObjectId id : k.LiveObjects()) {
      std::vector<uint8_t> bytes;
      if (!k.SerializeObject(id, &bytes)) {
        return false;
      }
    }
    return true;
  }

  // Disarms everything, lets the live kernel commit cleanly, and runs one
  // last reboot check — after a successful group sync the recovered world
  // must equal the live one exactly (unless the schedule went relaxed).
  bool Finish() {
    disk_->ClearFaults();
    StoreAlloc::Disarm();
    if (disk_->crashed()) {
      disk_->Repair();
    }
    Status st = Status::kOk;
    for (int i = 0; i < 3; ++i) {
      st = kernel_->sys_sync(init_);
      if (st == Status::kOk) break;
    }
    if (!relaxed_) {
      EXPECT_EQ(st, Status::kOk) << "fault-free final sync kept failing";
    }
    oracle_->OnGroupSync(st, WorldImage(*kernel_));
    return RebootCheck(false);
  }

  Workload workload_;
  uint64_t seed_;
  std::mt19937_64 rng_;
  CampaignStats* stats_;
  StoreTuning tuning_;
  bool relaxed_ = false;
  bool allow_silent_ = false;
  bool armed_silent_ = false;
  bool armed_read_ = false;

  std::unique_ptr<DiskModel> disk_;
  std::unique_ptr<SingleLevelStore> store_;
  std::unique_ptr<Kernel> kernel_;
  ObjectId init_ = kInvalidObject;
  ObjectId ring_ = kInvalidObject;
  CategoryId cat_ = 0;
  std::vector<ObjectId> segs_;
  std::unique_ptr<CrashOracle> oracle_;
};

uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* v = std::getenv(name);
  return v != nullptr && *v != '\0' ? std::strtoull(v, nullptr, 0) : fallback;
}

TEST(FaultCampaign, RandomizedSchedulesRecoverConsistently) {
  CampaignStats stats;
  const uint64_t replay_seed = EnvU64("FAULT_SEED", 0);
  const uint64_t per_workload = replay_seed != 0 ? 1 : EnvU64("FAULT_SCHEDULES", 70);

  for (Workload w : {Workload::kDirtyHeavy, Workload::kLabelChurn, Workload::kRingDriven,
                     Workload::kBetreeHeavy}) {
    for (uint64_t i = 0; i < per_workload; ++i) {
      // Seed derivation is stable so any schedule replays from its printed
      // seed alone (plus the workload, also printed).
      uint64_t seed = replay_seed != 0
                          ? replay_seed
                          : (static_cast<uint64_t>(w) + 1) * 0x9e3779b97f4a7c15ULL + i * 7919 + 1;
      Schedule s(w, seed, &stats);
      if (!s.Run() || ::testing::Test::HasFailure()) {
        std::fprintf(stderr, "FAULT_SEED=%llu (workload %s)\n",
                     static_cast<unsigned long long>(seed), WorkloadName(w));
        // Dump the flight recorder next to the seed line: the failing
        // schedule's last syscalls, store commits, and injected faults,
        // replayable offline with tools/tracefmt (docs/observability.md).
        // CI uploads the file with the campaign log.
        const char* dump = "fault_campaign_trace.json";
        if (trace::DumpToFile(dump, 256)) {
          std::fprintf(stderr, "FAULT_TRACE=%s (render with tracefmt)\n", dump);
        }
        FAIL() << "schedule failed; replay with FAULT_SEED=" << seed << " (workload "
               << WorkloadName(w) << ")";
      }
      ++stats.schedules;
    }
  }

  std::fprintf(stderr,
               "fault campaign: %llu schedules, %llu rounds, %llu relaxed, "
               "%llu alloc failures, classes fired: %d\n",
               static_cast<unsigned long long>(stats.schedules),
               static_cast<unsigned long long>(stats.rounds),
               static_cast<unsigned long long>(stats.relaxed_schedules),
               static_cast<unsigned long long>(stats.alloc_failures), stats.ClassesFired());
  if (replay_seed == 0 && per_workload >= 30) {
    // Acceptance: the default campaign must actually exercise the fault
    // repertoire, not just clean rounds.
    EXPECT_GE(stats.ClassesFired(), 4);
  }
}

}  // namespace
}  // namespace histar
