// Status-propagation audit, pinned (PR 7 satellite): an injected DiskModel
// error anywhere under a sync must surface as that sync's failure status —
// kIoError for device errors, kNoMem for allocation failure — with the
// kernel still live, the world still dirty, and a clean retry committing.
// No store path may swallow a Read/Write status (each call site in
// single_level_store.cc checks and forwards; these tests keep it that way).
#include <gtest/gtest.h>

#include "src/store/single_level_store.h"
#include "src/store/store_alloc.h"
#include "tests/kernel/kernel_test_util.h"
#include "tests/store/crash_oracle.h"

namespace histar {
namespace {

StoreTuning AuditTuning() {
  StoreTuning t;
  t.log_region_bytes = 1 << 20;
  return t;
}

class SyncFaultStatusTest : public KernelTest {
 protected:
  void SetUp() override {
    KernelTest::SetUp();
    DiskGeometry g;
    g.capacity_bytes = 64 << 20;
    g.zero_latency = true;
    g.store_data = true;
    disk_ = std::make_unique<DiskModel>(g);
    store_ = std::make_unique<SingleLevelStore>(disk_.get(), AuditTuning());
    ASSERT_EQ(store_->Format(), Status::kOk);
    kernel_->AttachPersistTarget(store_.get());
  }

  void TearDown() override {
    StoreAlloc::Disarm();
    KernelTest::TearDown();
  }

  void ArmWriteError(uint64_t nth_write = 0) {
    FaultPlan plan;
    FaultRule rule;
    rule.kind = FaultKind::kWriteError;
    rule.on_read = false;
    rule.op_index = nth_write;
    plan.rules.push_back(rule);
    disk_->SetFaultPlan(std::move(plan));
  }

  void ArmReadError(uint64_t nth_read) {
    FaultPlan plan;
    FaultRule rule;
    rule.kind = FaultKind::kReadError;
    rule.on_read = true;
    rule.op_index = nth_read;
    plan.rules.push_back(rule);
    disk_->SetFaultPlan(std::move(plan));
  }

  std::unique_ptr<DiskModel> disk_;
  std::unique_ptr<SingleLevelStore> store_;
};

// The headline property: a device write error fails sys_sync with kIoError,
// the kernel keeps running with its dirty marks intact, and the retry (the
// fault is one-shot) commits the same world a reboot then reproduces.
TEST_F(SyncFaultStatusTest, WriteErrorFailsSyncKernelStaysLiveWorldStaysDirty) {
  ObjectId seg = MakeSegment(Label(), 128);
  uint64_t stamp = 1;
  ASSERT_EQ(kernel_->sys_segment_write(init_, RootEntry(seg), &stamp, 0, 8), Status::kOk);

  ArmWriteError();
  EXPECT_EQ(kernel_->sys_sync(init_), Status::kIoError);
  EXPECT_EQ(disk_->faults_injected(FaultKind::kWriteError), 1u);
  EXPECT_FALSE(disk_->crashed()) << "a transient I/O error is not a device crash";

  // Kernel live: dirty marks survive, reads and writes still work.
  EXPECT_FALSE(kernel_->DirtyObjects().empty());
  uint64_t read_back = 0;
  ASSERT_EQ(kernel_->sys_segment_read(init_, RootEntry(seg), &read_back, 0, 8), Status::kOk);
  EXPECT_EQ(read_back, 1u);

  // Retry commits; reboot agrees byte-for-byte.
  ASSERT_EQ(kernel_->sys_sync(init_), Status::kOk);
  EXPECT_TRUE(kernel_->DirtyObjects().empty());
  RebootResult r = RebootFromDisk(disk_.get(), AuditTuning());
  ASSERT_EQ(r.status, Status::kOk);
  EXPECT_EQ(WorldImage(*r.kernel), WorldImage(*kernel_));
}

// Same contract on the WAL path.
TEST_F(SyncFaultStatusTest, WriteErrorFailsSyncObject) {
  ObjectId seg = MakeSegment(Label(), 128);
  ASSERT_EQ(kernel_->sys_sync(init_), Status::kOk);
  uint64_t stamp = 2;
  ASSERT_EQ(kernel_->sys_segment_write(init_, RootEntry(seg), &stamp, 0, 8), Status::kOk);

  ArmWriteError();
  EXPECT_EQ(kernel_->sys_sync_object(init_, RootEntry(seg)), Status::kIoError);
  EXPECT_FALSE(kernel_->DirtyObjects().empty());
  ASSERT_EQ(kernel_->sys_sync_object(init_, RootEntry(seg)), Status::kOk);

  RebootResult r = RebootFromDisk(disk_.get(), AuditTuning());
  ASSERT_EQ(r.status, Status::kOk);
  EXPECT_EQ(WorldImage(*r.kernel), WorldImage(*kernel_));
}

// A device error some writes INTO the checkpoint (not the first) still
// propagates — mid-operation statuses are not dropped on the floor.
TEST_F(SyncFaultStatusTest, MidCheckpointWriteErrorPropagates) {
  for (int i = 0; i < 6; ++i) {
    ObjectId seg = MakeSegment(Label(), 128);
    uint64_t stamp = static_cast<uint64_t>(i);
    ASSERT_EQ(kernel_->sys_segment_write(init_, RootEntry(seg), &stamp, 0, 8), Status::kOk);
  }
  ArmWriteError(4);  // fifth write of the checkpoint
  EXPECT_EQ(kernel_->sys_sync(init_), Status::kIoError);
  EXPECT_EQ(disk_->faults_injected(FaultKind::kWriteError), 1u);
  ASSERT_EQ(kernel_->sys_sync(init_), Status::kOk);
}

// Allocation failure surfaces as kNoMem, distinct from device errors, with
// the same live-kernel/retry contract.
TEST_F(SyncFaultStatusTest, AllocationFailureSurfacesAsNoMem) {
  ObjectId seg = MakeSegment(Label(), 128);
  uint64_t stamp = 3;
  ASSERT_EQ(kernel_->sys_segment_write(init_, RootEntry(seg), &stamp, 0, 8), Status::kOk);

  StoreAlloc::FailNth(1);
  EXPECT_EQ(kernel_->sys_sync(init_), Status::kNoMem);
  EXPECT_FALSE(kernel_->DirtyObjects().empty());
  EXPECT_EQ(kernel_->sys_sync(init_), Status::kOk);
}

// Demand paging (TouchObject) forwards read errors instead of fabricating a
// length; the next attempt succeeds.
TEST_F(SyncFaultStatusTest, TouchObjectForwardsReadError) {
  ObjectId seg = MakeSegment(Label(), 4096);
  ASSERT_EQ(kernel_->sys_sync(init_), Status::kOk);

  ArmReadError(0);
  Result<uint64_t> touched = store_->TouchObject(seg);
  EXPECT_EQ(touched.status(), Status::kIoError);
  Result<uint64_t> retry = store_->TouchObject(seg);
  ASSERT_TRUE(retry.ok());
  EXPECT_GT(retry.value(), 0u);
}

// Superblock reads are redundant: an error on one slot's read falls back to
// the other copy and recovery succeeds.
TEST_F(SyncFaultStatusTest, SuperblockReadErrorFallsBackToMirror) {
  ObjectId seg = MakeSegment(Label(), 128);
  uint64_t stamp = 4;
  ASSERT_EQ(kernel_->sys_segment_write(init_, RootEntry(seg), &stamp, 0, 8), Status::kOk);
  ASSERT_EQ(kernel_->sys_sync(init_), Status::kOk);

  ArmReadError(0);  // the first read of recovery: superblock slot A
  RebootResult r = RebootFromDisk(disk_.get(), AuditTuning());
  ASSERT_EQ(r.status, Status::kOk) << "one failed superblock read must not end recovery";
  EXPECT_EQ(WorldImage(*r.kernel), WorldImage(*kernel_));
}

// A read error on checkpoint-section or blob data has no mirror: Recover
// must return the error (a failed boot, never an abort), and the clean
// retry must come up on the same world.
TEST_F(SyncFaultStatusTest, SectionReadErrorFailsRecoverCleanRetryWorks) {
  ObjectId seg = MakeSegment(Label(), 128);
  uint64_t stamp = 5;
  ASSERT_EQ(kernel_->sys_segment_write(init_, RootEntry(seg), &stamp, 0, 8), Status::kOk);
  ASSERT_EQ(kernel_->sys_sync(init_), Status::kOk);
  WorldMap committed = WorldImage(*kernel_);

  ArmReadError(2);  // past both superblock slots: the first section read
  RebootResult faulty = RebootFromDisk(disk_.get(), AuditTuning());
  EXPECT_EQ(faulty.status, Status::kIoError);
  disk_->ClearFaults();

  RebootResult clean = RebootFromDisk(disk_.get(), AuditTuning());
  ASSERT_EQ(clean.status, Status::kOk);
  EXPECT_EQ(WorldImage(*clean.kernel), committed);
}

}  // namespace
}  // namespace histar
