// Extent allocator, disk model, and single-level store tests, including
// crash-recovery via torn-write injection (paper §3, §4).
#include <gtest/gtest.h>

#include <random>

#include "src/store/disk_model.h"
#include "src/store/extent_alloc.h"
#include "src/store/single_level_store.h"
#include "tests/kernel/kernel_test_util.h"

namespace histar {
namespace {

// ---- ExtentAllocator ---------------------------------------------------------

TEST(ExtentAllocator, AllocateAndFreeRoundTrip) {
  ExtentAllocator a(0, 1 << 20);
  EXPECT_EQ(a.free_bytes(), 1u << 20);
  Result<uint64_t> x = a.Allocate(4096);
  ASSERT_TRUE(x.ok());
  EXPECT_EQ(a.free_bytes(), (1u << 20) - 4096);
  a.Free(x.value(), 4096);
  EXPECT_EQ(a.free_bytes(), 1u << 20);
  EXPECT_EQ(a.fragment_count(), 1u);  // coalesced back to one extent
}

TEST(ExtentAllocator, CoalescesNeighbors) {
  ExtentAllocator a(0, 1 << 16);
  Result<uint64_t> x = a.Allocate(1000);
  Result<uint64_t> y = a.Allocate(1000);
  Result<uint64_t> z = a.Allocate(1000);
  ASSERT_TRUE(x.ok() && y.ok() && z.ok());
  a.Free(x.value(), 1000);
  a.Free(z.value(), 1000);            // coalesces with the free tail
  EXPECT_EQ(a.fragment_count(), 2u);  // [x) and [z..end)
  a.Free(y.value(), 1000);            // bridges everything
  EXPECT_EQ(a.fragment_count(), 1u);
}

TEST(ExtentAllocator, ExhaustionReturnsNoSpace) {
  ExtentAllocator a(0, 8192);
  ASSERT_TRUE(a.Allocate(8192).ok());
  EXPECT_EQ(a.Allocate(1).status(), Status::kNoSpace);
}

TEST(ExtentAllocator, BestFitPrefersSmallestSufficientExtent) {
  ExtentAllocator a(0, 1 << 16);
  // Carve the pool into a small and a large free extent.
  Result<uint64_t> pad1 = a.Allocate(1000);   // [0, 1000)
  Result<uint64_t> small = a.Allocate(200);   // [1000, 1200)
  Result<uint64_t> pad2 = a.Allocate(1000);   // [1200, 2200)
  ASSERT_TRUE(pad1.ok() && small.ok() && pad2.ok());
  a.Free(small.value(), 200);  // free hole of 200 at 1000
  // A 150-byte request should use the 200-byte hole, not the big tail.
  Result<uint64_t> r = a.Allocate(150);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), small.value());
}

TEST(ExtentAllocator, ReserveRangeCarvesHoles) {
  ExtentAllocator a(0, 1 << 16);
  ASSERT_TRUE(a.ReserveRange(100, 50));
  EXPECT_EQ(a.free_bytes(), (1u << 16) - 50);
  // Overlapping reserve fails.
  EXPECT_FALSE(a.ReserveRange(120, 50));
  // Disjoint reserve succeeds.
  EXPECT_TRUE(a.ReserveRange(200, 10));
  // Freeing restores.
  a.Free(100, 50);
  a.Free(200, 10);
  EXPECT_EQ(a.free_bytes(), 1u << 16);
}

TEST(ExtentAllocator, RandomizedNoOverlapInvariant) {
  std::mt19937_64 rng(99);
  ExtentAllocator a(0, 1 << 20);
  std::vector<std::pair<uint64_t, uint64_t>> live;
  for (int i = 0; i < 2000; ++i) {
    if (live.empty() || rng() % 2 == 0) {
      uint64_t len = 1 + rng() % 5000;
      Result<uint64_t> r = a.Allocate(len);
      if (r.ok()) {
        // Check no overlap with any live extent.
        for (const auto& [off, l] : live) {
          EXPECT_TRUE(r.value() + len <= off || off + l <= r.value())
              << "overlap at " << r.value();
        }
        live.emplace_back(r.value(), len);
      }
    } else {
      size_t idx = rng() % live.size();
      a.Free(live[idx].first, live[idx].second);
      live.erase(live.begin() + static_cast<ptrdiff_t>(idx));
    }
  }
  uint64_t live_bytes = 0;
  for (const auto& [off, l] : live) {
    live_bytes += l;
  }
  EXPECT_EQ(a.free_bytes(), (1u << 20) - live_bytes);
}

// ---- DiskModel ---------------------------------------------------------------

DiskGeometry TestGeometry() {
  DiskGeometry g;
  g.capacity_bytes = 64 << 20;
  g.zero_latency = false;
  g.store_data = true;
  return g;
}

TEST(DiskModel, SequentialCheaperThanRandom) {
  DiskModel d(TestGeometry());
  uint8_t buf[4096] = {};
  // Sequential: two adjacent writes.
  ASSERT_EQ(d.Write(0, buf, 4096), Status::kOk);
  uint64_t t1 = d.sim_time_ns();
  ASSERT_EQ(d.Write(4096, buf, 4096), Status::kOk);
  uint64_t seq_cost = d.sim_time_ns() - t1;
  // Random: a far jump.
  uint64_t t2 = d.sim_time_ns();
  ASSERT_EQ(d.Write(32 << 20, buf, 4096), Status::kOk);
  uint64_t rand_cost = d.sim_time_ns() - t2;
  EXPECT_GT(rand_cost, seq_cost * 10);
}

TEST(DiskModel, LookaheadMakesNearbyReadsCheap) {
  DiskModel d(TestGeometry());
  uint8_t buf[4096] = {};
  ASSERT_EQ(d.Read(1 << 20, buf, 4096), Status::kOk);  // seeds the window
  uint64_t t1 = d.sim_time_ns();
  ASSERT_EQ(d.Read((1 << 20) + 8192, buf, 4096), Status::kOk);  // within window
  uint64_t hit_cost = d.sim_time_ns() - t1;
  d.set_lookahead_enabled(false);
  ASSERT_EQ(d.Read(1 << 20, buf, 4096), Status::kOk);
  uint64_t t2 = d.sim_time_ns();
  ASSERT_EQ(d.Read((1 << 20) + 8192, buf, 4096), Status::kOk);
  uint64_t miss_cost = d.sim_time_ns() - t2;
  EXPECT_GT(miss_cost, hit_cost * 10);
}

TEST(DiskModel, DataRoundTrip) {
  DiskModel d(TestGeometry());
  const char msg[] = "stable storage";
  ASSERT_EQ(d.Write(12345, msg, sizeof(msg)), Status::kOk);
  char out[sizeof(msg)] = {};
  ASSERT_EQ(d.Read(12345, out, sizeof(msg)), Status::kOk);
  EXPECT_STREQ(out, msg);
}

TEST(DiskModel, TornWriteCrash) {
  DiskModel d(TestGeometry());
  uint8_t ones[100];
  memset(ones, 1, sizeof(ones));
  d.CrashAfterBytes(50);
  EXPECT_EQ(d.Write(0, ones, 100), Status::kCrashed);
  EXPECT_TRUE(d.crashed());
  EXPECT_EQ(d.Write(200, ones, 10), Status::kCrashed);
  d.Repair();
  // The torn prefix persisted; the tail did not.
  uint8_t out[100] = {};
  ASSERT_EQ(d.Read(0, out, 100), Status::kOk);
  EXPECT_EQ(out[0], 1);
  EXPECT_EQ(out[49], 1);
  EXPECT_EQ(out[50], 0);
}

// ---- SingleLevelStore ----------------------------------------------------------

// The whole store suite runs once per engine: every durability property the
// blob path guarantees, the Bε-tree path must guarantee too.
class StoreTest : public KernelTest, public ::testing::WithParamInterface<EngineKind> {
 protected:
  StoreTuning Tuning() const {
    StoreTuning tuning;
    tuning.log_region_bytes = 1 << 20;
    tuning.log_apply_threshold = 50;
    tuning.engine = GetParam();
    return tuning;
  }

  void SetUp() override {
    KernelTest::SetUp();
    DiskGeometry g;
    g.capacity_bytes = 256 << 20;
    g.zero_latency = true;
    g.store_data = true;
    disk_ = std::make_unique<DiskModel>(g);
    store_ = std::make_unique<SingleLevelStore>(disk_.get(), Tuning());
    ASSERT_EQ(store_->Format(), Status::kOk);
    kernel_->AttachPersistTarget(store_.get());
  }

  // Boots a fresh kernel from the disk image.
  std::unique_ptr<Kernel> Reboot() {
    auto k = std::make_unique<Kernel>();
    store2_ = std::make_unique<SingleLevelStore>(disk_.get(), Tuning());
    EXPECT_EQ(store2_->Recover(k.get()), Status::kOk);
    return k;
  }

  std::unique_ptr<DiskModel> disk_;
  std::unique_ptr<SingleLevelStore> store_;
  std::unique_ptr<SingleLevelStore> store2_;
};

INSTANTIATE_TEST_SUITE_P(Engines, StoreTest,
                         ::testing::Values(EngineKind::kBlob, EngineKind::kBetree),
                         [](const ::testing::TestParamInfo<EngineKind>& info) {
                           return info.param == EngineKind::kBetree ? "betree" : "blob";
                         });

TEST_P(StoreTest, CheckpointAndRecover) {
  ObjectId seg = MakeSegment(Label(), 64);
  const char msg[] = "single level store";
  ASSERT_EQ(kernel_->sys_segment_write(init_, RootEntry(seg), msg, 0, sizeof(msg)),
            Status::kOk);
  ASSERT_EQ(kernel_->sys_sync(init_), Status::kOk);

  std::unique_ptr<Kernel> k2 = Reboot();
  ASSERT_TRUE(k2->ObjectExists(seg));
  char out[sizeof(msg)] = {};
  CurrentThread bind(init_);
  ASSERT_EQ(k2->sys_segment_read(init_, ContainerEntry{k2->root_container(), seg}, out, 0,
                                 sizeof(msg)),
            Status::kOk);
  EXPECT_STREQ(out, msg);
  EXPECT_EQ(k2->root_container(), kernel_->root_container());
}

TEST_P(StoreTest, UnsyncedStateIsLostOnReboot) {
  ObjectId early = MakeSegment(Label(), 16);
  ASSERT_EQ(kernel_->sys_sync(init_), Status::kOk);
  ObjectId late = MakeSegment(Label(), 16);  // never synced
  std::unique_ptr<Kernel> k2 = Reboot();
  EXPECT_TRUE(k2->ObjectExists(early));
  EXPECT_FALSE(k2->ObjectExists(late));
}

TEST_P(StoreTest, PerObjectSyncSurvivesViaLog) {
  ObjectId seg = MakeSegment(Label(), 32);
  ASSERT_EQ(kernel_->sys_sync(init_), Status::kOk);
  const char msg[] = "walled";
  ASSERT_EQ(kernel_->sys_segment_write(init_, RootEntry(seg), msg, 0, sizeof(msg)),
            Status::kOk);
  // fsync just this object: goes to the WAL, not a full checkpoint.
  ASSERT_EQ(kernel_->sys_sync_object(init_, RootEntry(seg)), Status::kOk);
  EXPECT_EQ(store_->log_records(), 1u);

  std::unique_ptr<Kernel> k2 = Reboot();
  char out[sizeof(msg)] = {};
  CurrentThread bind(init_);
  ASSERT_EQ(k2->sys_segment_read(init_, ContainerEntry{k2->root_container(), seg}, out, 0,
                                 sizeof(msg)),
            Status::kOk);
  EXPECT_STREQ(out, msg);
}

TEST_P(StoreTest, LogAppliesInBatches) {
  ObjectId seg = MakeSegment(Label(), 32);
  ASSERT_EQ(kernel_->sys_sync(init_), Status::kOk);
  // 120 syncs with threshold 50 → 2 batch applies.
  for (int i = 0; i < 120; ++i) {
    uint32_t v = static_cast<uint32_t>(i);
    ASSERT_EQ(kernel_->sys_segment_write(init_, RootEntry(seg), &v, 0, 4), Status::kOk);
    ASSERT_EQ(kernel_->sys_sync_object(init_, RootEntry(seg)), Status::kOk);
  }
  EXPECT_EQ(store_->log_applies(), 2u);
  EXPECT_EQ(store_->log_records(), 120u);
}

TEST_P(StoreTest, TornLogRecordIsDiscardedOnRecovery) {
  ObjectId seg = MakeSegment(Label(), 32);
  uint32_t v = 0xaaaa5555;
  ASSERT_EQ(kernel_->sys_segment_write(init_, RootEntry(seg), &v, 0, 4), Status::kOk);
  ASSERT_EQ(kernel_->sys_sync(init_), Status::kOk);

  // Write a new value and fsync, but tear the log record mid-write.
  uint32_t v2 = 0x1111eeee;
  ASSERT_EQ(kernel_->sys_segment_write(init_, RootEntry(seg), &v2, 0, 4), Status::kOk);
  disk_->CrashAfterBytes(40);  // the record is > 40 bytes: it tears
  EXPECT_NE(kernel_->sys_sync_object(init_, RootEntry(seg)), Status::kOk);
  disk_->Repair();

  std::unique_ptr<Kernel> k2 = Reboot();
  uint32_t out = 0;
  CurrentThread bind(init_);
  ASSERT_EQ(k2->sys_segment_read(init_, ContainerEntry{k2->root_container(), seg}, &out, 0, 4),
            Status::kOk);
  // The torn sync never happened: the checkpointed value is intact.
  EXPECT_EQ(out, v);
}

TEST_P(StoreTest, CrashDuringCheckpointKeepsOldSnapshot) {
  ObjectId seg = MakeSegment(Label(), 1024);
  std::vector<uint8_t> ones(1024, 1);
  ASSERT_EQ(kernel_->sys_segment_write(init_, RootEntry(seg), ones.data(), 0, 1024),
            Status::kOk);
  ASSERT_EQ(kernel_->sys_sync(init_), Status::kOk);

  std::vector<uint8_t> twos(1024, 2);
  ASSERT_EQ(kernel_->sys_segment_write(init_, RootEntry(seg), twos.data(), 0, 1024),
            Status::kOk);
  // Crash partway into the second checkpoint: the first thing it writes is
  // the >=1024-byte segment image, so a 512-byte budget guarantees a torn
  // object write long before the superblock flip.
  disk_->CrashAfterBytes(512);
  EXPECT_NE(kernel_->sys_sync(init_), Status::kOk);
  disk_->Repair();

  std::unique_ptr<Kernel> k2 = Reboot();
  uint8_t out = 0;
  CurrentThread bind(init_);
  ASSERT_EQ(k2->sys_segment_read(init_, ContainerEntry{k2->root_container(), seg}, &out, 0, 1),
            Status::kOk);
  EXPECT_EQ(out, 1);  // the old snapshot, never the torn one
}

TEST_P(StoreTest, DeletedObjectsDropFromDisk) {
  ObjectId seg = MakeSegment(Label(), 64);
  ASSERT_EQ(kernel_->sys_sync(init_), Status::kOk);
  uint64_t free_with = store_->heap_free_bytes();
  ASSERT_EQ(kernel_->sys_container_unref(init_, RootEntry(seg)), Status::kOk);
  // The Bε-tree engine stages the delete as a tombstone message; only a base
  // flush applies it to the on-disk tree and returns the space. Demand one so
  // both engines show the reclaim on this sync.
  if (GetParam() == EngineKind::kBetree) {
    store_->DemandBase();
  }
  ASSERT_EQ(kernel_->sys_sync(init_), Status::kOk);
  EXPECT_GT(store_->heap_free_bytes(), free_with);
  std::unique_ptr<Kernel> k2 = Reboot();
  EXPECT_FALSE(k2->ObjectExists(seg));
}

TEST_P(StoreTest, RecoverOnBlankDiskFails) {
  DiskGeometry g;
  g.capacity_bytes = 16 << 20;
  g.zero_latency = true;
  DiskModel blank(g);
  SingleLevelStore s(&blank, Tuning());
  Kernel k;
  EXPECT_EQ(s.Recover(&k), Status::kNotFound);
}

TEST_P(StoreTest, GenerationsAdvanceMonotonically) {
  uint64_t g0 = store_->generation();
  ASSERT_EQ(kernel_->sys_sync(init_), Status::kOk);
  ASSERT_EQ(kernel_->sys_sync(init_), Status::kOk);
  EXPECT_GT(store_->generation(), g0);
}

}  // namespace
}  // namespace histar
