// Networking tests (paper §5.7): the untrusted stack, the i-taint on
// everything from the wire, and end-to-end stream transfer between two
// machines on the simulated switch.
#include "src/net/netd.h"

#include <gtest/gtest.h>

namespace histar {
namespace {

class NetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net_ = std::make_unique<NetSwitch>();
    // Two "machines" sharing a kernel for test simplicity: two devices, two
    // stacks, one switch. Labels keep the stacks honest regardless.
    kernel_ = std::make_unique<Kernel>();
    world_ = UnixWorld::Boot(kernel_.get());
    ASSERT_NE(world_, nullptr);
    CurrentThread::Set(world_->init_thread());
    a_ = NetDaemon::Start(world_.get(), net_->NewPort(), "netd-a");
    b_ = NetDaemon::Start(world_.get(), net_->NewPort(), "netd-b");
    ASSERT_NE(a_, nullptr);
    ASSERT_NE(b_, nullptr);
    // The ring-backed NIC path (PR 5) must be live, not silently fallen
    // back — every stream test below then exercises it end to end.
    EXPECT_TRUE(a_->ring_enabled());
    EXPECT_TRUE(b_->ring_enabled());
  }

  void TearDown() override {
    a_->Stop();
    b_->Stop();
    CurrentThread::Set(kInvalidObject);
  }

  // Makes a client thread tainted i2 for the given stack.
  ObjectId MakeClient(NetDaemon* d, const std::string& name) {
    Label l = d->ClientTaint();
    Label c(Level::k2, {{d->taint().i, Level::k3}});
    return kernel_->BootstrapThread(l, c, name);
  }

  std::unique_ptr<NetSwitch> net_;
  std::unique_ptr<Kernel> kernel_;
  std::unique_ptr<UnixWorld> world_;
  std::unique_ptr<NetDaemon> a_;
  std::unique_ptr<NetDaemon> b_;
};

TEST_F(NetTest, ConnectAcceptSendRecv) {
  ObjectId server = MakeClient(b_.get(), "server");
  ObjectId client = MakeClient(a_.get(), "client");

  Result<uint64_t> ls = b_->Listen(server, 80);
  ASSERT_TRUE(ls.ok()) << StatusName(ls.status());

  std::thread srv([&]() {
    CurrentThread bind(server);
    Result<uint64_t> conn = b_->Accept(server, ls.value(), 5000);
    ASSERT_TRUE(conn.ok()) << StatusName(conn.status());
    char buf[64] = {};
    Result<uint64_t> n = b_->Recv(server, conn.value(), buf, sizeof(buf), 5000);
    ASSERT_TRUE(n.ok()) << StatusName(n.status());
    std::string got(buf, n.value());
    EXPECT_EQ(got, "GET /");
    const char resp[] = "hello from b";
    ASSERT_TRUE(b_->Send(server, conn.value(), resp, sizeof(resp)).ok());
  });

  CurrentThread bind(client);
  Result<uint64_t> conn = a_->Connect(client, b_->mac(), 80);
  ASSERT_TRUE(conn.ok()) << StatusName(conn.status());
  const char req[] = {'G', 'E', 'T', ' ', '/'};
  ASSERT_TRUE(a_->Send(client, conn.value(), req, sizeof(req)).ok());
  char buf[64] = {};
  Result<uint64_t> n = a_->Recv(client, conn.value(), buf, sizeof(buf), 5000);
  srv.join();
  ASSERT_TRUE(n.ok()) << StatusName(n.status());
  EXPECT_STREQ(buf, "hello from b");
}

TEST_F(NetTest, BulkTransferIsReliable) {
  ObjectId server = MakeClient(b_.get(), "server");
  ObjectId client = MakeClient(a_.get(), "client");
  constexpr uint64_t kTotal = 1 << 20;  // 1 MB through 64 kB rings

  Result<uint64_t> ls = b_->Listen(server, 9000);
  ASSERT_TRUE(ls.ok());
  std::thread srv([&]() {
    CurrentThread bind(server);
    Result<uint64_t> conn = b_->Accept(server, ls.value(), 5000);
    ASSERT_TRUE(conn.ok());
    std::vector<uint8_t> chunk(8192);
    uint64_t seen = 0;
    uint64_t checksum = 0;
    while (seen < kTotal) {
      Result<uint64_t> n = b_->Recv(server, conn.value(), chunk.data(), chunk.size(), 10000);
      ASSERT_TRUE(n.ok()) << StatusName(n.status());
      for (uint64_t i = 0; i < n.value(); ++i) {
        checksum += chunk[i];
      }
      seen += n.value();
    }
    EXPECT_EQ(seen, kTotal);
    // Every byte b[i] = i & 0xff; verify the aggregate.
    uint64_t want = 0;
    for (uint64_t i = 0; i < kTotal; ++i) {
      want += i & 0xff;
    }
    EXPECT_EQ(checksum, want);
  });

  CurrentThread bind(client);
  Result<uint64_t> conn = a_->Connect(client, b_->mac(), 9000);
  ASSERT_TRUE(conn.ok());
  std::vector<uint8_t> chunk(8192);
  uint64_t sent = 0;
  while (sent < kTotal) {
    uint64_t n = std::min<uint64_t>(chunk.size(), kTotal - sent);
    for (uint64_t i = 0; i < n; ++i) {
      chunk[i] = static_cast<uint8_t>((sent + i) & 0xff);
    }
    Result<uint64_t> w = a_->Send(client, conn.value(), chunk.data(), n);
    ASSERT_TRUE(w.ok()) << StatusName(w.status());
    sent += w.value();
  }
  srv.join();
}

TEST_F(NetTest, UntaintedThreadCannotReadSocketData) {
  // The central property: network payloads live in {i2, 1} segments, so a
  // thread that has not tainted itself i2 cannot observe them.
  ObjectId client = MakeClient(a_.get(), "client");
  CurrentThread bind(client);
  Result<uint64_t> ls = a_->Listen(client, 1234);
  ASSERT_TRUE(ls.ok());
  Result<ContainerEntry> seg = a_->SocketSegment(ls.value());
  ASSERT_TRUE(seg.ok());

  ObjectId plain = kernel_->BootstrapThread(Label(), Label(Level::k2), "plain");
  char buf[8];
  EXPECT_EQ(kernel_->sys_segment_read(plain, seg.value(), buf, 0, 8),
            Status::kLabelCheckFailed);
  // The i2-tainted client can.
  EXPECT_EQ(kernel_->sys_segment_read(client, seg.value(), buf, 0, 8), Status::kOk);
}

TEST_F(NetTest, UntaintedThreadCannotOpenSockets) {
  // Socket setup writes into netd's i2-tainted process container, which an
  // untainted thread cannot modify; the taint is mandatory, not advisory.
  ObjectId plain = kernel_->BootstrapThread(Label(), Label(Level::k2), "plain");
  CurrentThread bind(plain);
  Result<uint64_t> ls = a_->Listen(plain, 7);
  EXPECT_FALSE(ls.ok());
}

TEST_F(NetTest, ForeignTaintCannotTransmit) {
  // A thread tainted v3 in a category netd does not own can neither invoke
  // the ctl gate (clearance {2}) nor write the device — the §6.1 scanner
  // containment reduced to its essence.
  Result<CategoryId> v = kernel_->sys_cat_create(world_->init_thread());
  ASSERT_TRUE(v.ok());
  Label vl = a_->ClientTaint();
  vl.set(v.value(), Level::k3);
  Label vc(Level::k2, {{a_->taint().i, Level::k3}, {v.value(), Level::k3}});
  ObjectId tainted = kernel_->BootstrapThread(vl, vc, "v-tainted");
  CurrentThread bind(tainted);
  Result<uint64_t> ls = a_->Listen(tainted, 99);
  EXPECT_FALSE(ls.ok());
  // Direct device access fails too: the device is {nr3, nw0, i2, 1} and the
  // thread's v3 cannot flow into it.
  ObjectId seg = [&] {
    CreateSpec spec;
    spec.container = kernel_->root_container();
    spec.label = vl;
    spec.quota = 16 * kPageSize;
    spec.descrip = "payload";
    // Creating in root requires writing root — v3 taint forbids even that;
    // use a fresh tainted container off the root created by init.
    return kInvalidObject;
  }();
  (void)seg;
  ContainerEntry dev{kernel_->root_container(), a_->device()};
  // Even with a buffer it could read, transmitting requires modifying the
  // device: v3 ⋢ device label.
  EXPECT_EQ(kernel_->sys_net_transmit(tainted, dev, dev, 0, 0), Status::kLabelCheckFailed);
}

TEST_F(NetTest, CloseSignalsEof) {
  ObjectId server = MakeClient(b_.get(), "server");
  ObjectId client = MakeClient(a_.get(), "client");
  Result<uint64_t> ls = b_->Listen(server, 81);
  ASSERT_TRUE(ls.ok());
  std::thread srv([&]() {
    CurrentThread bind(server);
    Result<uint64_t> conn = b_->Accept(server, ls.value(), 5000);
    ASSERT_TRUE(conn.ok());
    ASSERT_EQ(b_->CloseSocket(server, conn.value()), Status::kOk);
  });
  CurrentThread bind(client);
  Result<uint64_t> conn = a_->Connect(client, b_->mac(), 81);
  ASSERT_TRUE(conn.ok());
  srv.join();
  char buf[8];
  Result<uint64_t> n = a_->Recv(client, conn.value(), buf, sizeof(buf), 5000);
  ASSERT_TRUE(n.ok()) << StatusName(n.status());
  EXPECT_EQ(n.value(), 0u);  // EOF
}

TEST_F(NetTest, SwitchAccountsVirtualTime) {
  // 100 Mb/s line rate: bytes forwarded accrue simulated nanoseconds for
  // the Figure 13 wget experiment.
  net_->ResetSimTime();
  ObjectId server = MakeClient(b_.get(), "server");
  ObjectId client = MakeClient(a_.get(), "client");
  Result<uint64_t> ls = b_->Listen(server, 82);
  ASSERT_TRUE(ls.ok());
  std::thread srv([&]() {
    CurrentThread bind(server);
    Result<uint64_t> conn = b_->Accept(server, ls.value(), 5000);
    ASSERT_TRUE(conn.ok());
    char buf[4096];
    uint64_t seen = 0;
    while (seen < 100 * 1024) {
      Result<uint64_t> n = b_->Recv(server, conn.value(), buf, sizeof(buf), 5000);
      ASSERT_TRUE(n.ok());
      seen += n.value();
    }
  });
  CurrentThread bind(client);
  Result<uint64_t> conn = a_->Connect(client, b_->mac(), 82);
  ASSERT_TRUE(conn.ok());
  std::vector<uint8_t> chunk(4096, 9);
  for (int i = 0; i < 25; ++i) {
    ASSERT_TRUE(a_->Send(client, conn.value(), chunk.data(), chunk.size()).ok());
  }
  srv.join();
  // ≥ 100 KiB at 100 Mb/s ≈ ≥ 8.4 simulated ms.
  EXPECT_GT(net_->sim_time_ns(), 8'000'000u);
}

}  // namespace
}  // namespace histar
