// VPN isolation tests (paper §6.3, Figure 11): two networks, two taints,
// end-to-end tunneling, and the impossibility of cross-network flows except
// through the category owners.
#include "src/net/vpn.h"

#include <gtest/gtest.h>

namespace histar {
namespace {

class VpnTest : public ::testing::Test {
 protected:
  void SetUp() override {
    inet_switch_ = std::make_unique<NetSwitch>();
    kernel_ = std::make_unique<Kernel>();
    world_ = UnixWorld::Boot(kernel_.get());
    ASSERT_NE(world_, nullptr);
    CurrentThread::Set(world_->init_thread());
    inet_ = NetDaemon::Start(world_.get(), inet_switch_->NewPort(), "netd-inet");
    ASSERT_NE(inet_, nullptr);

    // The remote gateway: an ordinary i2-tainted client of a *second* NIC
    // on the Internet switch — a different machine in spirit.
    gw_stack_ = NetDaemon::Start(world_.get(), inet_switch_->NewPort(), "netd-gw",
                                 nullptr);
    ASSERT_NE(gw_stack_, nullptr);
    gw_client_ = MakeClient(gw_stack_.get(), "gateway");
    gateway_ = std::make_unique<VpnGatewaySim>(gw_stack_.get(), kernel_.get(), gw_client_,
                                               1194, 0x5a);

    vpn_ = VpnDaemon::Start(world_.get(), inet_.get(), gw_stack_->mac(), 1194, 0x5a);
    ASSERT_NE(vpn_, nullptr);
  }

  void TearDown() override {
    vpn_->Stop();
    gateway_->Stop();
    gw_stack_->Stop();
    inet_->Stop();
    CurrentThread::Set(kInvalidObject);
  }

  ObjectId MakeClient(NetDaemon* d, const std::string& name) {
    Label l = d->ClientTaint();
    Label c(Level::k2, {{d->taint().i, Level::k3}});
    return kernel_->BootstrapThread(l, c, name);
  }

  std::unique_ptr<NetSwitch> inet_switch_;
  std::unique_ptr<Kernel> kernel_;
  std::unique_ptr<UnixWorld> world_;
  std::unique_ptr<NetDaemon> inet_;
  std::unique_ptr<NetDaemon> gw_stack_;
  ObjectId gw_client_ = kInvalidObject;
  std::unique_ptr<VpnGatewaySim> gateway_;
  std::unique_ptr<VpnDaemon> vpn_;
};

TEST_F(VpnTest, EchoThroughTheTunnel) {
  // A v2-tainted app on the VPN side reaches the echo service on the far
  // network: app → vpn stack → tun → vpnd (encrypt) → Internet → gateway →
  // and all the way back.
  ObjectId app = MakeClient(vpn_->vpn_stack(), "vpn-app");
  CurrentThread bind(app);
  Result<uint64_t> conn =
      vpn_->vpn_stack()->Connect(app, gateway_->remote_host_mac(), 7);
  ASSERT_TRUE(conn.ok()) << StatusName(conn.status());
  const char msg[] = "ping over the vpn";
  ASSERT_TRUE(vpn_->vpn_stack()->Send(app, conn.value(), msg, sizeof(msg)).ok());
  char buf[64] = {};
  uint64_t got = 0;
  while (got < sizeof(msg)) {
    Result<uint64_t> n =
        vpn_->vpn_stack()->Recv(app, conn.value(), buf + got, sizeof(buf) - got, 10000);
    ASSERT_TRUE(n.ok()) << StatusName(n.status());
    got += n.value();
  }
  EXPECT_STREQ(buf, msg);
  EXPECT_GT(vpn_->frames_out(), 0u);
  EXPECT_GT(vpn_->frames_in(), 0u);
  EXPECT_GT(gateway_->frames_tunneled(), 0u);
}

TEST_F(VpnTest, VpnTaintedAppCannotUseInternetStack) {
  // Figure 11's whole point: v2 cannot flow to the Internet. The VPN app's
  // taint blocks the Internet ctl gate, the Internet socket segments, and
  // the Internet device itself.
  Label l = vpn_->vpn_stack()->ClientTaint();     // {v2, 1}
  l = l.Join(inet_->ClientTaint());               // even {i2, v2, 1} stays blocked
  Label c(Level::k2, {{vpn_->v(), Level::k3}, {inet_->taint().i, Level::k3}});
  ObjectId app = kernel_->BootstrapThread(l, c, "vpn-app");
  CurrentThread bind(app);
  // Socket setup on the Internet stack fails (cannot write netd's {i2}
  // containers with a v2 taint).
  EXPECT_FALSE(inet_->Listen(app, 5555).ok());
  // Raw device transmit fails.
  ContainerEntry dev{kernel_->root_container(), inet_->device()};
  EXPECT_EQ(kernel_->sys_net_transmit(app, dev, dev, 0, 0), Status::kLabelCheckFailed);
}

TEST_F(VpnTest, InternetTaintedAppCannotTouchVpn) {
  ObjectId app = MakeClient(inet_.get(), "inet-app");
  CurrentThread bind(app);
  // The VPN stack's sockets are {v2, 1}; i2 ⋢ v-access and the ctl gate's
  // process containers carry v2.
  EXPECT_FALSE(vpn_->vpn_stack()->Listen(app, 4444).ok());
}

TEST_F(VpnTest, VpnSocketDataCarriesVpnTaint) {
  ObjectId app = MakeClient(vpn_->vpn_stack(), "vpn-app");
  CurrentThread bind(app);
  Result<uint64_t> ls = vpn_->vpn_stack()->Listen(app, 2222);
  ASSERT_TRUE(ls.ok());
  Result<ContainerEntry> seg = vpn_->vpn_stack()->SocketSegment(ls.value());
  ASSERT_TRUE(seg.ok());
  Result<Label> l = kernel_->sys_obj_get_label(app, seg.value());
  ASSERT_TRUE(l.ok());
  EXPECT_EQ(l.value().get(vpn_->v()), Level::k2);
  // An i2-only thread cannot read it.
  ObjectId inet_app = MakeClient(inet_.get(), "inet-app");
  char buf[8];
  EXPECT_EQ(kernel_->sys_segment_read(inet_app, seg.value(), buf, 0, 8),
            Status::kLabelCheckFailed);
}

TEST_F(VpnTest, TunnelBytesOnTheWireAreEncrypted) {
  // The inner frame must not appear in clear on the Internet. We check the
  // codec directly (the wire carries exactly these bytes).
  std::vector<uint8_t> inner = {'s', 'e', 'c', 'r', 'e', 't'};
  std::vector<uint8_t> rec;
  TunnelEncode(0x5a, inner, &rec);
  std::string wire(rec.begin(), rec.end());
  EXPECT_EQ(wire.find("secret"), std::string::npos);
  TunnelDecoder dec(0x5a);
  dec.Feed(rec.data(), rec.size());
  std::vector<uint8_t> out;
  ASSERT_TRUE(dec.Next(&out));
  EXPECT_EQ(out, inner);
  // Torn feeds reassemble.
  TunnelDecoder dec2(0x5a);
  dec2.Feed(rec.data(), 3);
  EXPECT_FALSE(dec2.Next(&out));
  dec2.Feed(rec.data() + 3, rec.size() - 3);
  ASSERT_TRUE(dec2.Next(&out));
  EXPECT_EQ(out, inner);
}

}  // namespace
}  // namespace histar
