// Stream-close ordering in netd: regressions for the two bugs that the
// paper's applications (ServeDbOnce-style send-then-close servers) flush
// out of any stream implementation.
//
//  1. Sender side: Close must drain the tx ring before emitting FIN, or the
//     FIN overtakes queued data on the wire.
//  2. Receiver side: a FIN that arrives while data still sits in the rx
//     staging queue must not surface EOF early.
#include <gtest/gtest.h>

#include <thread>

#include "src/net/netd.h"

namespace histar {
namespace {

class NetCloseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net_ = std::make_unique<NetSwitch>();
    kernel_ = std::make_unique<Kernel>();
    world_ = UnixWorld::Boot(kernel_.get());
    ASSERT_NE(world_, nullptr);
    CurrentThread::Set(world_->init_thread());
    a_ = NetDaemon::Start(world_.get(), net_->NewPort(), "netd-a");
    b_ = NetDaemon::Start(world_.get(), net_->NewPort(), "netd-b");
    ASSERT_NE(a_, nullptr);
    ASSERT_NE(b_, nullptr);
  }
  void TearDown() override {
    a_->Stop();
    b_->Stop();
    CurrentThread::Set(kInvalidObject);
  }

  ObjectId MakeClient(NetDaemon* d, const std::string& name) {
    Label l = d->ClientTaint();
    Label c(Level::k2, {{d->taint().i, Level::k3}});
    return kernel_->BootstrapThread(l, c, name);
  }

  std::unique_ptr<NetSwitch> net_;
  std::unique_ptr<Kernel> kernel_;
  std::unique_ptr<UnixWorld> world_;
  std::unique_ptr<NetDaemon> a_;
  std::unique_ptr<NetDaemon> b_;
};

// The ServeDbOnce pattern: send a blob, close immediately. The receiver
// must see every byte, then EOF.
TEST_F(NetCloseTest, SendThenImmediateCloseDeliversAllBytes) {
  ObjectId server = MakeClient(b_.get(), "server");
  ObjectId client = MakeClient(a_.get(), "client");
  const std::string blob(4096, 'x');

  Result<uint64_t> ls = b_->Listen(server, 4242);
  ASSERT_TRUE(ls.ok());
  std::thread srv([&]() {
    CurrentThread bind(server);
    Result<uint64_t> conn = b_->Accept(server, ls.value(), 5000);
    ASSERT_TRUE(conn.ok());
    ASSERT_TRUE(b_->Send(server, conn.value(), blob.data(), blob.size()).ok());
    b_->CloseSocket(server, conn.value());  // no delay: FIN chases the data
  });

  CurrentThread bind(client);
  Result<uint64_t> conn = a_->Connect(client, b_->mac(), 4242);
  ASSERT_TRUE(conn.ok());
  std::string got;
  char buf[1024];
  for (;;) {
    Result<uint64_t> n = a_->Recv(client, conn.value(), buf, sizeof(buf), 5000);
    ASSERT_TRUE(n.ok()) << StatusName(n.status());
    if (n.value() == 0) {
      break;  // orderly EOF
    }
    got.append(buf, n.value());
  }
  srv.join();
  EXPECT_EQ(got, blob);
}

// Same, but large enough that the blob spans many frames and several pump
// rounds — the FIN must stay behind all of them.
TEST_F(NetCloseTest, CloseBehindMultiFrameBurst) {
  ObjectId server = MakeClient(b_.get(), "server");
  ObjectId client = MakeClient(a_.get(), "client");
  constexpr uint64_t kTotal = 200 * 1024;

  Result<uint64_t> ls = b_->Listen(server, 4243);
  ASSERT_TRUE(ls.ok());
  std::thread srv([&]() {
    CurrentThread bind(server);
    Result<uint64_t> conn = b_->Accept(server, ls.value(), 5000);
    ASSERT_TRUE(conn.ok());
    std::vector<uint8_t> chunk(8192);
    uint64_t sent = 0;
    while (sent < kTotal) {
      for (size_t i = 0; i < chunk.size(); ++i) {
        chunk[i] = static_cast<uint8_t>((sent + i) % 251);
      }
      uint64_t n = std::min<uint64_t>(chunk.size(), kTotal - sent);
      Result<uint64_t> w = b_->Send(server, conn.value(), chunk.data(), n);
      ASSERT_TRUE(w.ok());
      sent += w.value();
    }
    b_->CloseSocket(server, conn.value());
  });

  CurrentThread bind(client);
  Result<uint64_t> conn = a_->Connect(client, b_->mac(), 4243);
  ASSERT_TRUE(conn.ok());
  uint64_t received = 0;
  uint64_t errors = 0;
  char buf[8192];
  for (;;) {
    Result<uint64_t> n = a_->Recv(client, conn.value(), buf, sizeof(buf), 10000);
    ASSERT_TRUE(n.ok());
    if (n.value() == 0) {
      break;
    }
    for (uint64_t i = 0; i < n.value(); ++i) {
      if (static_cast<uint8_t>(buf[i]) != static_cast<uint8_t>((received + i) % 251)) {
        ++errors;
      }
    }
    received += n.value();
  }
  srv.join();
  EXPECT_EQ(received, kTotal);
  EXPECT_EQ(errors, 0u);
}

// After EOF the socket stays at EOF (no phantom data), and sending on a
// locally closed socket fails.
TEST_F(NetCloseTest, EofIsStickyAndLocalCloseStopsSends) {
  ObjectId server = MakeClient(b_.get(), "server");
  ObjectId client = MakeClient(a_.get(), "client");

  Result<uint64_t> ls = b_->Listen(server, 4244);
  ASSERT_TRUE(ls.ok());
  std::thread srv([&]() {
    CurrentThread bind(server);
    Result<uint64_t> conn = b_->Accept(server, ls.value(), 5000);
    ASSERT_TRUE(conn.ok());
    b_->Send(server, conn.value(), "bye", 3);
    b_->CloseSocket(server, conn.value());
  });

  CurrentThread bind(client);
  Result<uint64_t> conn = a_->Connect(client, b_->mac(), 4244);
  ASSERT_TRUE(conn.ok());
  char buf[16];
  Result<uint64_t> n = a_->Recv(client, conn.value(), buf, sizeof(buf), 5000);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 3u);
  for (int i = 0; i < 3; ++i) {
    Result<uint64_t> eof = a_->Recv(client, conn.value(), buf, sizeof(buf), 1000);
    ASSERT_TRUE(eof.ok());
    EXPECT_EQ(eof.value(), 0u);
  }
  srv.join();
  ASSERT_EQ(a_->CloseSocket(client, conn.value()), Status::kOk);
  Result<uint64_t> w = a_->Send(client, conn.value(), "x", 1);
  EXPECT_FALSE(w.ok());
}

}  // namespace
}  // namespace histar
