// Authentication tests (paper §6.2, Figures 8–10): the full login protocol,
// the one-bit leak property, retry bounding, and the defenses the paper
// walks through.
#include "src/auth/auth.h"

#include <gtest/gtest.h>

namespace histar {
namespace {

class AuthTest : public ::testing::Test {
 protected:
  void SetUp() override {
    kernel_ = std::make_unique<Kernel>();
    world_ = UnixWorld::Boot(kernel_.get());
    ASSERT_NE(world_, nullptr);
    CurrentThread::Set(world_->init_thread());
    log_ = LogService::Start(world_.get());
    ASSERT_NE(log_, nullptr);
    auth_ = AuthSystem::Start(world_.get(), log_.get());
    ASSERT_NE(auth_, nullptr);
    Result<UnixUser> bob = auth_->AddUser("bob", "hunter2");
    ASSERT_TRUE(bob.ok()) << StatusName(bob.status());
    bob_ = bob.value();
  }
  void TearDown() override { CurrentThread::Set(kInvalidObject); }

  // A fresh unprivileged login thread (an sshd instance, say).
  ObjectId MakeLoginThread(const std::string& name = "login") {
    return kernel_->BootstrapThread(Label(), Label(Level::k2), name);
  }

  std::unique_ptr<Kernel> kernel_;
  std::unique_ptr<UnixWorld> world_;
  std::unique_ptr<LogService> log_;
  std::unique_ptr<AuthSystem> auth_;
  UnixUser bob_;
};

TEST_F(AuthTest, CorrectPasswordGrantsUserCategories) {
  ObjectId login = MakeLoginThread();
  CurrentThread bind(login);
  Result<LoginResult> r = auth_->Login(login, "bob", "hunter2");
  ASSERT_TRUE(r.ok()) << StatusName(r.status());
  EXPECT_TRUE(r.value().authenticated);
  Label l = kernel_->sys_self_get_label(login).value();
  EXPECT_EQ(l.get(bob_.ur), Level::kStar);
  EXPECT_EQ(l.get(bob_.uw), Level::kStar);
  // With the grant, bob's files open up.
  Result<ObjectId> f = world_->fs().Create(login, bob_.home, "diary", bob_.FileLabel());
  ASSERT_TRUE(f.ok()) << StatusName(f.status());
  const char msg[] = "dear diary";
  EXPECT_EQ(world_->fs().WriteAt(login, bob_.home, f.value(), msg, 0, sizeof(msg)),
            Status::kOk);
}

TEST_F(AuthTest, WrongPasswordGrantsNothing) {
  ObjectId login = MakeLoginThread();
  CurrentThread bind(login);
  Result<LoginResult> r = auth_->Login(login, "bob", "wrong-guess");
  ASSERT_TRUE(r.ok()) << StatusName(r.status());
  EXPECT_FALSE(r.value().authenticated);
  Label l = kernel_->sys_self_get_label(login).value();
  EXPECT_NE(l.get(bob_.ur), Level::kStar);
  EXPECT_NE(l.get(bob_.uw), Level::kStar);
  // Bob's home stays sealed.
  char buf[8];
  Result<std::vector<std::pair<std::string, ObjectId>>> list =
      world_->fs().ReadDir(login, bob_.home);
  EXPECT_FALSE(list.ok());
  (void)buf;
}

TEST_F(AuthTest, UnknownUserFailsCleanly) {
  ObjectId login = MakeLoginThread();
  CurrentThread bind(login);
  Result<LoginResult> r = auth_->Login(login, "mallory", "whatever");
  EXPECT_FALSE(r.ok());
}

TEST_F(AuthTest, LoginIsRepeatable) {
  // The protocol must not wedge the thread's label: failed then successful
  // logins on the same thread.
  ObjectId login = MakeLoginThread();
  CurrentThread bind(login);
  Result<LoginResult> bad = auth_->Login(login, "bob", "nope");
  ASSERT_TRUE(bad.ok());
  EXPECT_FALSE(bad.value().authenticated);
  Result<LoginResult> good = auth_->Login(login, "bob", "hunter2");
  ASSERT_TRUE(good.ok()) << StatusName(good.status());
  EXPECT_TRUE(good.value().authenticated);
}

TEST_F(AuthTest, BothAttemptsAndSuccessesAreLogged) {
  ObjectId login = MakeLoginThread();
  CurrentThread bind(login);
  ASSERT_TRUE(auth_->Login(login, "bob", "bad").ok());
  ASSERT_TRUE(auth_->Login(login, "bob", "hunter2").ok());
  std::vector<std::string> lines = log_->Lines();
  int attempts = 0;
  int successes = 0;
  for (const std::string& l : lines) {
    attempts += l.find("attempt: bob") != std::string::npos ? 1 : 0;
    successes += l.find("success: bob") != std::string::npos ? 1 : 0;
  }
  EXPECT_EQ(attempts, 2);
  EXPECT_EQ(successes, 1);  // the failed try logged an attempt, no success
}

TEST_F(AuthTest, MultipleUsersAreIndependent) {
  Result<UnixUser> alice = auth_->AddUser("alice", "xyzzy");
  ASSERT_TRUE(alice.ok());
  ObjectId login = MakeLoginThread();
  CurrentThread bind(login);
  Result<LoginResult> r = auth_->Login(login, "alice", "xyzzy");
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r.value().authenticated);
  Label l = kernel_->sys_self_get_label(login).value();
  EXPECT_EQ(l.get(alice.value().ur), Level::kStar);
  // Alice's login grants nothing of bob's.
  EXPECT_NE(l.get(bob_.ur), Level::kStar);
  EXPECT_NE(l.get(bob_.uw), Level::kStar);
}

TEST_F(AuthTest, PasswordHashUnreadableWithoutUserCategories) {
  // Even knowing where the hash lives, a login client cannot read it: the
  // segment is {ur3, uw0, 1} (§6.2: a compromised service reveals at most
  // the hash; an unauthenticated client sees nothing at all).
  ObjectId login = MakeLoginThread();
  CurrentThread bind(login);
  Result<ContainerEntry> setup = auth_->LookupSetupGate(login, "bob");
  ASSERT_TRUE(setup.ok());
  // Scan the auth container for segments; every read must fail.
  Result<std::vector<ObjectId>> kids = kernel_->sys_container_list(login,
                                                                   setup.value().container);
  ASSERT_TRUE(kids.ok());
  int segments_seen = 0;
  for (ObjectId id : kids.value()) {
    ContainerEntry ce{setup.value().container, id};
    Result<ObjectType> type = kernel_->sys_obj_get_type(login, ce);
    if (type.ok() && type.value() == ObjectType::kSegment) {
      ++segments_seen;
      char buf[8];
      EXPECT_EQ(kernel_->sys_segment_read(login, ce, buf, 0, 8), Status::kLabelCheckFailed);
    }
  }
  EXPECT_GT(segments_seen, 0);
}

TEST_F(AuthTest, RetryCountBoundsGuessing) {
  // §6.2: the retry-count segment bounds password guesses per logged setup
  // invocation. Guessing wrong more than the limit makes even the *right*
  // password fail within that session — but our Login() makes a session per
  // call, so emulate a guessing attacker by repeated fast failures and then
  // verify the per-session ceiling via the public limit.
  EXPECT_EQ(auth_->retry_limit(), 5);
  ObjectId login = MakeLoginThread();
  CurrentThread bind(login);
  for (int i = 0; i < 7; ++i) {
    Result<LoginResult> r = auth_->Login(login, "bob", "guess" + std::to_string(i));
    ASSERT_TRUE(r.ok());
    EXPECT_FALSE(r.value().authenticated);
  }
  // Every attempt was individually logged — the attacker cannot guess
  // without leaving an audit trail.
  int attempts = 0;
  for (const std::string& l : log_->Lines()) {
    attempts += l.find("attempt: bob") != std::string::npos ? 1 : 0;
  }
  EXPECT_EQ(attempts, 7);
}

TEST_F(AuthTest, TaintedThreadCannotAppendToLog) {
  // The check gate cannot talk to the logger (§6.2): any pir3-ish taint is
  // stopped by the log gate's {2} clearance.
  Result<CategoryId> t = kernel_->sys_cat_create(world_->init_thread());
  ASSERT_TRUE(t.ok());
  Label tl(Level::k1, {{t.value(), Level::k3}});
  Label tc(Level::k2, {{t.value(), Level::k3}});
  ObjectId tainted = kernel_->BootstrapThread(tl, tc, "tainted");
  CurrentThread bind(tainted);
  EXPECT_NE(log_->Append(tainted, "I can see the password"), Status::kOk);
}

TEST_F(AuthTest, LogIsAppendOnlyViaGate) {
  ObjectId login = MakeLoginThread();
  CurrentThread bind(login);
  ASSERT_EQ(log_->Append(login, "hello log"), Status::kOk);
  std::vector<std::string> lines = log_->Lines();
  ASSERT_FALSE(lines.empty());
  EXPECT_EQ(lines.back(), "hello log");
}

}  // namespace
}  // namespace histar
