// TSan-raced stress for the PR 6 lock-free read path: reader threads issue
// lock-free batch reads (resolve → type/label/quota/len, container list/has,
// registry Leq under the hood) while mutator threads create, resize, link,
// unlink, and destroy the very objects being read — forcing published-index
// grows, link-snapshot republishes, and memo-table retirements to race real
// epoch-pinned readers. The assertions pin "allowed status, sane value";
// TSan pins the memory-ordering protocol; ASan pins the reclamation.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/core/epoch.h"
#include "src/core/trace.h"
#include "tests/kernel/kernel_test_util.h"

namespace histar {
namespace {

class EpochStressTest : public KernelTest {};

// Readers hammer the lock-free batch path against segment create/destroy
// churn in the same container. Every read must come back kOk (object still
// there), kNotFound (already destroyed), or kCancelled-free plain statuses —
// never garbage, never a crash.
TEST_F(EpochStressTest, LockFreeReadsRaceCreateDestroy) {
  const ObjectId ct = MakeContainer(Label(Level::k1), kInvalidObject, 8 << 20);
  ASSERT_NE(ct, kInvalidObject);

  constexpr int kSlots = 8;
  std::atomic<ObjectId> live[kSlots];
  for (auto& s : live) {
    s.store(kInvalidObject, std::memory_order_relaxed);
  }
  std::atomic<bool> stop{false};

  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&, r] {
      ObjectId self = kernel_->BootstrapThread(Label(Level::k1), Label(Level::k2), "reader");
      ASSERT_NE(self, kInvalidObject);
      uint64_t rng = 0x9e3779b97f4a7c15ULL + static_cast<uint64_t>(r);
      while (!stop.load(std::memory_order_acquire)) {
        rng = rng * 6364136223846793005ULL + 1442695040888963407ULL;
        ObjectId id = live[(rng >> 33) % kSlots].load(std::memory_order_acquire);
        if (id == kInvalidObject) {
          continue;
        }
        ContainerEntry ce{ct, id};
        // A homogeneous lock-free group: type, quota, len, and the
        // container-has probe all run with zero TableLocks (PR 6).
        SyscallReq reqs[4] = {ObjGetTypeReq{ce}, ObjGetQuotaReq{ce},
                              SegmentGetLenReq{ce}, ContainerHasReq{ct, id}};
        SyscallRes res[4];
        ASSERT_EQ(kernel_->SubmitBatch(self, reqs, res), Status::kOk);
        Status st = ResStatus(res[2]);
        ASSERT_TRUE(st == Status::kOk || st == Status::kNotFound)
            << StatusName(st);
        if (st == Status::kOk) {
          uint64_t len = std::get<SegmentGetLenRes>(res[2]).len;
          ASSERT_TRUE(len == 64 || len == 4096) << len;
        }
      }
    });
  }

  std::vector<std::thread> mutators;
  for (int w = 0; w < 2; ++w) {
    mutators.emplace_back([&, w] {
      ObjectId self = kernel_->BootstrapThread(Label(Level::k1), Label(Level::k2), "mutator");
      ASSERT_NE(self, kInvalidObject);
      for (int i = 0; i < 400; ++i) {
        int slot = (w * kSlots / 2) + (i % (kSlots / 2));
        ObjectId old = live[slot].load(std::memory_order_relaxed);
        if (old != kInvalidObject) {
          live[slot].store(kInvalidObject, std::memory_order_release);
          kernel_->sys_container_unref(self, ContainerEntry{ct, old});
        }
        CreateSpec spec;
        spec.container = ct;
        spec.label = Label(Level::k1);
        spec.descrip = "churn";
        spec.quota = kObjectOverheadBytes + 8192 + kPageSize;
        Result<ObjectId> sr = kernel_->sys_segment_create(self, spec, 64);
        ASSERT_TRUE(sr.ok()) << StatusName(sr.status());
        // Flip the published length between the two values readers accept.
        if (i % 2 == 0) {
          kernel_->sys_segment_resize(self, ContainerEntry{ct, sr.value()}, 4096);
        }
        live[slot].store(sr.value(), std::memory_order_release);
      }
    });
  }

  for (auto& t : mutators) {
    t.join();
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) {
    t.join();
  }
  EpochDomain::Global().DrainAll();
}

// Container list/has readers race link/unlink on one container: snapshot
// republishing must hand every reader a consistent (possibly stale) link
// vector, never a mid-mutation view.
TEST_F(EpochStressTest, ContainerSnapshotsRaceLinkUnlink) {
  const ObjectId ct = MakeContainer(Label(Level::k1), kInvalidObject, 8 << 20);
  const ObjectId seg = MakeSegment(Label(Level::k1), 64);
  ASSERT_EQ(kernel_->sys_obj_set_fixed_quota(init_, RootEntry(seg)), Status::kOk);

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      ObjectId self = kernel_->BootstrapThread(Label(Level::k1), Label(Level::k2), "lister");
      ASSERT_NE(self, kInvalidObject);
      while (!stop.load(std::memory_order_acquire)) {
        Result<std::vector<ObjectId>> ls = kernel_->sys_container_list(self, ct);
        ASSERT_TRUE(ls.ok()) << StatusName(ls.status());
        // The only link this container ever holds is `seg`.
        ASSERT_LE(ls.value().size(), 1u);
        if (!ls.value().empty()) {
          ASSERT_EQ(ls.value()[0], seg);
        }
        Result<bool> has = kernel_->sys_container_has(self, ct, seg);
        ASSERT_TRUE(has.ok()) << StatusName(has.status());
      }
    });
  }

  std::thread linker([&] {
    ObjectId self = kernel_->BootstrapThread(Label(Level::k1), Label(Level::k2), "linker");
    ASSERT_NE(self, kInvalidObject);
    for (int i = 0; i < 500; ++i) {
      ASSERT_EQ(kernel_->sys_container_link(self, ct, RootEntry(seg)), Status::kOk);
      ASSERT_EQ(kernel_->sys_container_unref(self, ContainerEntry{ct, seg}), Status::kOk);
    }
  });

  linker.join();
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) {
    t.join();
  }
  EpochDomain::Global().DrainAll();
}

// Registry readers (memoized Leq behind every CanObserve) race Intern-driven
// memo growth: threads hammer label checks over a widening set of labels so
// memo tables resize and retire while other threads probe them.
TEST_F(EpochStressTest, RegistryLeqRacesInternAndMemoGrowth) {
  std::atomic<bool> stop{false};
  LabelRegistry& reg = kernel_->label_registry();

  // Distinct single-category labels; Leq across them exercises fresh memo
  // pairs, forcing inserts and eventually table growth.
  std::vector<LabelId> ids;
  for (int i = 0; i < 16; ++i) {
    Label l(Level::k1);
    l.set(static_cast<CategoryId>(1000 + i), Level::k0);
    ids.push_back(reg.Intern(l));
  }

  std::vector<std::thread> probers;
  for (int r = 0; r < 2; ++r) {
    probers.emplace_back([&, r] {
      uint64_t rng = 77 + static_cast<uint64_t>(r);
      while (!stop.load(std::memory_order_acquire)) {
        rng = rng * 6364136223846793005ULL + 1442695040888963407ULL;
        LabelId a = ids[(rng >> 13) % ids.size()];
        LabelId b = ids[(rng >> 43) % ids.size()];
        // Deterministic ground truth: distinct ids here differ in some
        // category pinned at 0 vs default 1, so a ⊑ b iff a == b.
        ASSERT_EQ(reg.Leq(a, b), a == b);
      }
    });
  }

  std::thread interner([&] {
    for (int i = 0; i < 800; ++i) {
      Label l(Level::k1);
      l.set(static_cast<CategoryId>(5000 + i), Level::k3);
      LabelId id = reg.Intern(l);
      // Fresh pairs against the probe set grow the memo tables (and the
      // chunked entry storage) while probers are reading them.
      reg.Leq(id, ids[i % ids.size()]);
      reg.Join(id, ids[(i + 1) % ids.size()]);
    }
  });

  interner.join();
  stop.store(true, std::memory_order_release);
  for (auto& t : probers) {
    t.join();
  }
  EpochDomain::Global().DrainAll();
}

// The flight recorder under the same races (PR 10): writer threads issue
// real syscalls — every one records events into its slot ring and feeds
// the latency histograms — while reader threads continuously snapshot the
// rings, sum histograms, and run the flow-checked sys_trace_read. TSan
// pins the single-writer/racing-reader word protocol; the assertions pin
// "never torn": every event delivered has a decodable kind and the
// accounting never under-counts (total >= withheld + delivered, with
// equality whenever the read cap doesn't truncate).
TEST_F(EpochStressTest, TraceSnapshotsRaceRecordingWriters) {
  const ObjectId ct = MakeContainer(Label(Level::k1), kInvalidObject, 8 << 20);
  const ObjectId seg = MakeSegment(Label(Level::k1), 64, ct);
  std::atomic<bool> stop{false};

  std::vector<std::thread> writers;
  for (int w = 0; w < 2; ++w) {
    writers.emplace_back([&] {
      ObjectId self =
          kernel_->BootstrapThread(Label(Level::k1), Label(Level::k2), "tracer");
      ASSERT_NE(self, kInvalidObject);
      ContainerEntry ce{ct, seg};
      for (int i = 0; i < 600; ++i) {
        SyscallReq reqs[3] = {ObjGetTypeReq{ce}, SegmentGetLenReq{ce},
                              ObjGetQuotaReq{ce}};
        SyscallRes res[3];
        ASSERT_EQ(kernel_->SubmitBatch(self, reqs, res), Status::kOk);
      }
    });
  }

  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      ObjectId self =
          kernel_->BootstrapThread(Label(Level::k1), Label(Level::k2), "observer");
      ASSERT_NE(self, kInvalidObject);
      while (!stop.load(std::memory_order_acquire)) {
        std::vector<trace::SlotEvent> snap;
        trace::Snapshot(&snap, 128);
        for (const trace::SlotEvent& se : snap) {
          ASSERT_LT(se.event.kind, trace::kNumEventKinds);
          ASSERT_NE(se.event.dur_ns, trace::kDurPending);
        }
        uint64_t hist[trace::kHistBuckets];
        trace::SumSyscallHist(0, hist);
        TraceReadRes res = kernel_->sys_trace_read(self, 256);
        ASSERT_EQ(res.status, Status::kOk);
        ASSERT_LE(res.events.size(), 256u);
        ASSERT_GE(res.total, res.withheld + res.events.size());
        for (const TraceEventWire& e : res.events) {
          ASSERT_LT(e.kind, trace::kNumEventKinds);
        }
      }
    });
  }

  for (auto& t : writers) {
    t.join();
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) {
    t.join();
  }
  EpochDomain::Global().DrainAll();
}

}  // namespace
}  // namespace histar
