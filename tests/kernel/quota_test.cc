// The quota hierarchy (paper §3.3): usage accounting, quota_move rules, and
// the information-flow constraint on shrinking.
#include <gtest/gtest.h>

#include "tests/kernel/kernel_test_util.h"

namespace histar {
namespace {

class QuotaTest : public KernelTest {};

TEST_F(QuotaTest, CreationChargesParent) {
  ObjectId dir = MakeContainer(Label(), kInvalidObject, 20 * kPageSize);
  CreateSpec spec;
  spec.container = dir;
  spec.quota = 8 * kPageSize;
  Result<ObjectId> a = kernel_->sys_segment_create(init_, spec, 10);
  ASSERT_TRUE(a.ok());
  Result<ObjectId> b = kernel_->sys_segment_create(init_, spec, 10);
  ASSERT_TRUE(b.ok());
  // Third one exceeds 20 pages.
  Result<ObjectId> c = kernel_->sys_segment_create(init_, spec, 10);
  EXPECT_FALSE(c.ok());
  EXPECT_EQ(c.status(), Status::kQuotaExceeded);
}

TEST_F(QuotaTest, UnrefReleasesCharge) {
  ObjectId dir = MakeContainer(Label(), kInvalidObject, 20 * kPageSize);
  CreateSpec spec;
  spec.container = dir;
  spec.quota = 16 * kPageSize;
  Result<ObjectId> a = kernel_->sys_segment_create(init_, spec, 10);
  ASSERT_TRUE(a.ok());
  Result<ObjectId> b = kernel_->sys_segment_create(init_, spec, 10);
  EXPECT_FALSE(b.ok());
  ASSERT_EQ(kernel_->sys_container_unref(init_, ContainerEntry{dir, a.value()}), Status::kOk);
  Result<ObjectId> c = kernel_->sys_segment_create(init_, spec, 10);
  EXPECT_TRUE(c.ok()) << StatusName(c.status());
}

TEST_F(QuotaTest, QuotaMoveGrowsObject) {
  ObjectId dir = MakeContainer(Label(), kInvalidObject, 100 * kPageSize);
  CreateSpec spec;
  spec.container = dir;
  spec.quota = kObjectOverheadBytes + 100;
  Result<ObjectId> seg = kernel_->sys_segment_create(init_, spec, 100);
  ASSERT_TRUE(seg.ok());
  ContainerEntry ce{dir, seg.value()};
  EXPECT_EQ(kernel_->sys_segment_resize(init_, ce, 200), Status::kQuotaExceeded);
  ASSERT_EQ(kernel_->sys_quota_move(init_, dir, seg.value(), 4096), Status::kOk);
  EXPECT_EQ(kernel_->sys_segment_resize(init_, ce, 200), Status::kOk);
}

TEST_F(QuotaTest, QuotaMoveShrinkRequiresSpareBytes) {
  ObjectId dir = MakeContainer(Label(), kInvalidObject, 100 * kPageSize);
  CreateSpec spec;
  spec.container = dir;
  spec.quota = kObjectOverheadBytes + 4096;
  Result<ObjectId> seg = kernel_->sys_segment_create(init_, spec, 4096);
  ASSERT_TRUE(seg.ok());
  // No spare: shrink fails.
  EXPECT_EQ(kernel_->sys_quota_move(init_, dir, seg.value(), -100), Status::kQuotaExceeded);
  // Shrink the segment contents first, then quota can come back.
  ASSERT_EQ(kernel_->sys_segment_resize(init_, ContainerEntry{dir, seg.value()}, 0),
            Status::kOk);
  EXPECT_EQ(kernel_->sys_quota_move(init_, dir, seg.value(), -4096), Status::kOk);
}

TEST_F(QuotaTest, ShrinkRequiresObservePermission) {
  // §3.3: n < 0 requires L_O ⊑ L_T^J because the error path reveals O's
  // spare space. Build an object the mover cannot observe.
  Result<CategoryId> c = kernel_->sys_cat_create(init_);
  ASSERT_TRUE(c.ok());
  Label secret(Level::k1, {{c.value(), Level::k3}});
  ObjectId dir = MakeContainer(Label(), kInvalidObject, 100 * kPageSize);
  CreateSpec spec;
  spec.container = dir;
  spec.label = secret;
  spec.quota = 8 * kPageSize;
  Result<ObjectId> seg = kernel_->sys_segment_create(init_, spec, 16);
  ASSERT_TRUE(seg.ok()) << StatusName(seg.status());

  ObjectId plain = MakeThread(Label(), Label(Level::k2));
  // Growing doesn't observe O — but it does require L_T ⊑ L_O ⊑ C_T; the
  // plain thread has clearance {2} < c3, so even growth is out of reach.
  EXPECT_EQ(kernel_->sys_quota_move(plain, dir, seg.value(), 4096),
            Status::kLabelCheckFailed);
  // A thread with clearance covering c3 but no ownership can grow...
  Label cl(Level::k2, {{c.value(), Level::k3}});
  ObjectId cleared = MakeThread(Label(), cl);
  EXPECT_EQ(kernel_->sys_quota_move(cleared, dir, seg.value(), 4096), Status::kOk);
  // ...but not shrink (cannot observe).
  EXPECT_EQ(kernel_->sys_quota_move(cleared, dir, seg.value(), -4096),
            Status::kLabelCheckFailed);
  // The owner can shrink.
  EXPECT_EQ(kernel_->sys_quota_move(init_, dir, seg.value(), -4096), Status::kOk);
}

TEST_F(QuotaTest, QuotaMoveRequiresLinkInContainer) {
  ObjectId dir = MakeContainer(Label(), kInvalidObject, 100 * kPageSize);
  ObjectId seg = MakeSegment(Label(), 10);  // linked in root, not dir
  EXPECT_EQ(kernel_->sys_quota_move(init_, dir, seg, 4096), Status::kNotFound);
}

TEST_F(QuotaTest, InfiniteQuotaOnlyInsideInfiniteParent) {
  ObjectId dir = MakeContainer(Label(), kInvalidObject, 100 * kPageSize);
  CreateSpec spec;
  spec.container = dir;
  spec.quota = kQuotaInfinite;
  Result<ObjectId> bad = kernel_->sys_container_create(init_, spec, 0);
  EXPECT_FALSE(bad.ok());
  spec.container = kernel_->root_container();
  Result<ObjectId> good = kernel_->sys_container_create(init_, spec, 0);
  EXPECT_TRUE(good.ok()) << StatusName(good.status());
}

TEST_F(QuotaTest, ObjGetQuotaRequiresObserve) {
  Result<CategoryId> c = kernel_->sys_cat_create(init_);
  ASSERT_TRUE(c.ok());
  Label secret(Level::k1, {{c.value(), Level::k3}});
  ObjectId seg = MakeSegment(secret, 10);
  ObjectId plain = MakeThread(Label(), Label(Level::k2));
  EXPECT_FALSE(kernel_->sys_obj_get_quota(plain, RootEntry(seg)).ok());
  EXPECT_TRUE(kernel_->sys_obj_get_quota(init_, RootEntry(seg)).ok());
}

TEST_F(QuotaTest, NestedContainersAccumulateCharges) {
  ObjectId outer = MakeContainer(Label(), kInvalidObject, 64 * kPageSize);
  // Inner container takes 32 pages of outer's quota.
  ObjectId inner = MakeContainer(Label(), outer, 32 * kPageSize);
  // Outer now has < 32 pages free: another 32-page container fails.
  CreateSpec spec;
  spec.container = outer;
  spec.quota = 32 * kPageSize;
  Result<ObjectId> bad = kernel_->sys_container_create(init_, spec, 0);
  EXPECT_FALSE(bad.ok());
  // Inner can host objects up to its own quota.
  ObjectId seg = MakeSegment(Label(), 100, inner);
  EXPECT_NE(seg, kInvalidObject);
}

}  // namespace
}  // namespace histar
