// Concurrent syscall stress over the sharded object table (PR 2).
//
// Host threads hammer the three classes of table access concurrently:
// read-mostly resolves (shared shard locks), targeted mutation (exclusive
// shard locks), and cross-shard destruction (all-shards exclusive). The
// patterns are TSan-friendly — bounded iterations, no sleeps in the hot
// loops, every cross-thread handoff through kernel syscalls — and the CI
// ThreadSanitizer job runs exactly this binary to race future lock changes.
// Invariants checked at the end are the same ones cross_shard_test.cc pins
// deterministically: nothing lost, nothing leaked, quotas balanced.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "src/kernel/kernel.h"

namespace histar {
namespace {

struct StressWorld {
  Kernel kernel;
  ObjectId init;
  std::vector<ObjectId> workers;

  explicit StressWorld(int nworkers, size_t shards = ObjectTable::kDefaultShardCount)
      : kernel(shards) {
    init = kernel.BootstrapThread(Label(Level::k1), Label(Level::k2), "init");
    for (int i = 0; i < nworkers; ++i) {
      workers.push_back(kernel.BootstrapThread(Label(Level::k1), Label(Level::k2),
                                               "w" + std::to_string(i)));
    }
  }
};

ObjectId MustSegment(Kernel* k, ObjectId self, ObjectId parent, uint64_t len) {
  CreateSpec spec;
  spec.container = parent;
  spec.label = Label(Level::k1);
  spec.descrip = "stress-seg";
  spec.quota = kObjectOverheadBytes + len + kPageSize;
  Result<ObjectId> r = k->sys_segment_create(self, spec, len);
  EXPECT_TRUE(r.ok()) << StatusName(r.status());
  return r.ok() ? r.value() : kInvalidObject;
}

// Readers resolve shared segments while writers create/write/unref private
// subtrees: the exact mixed workload the shard split is for.
TEST(ObjectTableStress, ConcurrentResolveCreateUnref) {
  constexpr int kThreads = 4;
  constexpr int kIters = 400;
  StressWorld w(kThreads);
  Kernel* k = &w.kernel;
  ObjectId root = k->root_container();

  // A pool of shared read-only segments spread across shards.
  std::vector<ObjectId> shared;
  for (int i = 0; i < 32; ++i) {
    shared.push_back(MustSegment(k, w.init, root, 64));
  }
  size_t baseline = k->ObjectCount();

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int ti = 0; ti < kThreads; ++ti) {
    threads.emplace_back([&, ti] {
      ObjectId self = w.workers[ti];
      uint64_t x = 0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(ti + 1);
      uint64_t buf = 0;
      for (int i = 0; i < kIters; ++i) {
        x = x * 6364136223846793005ULL + 1442695040888963407ULL;
        // Read a random shared segment (shared shard locks).
        ObjectId seg = shared[(x >> 16) % shared.size()];
        if (k->sys_segment_read(self, ContainerEntry{root, seg}, &buf, 0, 8) !=
            Status::kOk) {
          ++failures;
        }
        // Create a private container + segment, write, unref the subtree
        // (exclusive locks, then the all-shards destroy path).
        CreateSpec cs;
        cs.container = root;
        cs.label = Label(Level::k1);
        cs.descrip = "stress-ctr";
        cs.quota = 64 * kPageSize;
        Result<ObjectId> c = k->sys_container_create(self, cs, 0);
        if (!c.ok()) {
          ++failures;
          continue;
        }
        ObjectId s = MustSegment(k, self, c.value(), 128);
        if (s == kInvalidObject ||
            k->sys_segment_write(self, ContainerEntry{c.value(), s}, &x, 0, 8) !=
                Status::kOk) {
          ++failures;
        }
        if (k->sys_container_unref(self, ContainerEntry{root, c.value()}) != Status::kOk) {
          ++failures;
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(failures.load(), 0);
  // Every private subtree reclaimed; the shared pool intact.
  EXPECT_EQ(k->ObjectCount(), baseline);
  for (ObjectId seg : shared) {
    EXPECT_TRUE(k->ObjectExists(seg));
  }
}

// All threads mutate the SAME container (maximum exclusive-lock contention
// on one shard) while others read it: link-count and usage bookkeeping must
// come out exact.
TEST(ObjectTableStress, SingleContainerContention) {
  constexpr int kThreads = 4;
  constexpr int kIters = 250;
  StressWorld w(kThreads);
  Kernel* k = &w.kernel;

  CreateSpec cs;
  cs.container = k->root_container();
  cs.label = Label(Level::k1);
  cs.descrip = "arena";
  cs.quota = 16 << 20;
  Result<ObjectId> arena = k->sys_container_create(w.init, cs, 0);
  ASSERT_TRUE(arena.ok());
  size_t baseline = k->ObjectCount();

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int ti = 0; ti < kThreads; ++ti) {
    threads.emplace_back([&, ti] {
      ObjectId self = w.workers[ti];
      for (int i = 0; i < kIters; ++i) {
        ObjectId s = MustSegment(k, self, arena.value(), 64);
        if (s == kInvalidObject) {
          ++failures;
          continue;
        }
        Result<std::vector<ObjectId>> ls = k->sys_container_list(self, arena.value());
        if (!ls.ok()) {
          ++failures;
        }
        if (k->sys_container_unref(self, ContainerEntry{arena.value(), s}) != Status::kOk) {
          ++failures;
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(k->ObjectCount(), baseline);
  // The arena's links are empty again and its quota pool is whole: a
  // segment sized near the full arena must fit.
  Result<std::vector<ObjectId>> ls = k->sys_container_list(w.init, arena.value());
  ASSERT_TRUE(ls.ok());
  EXPECT_TRUE(ls.value().empty());
  CreateSpec big;
  big.container = arena.value();
  big.label = Label(Level::k1);
  big.descrip = "big";
  big.quota = (16 << 20) - 64 * kPageSize;
  Result<ObjectId> fit = k->sys_segment_create(w.init, big, kPageSize);
  EXPECT_TRUE(fit.ok()) << StatusName(fit.status());
}

// Thread relabeling (exclusive on the thread's shard) racing against other
// threads observing it (shared on the same shard): label reads must never
// tear — every observed label is one the thread actually held.
TEST(ObjectTableStress, RelabelVsObserve) {
  constexpr int kIters = 300;
  StressWorld w(2);
  Kernel* k = &w.kernel;
  ObjectId relabeler = w.workers[0];
  ObjectId observer = w.workers[1];

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::thread obs([&] {
    ContainerEntry ce{k->root_container(), relabeler};
    while (!stop.load(std::memory_order_relaxed)) {
      Result<Label> l = k->sys_obj_get_label(observer, ce);
      // kLabelCheckFailed is legal once the relabeler taints itself above
      // the observer; any other failure is a bug.
      if (!l.ok() && l.status() != Status::kLabelCheckFailed) {
        ++failures;
      }
    }
  });
  for (int i = 0; i < kIters; ++i) {
    Result<CategoryId> c = k->sys_cat_create(relabeler);
    if (!c.ok()) {
      ++failures;
      break;
    }
    // Drop ownership again (label with the category back at default): keeps
    // the label churn going without growing without bound.
    Result<Label> cur = k->sys_self_get_label(relabeler);
    if (!cur.ok()) {
      ++failures;
      break;
    }
    Label next = cur.value();
    next.set(c.value(), Level::k1);  // drop ownership: ⋆ → default 1
    if (k->sys_self_set_label(relabeler, next) != Status::kOk) {
      ++failures;
      break;
    }
  }
  stop.store(true);
  obs.join();
  EXPECT_EQ(failures.load(), 0);
}

// Futex wait/wake across the split futex_mu_ / shard-lock design: every
// protocol round must complete (no lost wakeups) even though the waiter's
// word read and its sleep are no longer under one kernel-wide lock.
TEST(ObjectTableStress, FutexHandoffNoLostWakeups) {
  constexpr int kRounds = 60;
  StressWorld w(2);
  Kernel* k = &w.kernel;
  ObjectId root = k->root_container();
  ObjectId seg = MustSegment(k, w.init, root, 64);
  ContainerEntry ce{root, seg};

  std::atomic<int> failures{0};
  for (int round = 0; round < kRounds; ++round) {
    uint64_t zero = 0;
    ASSERT_EQ(k->sys_segment_write(w.init, ce, &zero, 0, 8), Status::kOk);
    std::thread waiter([&] {
      // kOk (woken) and kAgain (saw the new value before sleeping) are both
      // successful outcomes; kTimedOut means a wakeup was lost.
      Status st = k->sys_futex_wait(w.workers[0], ce, 0, 0, 5000);
      if (st != Status::kOk && st != Status::kAgain) {
        ++failures;
      }
    });
    uint64_t one = 1;
    if (k->sys_segment_write(w.workers[1], ce, &one, 0, 8) != Status::kOk) {
      ++failures;
    }
    // One wake after the write is enough in every interleaving: a waiter
    // that registered before the wake consumes the budget token; one that
    // registers after re-reads the word (now 1) and returns kAgain. A lost
    // wakeup would surface as kTimedOut above.
    Result<uint32_t> n = k->sys_futex_wake(w.workers[1], ce, 0, 1);
    if (!n.ok()) {
      ++failures;
    }
    waiter.join();
  }
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace histar
