// Cross-shard invariants of the sharded object table (PR 2).
//
// The object table hashes ids into shards (src/kernel/object_table.h), so a
// container and the objects it links routinely live in different shards.
// These tests pin the invariants that the ascending-order lock discipline
// must preserve across shard boundaries: no object is lost or leaked by
// create/unref when parent and child hash apart, recursive destroy reaches
// every shard, and quota moves stay balanced when D and O are in different
// shards. All deterministic (single-threaded); the concurrent analogue is
// objtable_stress_test.cc.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "src/kernel/object_table.h"
#include "tests/kernel/kernel_test_util.h"

namespace histar {
namespace {

class CrossShardTest : public KernelTest {
 protected:
  size_t ShardOf(ObjectId id) const { return kernel_->object_table().ShardOf(id); }

  // Creates containers under `parent` until one lands in a different shard
  // than `anchor`. Ids come out of a counter-backed cipher, so a handful of
  // allocations is always enough to change shards.
  ObjectId MakeContainerInOtherShard(ObjectId anchor, ObjectId parent,
                                     uint64_t quota = 32 * kPageSize) {
    for (int i = 0; i < 64; ++i) {
      ObjectId c = MakeContainer(Label(Level::k1), parent, quota);
      if (ShardOf(c) != ShardOf(anchor)) {
        return c;
      }
      // Same shard: keep it (it participates in the tree) and try again.
    }
    ADD_FAILURE() << "could not place a container in a different shard";
    return kInvalidObject;
  }
};

TEST_F(CrossShardTest, ShardPlacementIsDeterministicAndSpreads) {
  const size_t shards = kernel_->object_table().shard_count();
  EXPECT_GE(shards, 2u);
  // Pure function of (id, count)...
  EXPECT_EQ(ObjectTable::ShardIndexFor(12345, shards),
            ObjectTable::ShardIndexFor(12345, shards));
  // ...and sequential ids do not pile into one shard.
  std::set<size_t> seen;
  for (ObjectId id = 1; id <= 64; ++id) {
    seen.insert(ObjectTable::ShardIndexFor(id, shards));
  }
  EXPECT_GT(seen.size(), 1u);
}

TEST_F(CrossShardTest, ParentAndChildInDifferentShardsSurviveUnref) {
  size_t before = kernel_->ObjectCount();
  ObjectId parent = MakeContainer(Label(Level::k1), kInvalidObject, 16 << 20);
  ObjectId child = MakeContainerInOtherShard(parent, parent);
  ASSERT_NE(child, kInvalidObject);
  ASSERT_NE(ShardOf(parent), ShardOf(child));

  // Both exist and the link graph agrees, across the shard boundary.
  EXPECT_TRUE(kernel_->ObjectExists(parent));
  EXPECT_TRUE(kernel_->ObjectExists(child));
  Result<bool> has = kernel_->sys_container_has(init_, parent, child);
  ASSERT_TRUE(has.ok());
  EXPECT_TRUE(has.value());

  // Unref the parent from the root: the recursive destroy must cross into
  // the child's shard and reclaim everything — no lost objects.
  ASSERT_EQ(kernel_->sys_container_unref(init_, RootEntry(parent)), Status::kOk);
  EXPECT_FALSE(kernel_->ObjectExists(parent));
  EXPECT_FALSE(kernel_->ObjectExists(child));
  EXPECT_EQ(kernel_->ObjectCount(), before);
}

TEST_F(CrossShardTest, RecursiveDestroyReachesEveryShard) {
  size_t before = kernel_->ObjectCount();
  ObjectId top = MakeContainer(Label(Level::k1), kInvalidObject, 64 << 20);
  // A two-level tree wide enough that the children cover every shard: keep
  // growing until they do (ids are deterministic, so this converges fast).
  std::vector<ObjectId> all;
  std::set<size_t> shards_hit;
  for (int i = 0; i < 256 && shards_hit.size() < kernel_->object_table().shard_count();
       ++i) {
    ObjectId c = MakeContainer(Label(Level::k1), top, 32 * kPageSize);
    ObjectId s = MakeSegment(Label(Level::k1), 128, c);
    all.push_back(c);
    all.push_back(s);
    shards_hit.insert(ShardOf(c));
    shards_hit.insert(ShardOf(s));
  }
  EXPECT_EQ(shards_hit.size(), kernel_->object_table().shard_count());
  ASSERT_EQ(kernel_->sys_container_unref(init_, RootEntry(top)), Status::kOk);
  for (ObjectId id : all) {
    EXPECT_FALSE(kernel_->ObjectExists(id)) << id;
  }
  EXPECT_EQ(kernel_->ObjectCount(), before);
}

TEST_F(CrossShardTest, QuotaMoveAcrossShardsStaysBalanced) {
  ObjectId d = MakeContainer(Label(Level::k1), kInvalidObject, 1 << 20);
  ObjectId o = MakeContainerInOtherShard(d, d);
  ASSERT_NE(o, kInvalidObject);
  ASSERT_NE(ShardOf(d), ShardOf(o));

  auto quota_of = [&](ObjectId dd, ObjectId oo) {
    Result<uint64_t> q = kernel_->sys_obj_get_quota(init_, ContainerEntry{dd, oo});
    EXPECT_TRUE(q.ok()) << StatusName(q.status());
    return q.ok() ? q.value() : 0;
  };
  uint64_t o_before = quota_of(d, o);
  uint64_t d_before = quota_of(kernel_->root_container(), d);

  // Grow O from D's pool, across the shard boundary...
  ASSERT_EQ(kernel_->sys_quota_move(init_, d, o, 4 * kPageSize), Status::kOk);
  EXPECT_EQ(quota_of(d, o), o_before + 4 * kPageSize);
  // ...then shrink it back. D's own quota never changes (only its usage),
  // and O ends exactly where it started: nothing leaked between shards.
  ASSERT_EQ(kernel_->sys_quota_move(init_, d, o, -static_cast<int64_t>(4 * kPageSize)),
            Status::kOk);
  EXPECT_EQ(quota_of(d, o), o_before);
  EXPECT_EQ(quota_of(kernel_->root_container(), d), d_before);

  // The freed headroom is genuinely reusable: a segment sized to D's free
  // space must still fit after the round trip.
  ObjectId s = MakeSegment(Label(Level::k1), 256, d);
  EXPECT_TRUE(kernel_->ObjectExists(s));
}

TEST_F(CrossShardTest, CrossShardLinkKeepsObjectAliveAfterFirstUnref) {
  ObjectId c1 = MakeContainer(Label(Level::k1));
  ObjectId c2 = MakeContainerInOtherShard(c1, kernel_->root_container());
  // (The shard search may leave same-shard siblings in the root; count from
  // here so the final balance check is exact.)
  size_t before = kernel_->ObjectCount();
  ObjectId s = MakeSegment(Label(Level::k1), 64, c1);
  ASSERT_EQ(kernel_->sys_obj_set_fixed_quota(init_, ContainerEntry{c1, s}), Status::kOk);
  ASSERT_EQ(kernel_->sys_container_link(init_, c2, ContainerEntry{c1, s}), Status::kOk);

  // Dropping the first link must not destroy the object: the second link
  // lives in another shard's container.
  ASSERT_EQ(kernel_->sys_container_unref(init_, ContainerEntry{c1, s}), Status::kOk);
  EXPECT_TRUE(kernel_->ObjectExists(s));
  Result<bool> has = kernel_->sys_container_has(init_, c2, s);
  ASSERT_TRUE(has.ok());
  EXPECT_TRUE(has.value());

  ASSERT_EQ(kernel_->sys_container_unref(init_, ContainerEntry{c2, s}), Status::kOk);
  EXPECT_FALSE(kernel_->ObjectExists(s));
  EXPECT_EQ(kernel_->ObjectCount(), before);
}

}  // namespace
}  // namespace histar
