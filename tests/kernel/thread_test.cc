// Thread label/clearance rules, category allocation, alerts (paper §3.1).
#include <gtest/gtest.h>

#include <thread>

#include "tests/kernel/kernel_test_util.h"

namespace histar {
namespace {

class ThreadTest : public KernelTest {};

TEST_F(ThreadTest, CatCreateGrantsOwnership) {
  Result<CategoryId> c = kernel_->sys_cat_create(init_);
  ASSERT_TRUE(c.ok());
  Result<Label> l = kernel_->sys_self_get_label(init_);
  ASSERT_TRUE(l.ok());
  EXPECT_EQ(l.value().get(c.value()), Level::kStar);
  Result<Label> cl = kernel_->sys_self_get_clearance(init_);
  ASSERT_TRUE(cl.ok());
  EXPECT_EQ(cl.value().get(c.value()), Level::k3);
}

TEST_F(ThreadTest, CategoriesAreFresh) {
  Result<CategoryId> c1 = kernel_->sys_cat_create(init_);
  Result<CategoryId> c2 = kernel_->sys_cat_create(init_);
  ASSERT_TRUE(c1.ok());
  ASSERT_TRUE(c2.ok());
  EXPECT_NE(c1.value(), c2.value());
}

TEST_F(ThreadTest, SelfSetLabelCanOnlyRaise) {
  Result<CategoryId> c = kernel_->sys_cat_create(init_);
  ASSERT_TRUE(c.ok());
  ObjectId t = MakeThread(Label(), Label(Level::k2));
  // Raising to c2 (within clearance {2}) is fine.
  Label raised(Level::k1, {{c.value(), Level::k2}});
  EXPECT_EQ(kernel_->sys_self_set_label(t, raised), Status::kOk);
  // Coming back down is not: {1} is below the current label.
  EXPECT_EQ(kernel_->sys_self_set_label(t, Label()), Status::kLabelCheckFailed);
}

TEST_F(ThreadTest, SelfSetLabelBoundedByClearance) {
  Result<CategoryId> c = kernel_->sys_cat_create(init_);
  ASSERT_TRUE(c.ok());
  ObjectId t = MakeThread(Label(), Label(Level::k2));  // clearance {2}
  // c3 exceeds clearance 2 in category c.
  Label too_high(Level::k1, {{c.value(), Level::k3}});
  EXPECT_EQ(kernel_->sys_self_set_label(t, too_high), Status::kLabelCheckFailed);
  // This is exactly why the update daemon cannot read {br3,...} files (§3).
}

TEST_F(ThreadTest, SelfSetLabelCannotMintOwnership) {
  Result<CategoryId> c = kernel_->sys_cat_create(init_);
  ASSERT_TRUE(c.ok());
  ObjectId t = MakeThread(Label(), Label(Level::k2));
  Label wish(Level::k1, {{c.value(), Level::kStar}});
  // ⋆ < current level 1, so L_T ⊑ wish fails.
  EXPECT_EQ(kernel_->sys_self_set_label(t, wish), Status::kLabelCheckFailed);
}

TEST_F(ThreadTest, ClearanceCanLowerNotRaiseUnowned) {
  Result<CategoryId> c = kernel_->sys_cat_create(init_);
  ASSERT_TRUE(c.ok());
  ObjectId t = MakeThread(Label(), Label(Level::k2));
  // Lowering clearance in c is allowed.
  Label lower(Level::k2, {{c.value(), Level::k1}});
  EXPECT_EQ(kernel_->sys_self_set_clearance(t, lower), Status::kOk);
  // Raising it in an unowned category is not.
  Label higher(Level::k2, {{c.value(), Level::k3}});
  EXPECT_EQ(kernel_->sys_self_set_clearance(t, higher), Status::kLabelCheckFailed);
}

TEST_F(ThreadTest, OwnerCanRaiseOwnClearance) {
  Result<CategoryId> c = kernel_->sys_cat_create(init_);
  ASSERT_TRUE(c.ok());
  // init owns c, so C ⊑ C_T ⊔ L_T^J admits c→3 even beyond old clearance;
  // first drop clearance in c to 2, then raise back to 3.
  Label drop(Level::k2, {{c.value(), Level::k2}});
  ASSERT_EQ(kernel_->sys_self_set_clearance(init_, drop), Status::kOk);
  Label raise(Level::k2, {{c.value(), Level::k3}});
  EXPECT_EQ(kernel_->sys_self_set_clearance(init_, raise), Status::kOk);
}

TEST_F(ThreadTest, ClearanceCannotDropBelowLabel) {
  Result<CategoryId> c = kernel_->sys_cat_create(init_);
  ASSERT_TRUE(c.ok());
  Label tl(Level::k1, {{c.value(), Level::k2}});
  Label tc(Level::k2, {{c.value(), Level::k2}});
  ObjectId t = MakeThread(tl, tc);
  Label bad(Level::k2, {{c.value(), Level::k1}});  // below label's c2
  EXPECT_EQ(kernel_->sys_self_set_clearance(t, bad), Status::kLabelCheckFailed);
}

TEST_F(ThreadTest, SpawnRuleEnforced) {
  Result<CategoryId> c = kernel_->sys_cat_create(init_);
  ASSERT_TRUE(c.ok());
  ObjectId t = MakeThread(Label(), Label(Level::k2));  // plain thread
  CreateSpec spec;
  spec.container = kernel_->root_container();
  spec.quota = 64 * kPageSize;
  // A plain thread cannot spawn a child owning c.
  Label own(Level::k1, {{c.value(), Level::kStar}});
  Result<ObjectId> bad = kernel_->sys_thread_create(t, spec, own, Label(Level::k2));
  EXPECT_FALSE(bad.ok());
  // Nor a child whose clearance exceeds its own.
  Label high_cl(Level::k2, {{c.value(), Level::k3}});
  Result<ObjectId> bad2 = kernel_->sys_thread_create(t, spec, Label(), high_cl);
  EXPECT_FALSE(bad2.ok());
  // The owner can do both.
  Result<ObjectId> good = kernel_->sys_thread_create(init_, spec, own, high_cl);
  EXPECT_TRUE(good.ok()) << StatusName(good.status());
}

TEST_F(ThreadTest, ThreadLabelUnreadableByLessPrivileged) {
  // §3.2: T reads T''s label only if L_T'^J ⊑ L_T^J. A thread owning a
  // category init doesn't know about is unreadable to a plain thread.
  Result<CategoryId> c = kernel_->sys_cat_create(init_);
  ASSERT_TRUE(c.ok());
  Label own(Level::k1, {{c.value(), Level::kStar}});
  Label cl(Level::k2, {{c.value(), Level::k3}});
  ObjectId privileged = MakeThread(own, cl);
  ObjectId plain = MakeThread(Label(), Label(Level::k2));
  Result<Label> l = kernel_->sys_obj_get_label(plain, RootEntry(privileged));
  EXPECT_FALSE(l.ok());
  // init (who owns c too) can read it.
  Result<Label> l2 = kernel_->sys_obj_get_label(init_, RootEntry(privileged));
  EXPECT_TRUE(l2.ok()) << StatusName(l2.status());
}

TEST_F(ThreadTest, LocalSegmentReadWrite) {
  uint8_t data[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  ASSERT_EQ(kernel_->sys_self_local_write(init_, data, 100, 8), Status::kOk);
  uint8_t out[8] = {};
  ASSERT_EQ(kernel_->sys_self_local_read(init_, out, 100, 8), Status::kOk);
  EXPECT_EQ(memcmp(data, out, 8), 0);
  EXPECT_EQ(kernel_->sys_self_local_read(init_, out, kPageSize - 4, 8), Status::kRange);
}

TEST_F(ThreadTest, HaltedThreadRejectsSyscalls) {
  ObjectId t = MakeThread(Label(), Label(Level::k2));
  ASSERT_EQ(kernel_->sys_self_halt(t), Status::kOk);
  EXPECT_EQ(kernel_->sys_self_get_label(t).status(), Status::kHalted);
}

TEST_F(ThreadTest, SyscallCounting) {
  uint64_t before = kernel_->thread_syscall_count(init_);
  kernel_->sys_self_get_label(init_);
  kernel_->sys_self_get_label(init_);
  kernel_->sys_self_get_clearance(init_);
  EXPECT_EQ(kernel_->thread_syscall_count(init_), before + 3);
  EXPECT_GE(kernel_->syscall_count(), before + 3);
}

class AlertTest : public KernelTest {
 protected:
  // Builds a minimal process-like pair: an address space owned by `owner_label`
  // and a thread using it.
  ObjectId MakeThreadWithAs(const Label& thread_label, const Label& clearance,
                            const Label& as_label) {
    CreateSpec as_spec;
    as_spec.container = kernel_->root_container();
    as_spec.label = as_label;
    as_spec.descrip = "as";
    Result<ObjectId> as = kernel_->sys_as_create(init_, as_spec);
    EXPECT_TRUE(as.ok()) << StatusName(as.status());
    ObjectId t = MakeThread(thread_label, clearance);
    EXPECT_EQ(kernel_->sys_self_set_as(t, RootEntry(as.value())), Status::kOk);
    return t;
  }
};

TEST_F(AlertTest, AlertDeliveredWhenWriterOfAddressSpace) {
  ObjectId t = MakeThreadWithAs(Label(), Label(Level::k2), Label());
  ASSERT_EQ(kernel_->sys_thread_alert(init_, RootEntry(t), 42), Status::kOk);
  Result<uint64_t> code = kernel_->sys_self_next_alert(t);
  ASSERT_TRUE(code.ok());
  EXPECT_EQ(code.value(), 42u);
  EXPECT_EQ(kernel_->sys_self_next_alert(t).status(), Status::kNotFound);
}

TEST_F(AlertTest, AlertBlockedWithoutAsWriteAccess) {
  // The AS is protected by a category init does not own after we spawn a
  // fresh owner: emulate by labeling the AS with integrity bit c0.
  Result<CategoryId> c = kernel_->sys_cat_create(init_);
  ASSERT_TRUE(c.ok());
  Label as_protect(Level::k1, {{c.value(), Level::k0}});
  ObjectId t = MakeThreadWithAs(Label(), Label(Level::k2), as_protect);
  ObjectId stranger = MakeThread(Label(), Label(Level::k2));
  EXPECT_EQ(kernel_->sys_thread_alert(stranger, RootEntry(t), 9),
            Status::kLabelCheckFailed);
  // init owns c so init can signal.
  EXPECT_EQ(kernel_->sys_thread_alert(init_, RootEntry(t), 9), Status::kOk);
}

TEST_F(AlertTest, AlertInterruptsFutexWait) {
  ObjectId seg = MakeSegment(Label(), 16);
  ObjectId t = MakeThreadWithAs(Label(), Label(Level::k2), Label());
  std::thread waiter([&]() {
    // Futex word is zero; wait forever until alerted.
    Status st = kernel_->sys_futex_wait(t, RootEntry(seg), 0, 0, 0);
    EXPECT_EQ(st, Status::kAgain);  // interrupted
  });
  // Give the waiter a moment to block, then alert.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ASSERT_EQ(kernel_->sys_thread_alert(init_, RootEntry(t), 1), Status::kOk);
  waiter.join();
}

}  // namespace
}  // namespace histar
