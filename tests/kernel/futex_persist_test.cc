// Futexes (the only kernel synchronization primitive, §4.1) and object
// serialization for the single-level store.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "tests/kernel/kernel_test_util.h"

namespace histar {
namespace {

class FutexTest : public KernelTest {};

TEST_F(FutexTest, WaitReturnsAgainOnValueMismatch) {
  ObjectId seg = MakeSegment(Label(), 16);
  uint64_t v = 5;
  ASSERT_EQ(kernel_->sys_segment_write(init_, RootEntry(seg), &v, 0, 8), Status::kOk);
  EXPECT_EQ(kernel_->sys_futex_wait(init_, RootEntry(seg), 0, 4, 10), Status::kAgain);
}

TEST_F(FutexTest, WaitTimesOut) {
  ObjectId seg = MakeSegment(Label(), 16);
  EXPECT_EQ(kernel_->sys_futex_wait(init_, RootEntry(seg), 0, 0, 30), Status::kTimedOut);
}

TEST_F(FutexTest, WakeReleasesWaiter) {
  ObjectId seg = MakeSegment(Label(), 16);
  ObjectId waiter_t = MakeThread(Label(), Label(Level::k2));
  std::atomic<bool> woke{false};
  std::thread waiter([&]() {
    Status st = kernel_->sys_futex_wait(waiter_t, RootEntry(seg), 0, 0, 5000);
    EXPECT_EQ(st, Status::kOk);
    woke = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(woke.load());
  Result<uint32_t> n = kernel_->sys_futex_wake(init_, RootEntry(seg), 0, 1);
  ASSERT_TRUE(n.ok());
  waiter.join();
  EXPECT_TRUE(woke.load());
}

TEST_F(FutexTest, WakeCountIsBounded) {
  ObjectId seg = MakeSegment(Label(), 16);
  ObjectId t1 = MakeThread(Label(), Label(Level::k2));
  ObjectId t2 = MakeThread(Label(), Label(Level::k2));
  std::atomic<int> woken{0};
  auto wait_fn = [&](ObjectId tid) {
    if (kernel_->sys_futex_wait(tid, RootEntry(seg), 0, 0, 2000) == Status::kOk) {
      ++woken;
    }
  };
  std::thread a(wait_fn, t1);
  std::thread b(wait_fn, t2);
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  Result<uint32_t> n = kernel_->sys_futex_wake(init_, RootEntry(seg), 0, 1);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 1u);
  a.join();
  b.join();
  EXPECT_EQ(woken.load(), 1);  // the second timed out
}

TEST_F(FutexTest, WaitRequiresObserveWakeRequiresModify) {
  Result<CategoryId> c = kernel_->sys_cat_create(init_);
  ASSERT_TRUE(c.ok());
  Label secret(Level::k1, {{c.value(), Level::k3}});
  ObjectId hidden = MakeSegment(secret, 16);
  ObjectId plain = MakeThread(Label(), Label(Level::k2));
  EXPECT_EQ(kernel_->sys_futex_wait(plain, RootEntry(hidden), 0, 0, 1),
            Status::kLabelCheckFailed);
  Label protect(Level::k1, {{c.value(), Level::k0}});
  ObjectId readonly = MakeSegment(protect, 16);
  EXPECT_EQ(kernel_->sys_futex_wake(plain, RootEntry(readonly), 0, 1).status(),
            Status::kLabelCheckFailed);
}

// Serialization round trips for every object type.
class PersistTest : public KernelTest {};

TEST_F(PersistTest, SegmentRoundTrip) {
  ObjectId seg = MakeSegment(Label(), 64);
  const char data[] = "persistent bytes";
  ASSERT_EQ(kernel_->sys_segment_write(init_, RootEntry(seg), data, 0, sizeof(data)),
            Status::kOk);
  std::vector<uint8_t> blob;
  ASSERT_TRUE(kernel_->SerializeObject(seg, &blob));

  Kernel k2;
  ASSERT_EQ(k2.RestoreObject(blob), Status::kOk);
  ASSERT_TRUE(k2.ObjectExists(seg));
}

TEST_F(PersistTest, FullGraphRestore) {
  // Build a small world, serialize everything, restore into a fresh kernel,
  // and verify both structure and access rules survive.
  Result<CategoryId> c = kernel_->sys_cat_create(init_);
  ASSERT_TRUE(c.ok());
  Label secret(Level::k1, {{c.value(), Level::k3}});
  ObjectId dir = MakeContainer(Label());
  ObjectId pub = MakeSegment(Label(), 32, dir);
  ObjectId sec = MakeSegment(secret, 32, dir);
  const char msg[] = "survives reboot";
  ASSERT_EQ(kernel_->sys_segment_write(init_, ContainerEntry{dir, pub}, msg, 0, sizeof(msg)),
            Status::kOk);

  Kernel k2;
  for (ObjectId id : kernel_->LiveObjects()) {
    std::vector<uint8_t> blob;
    ASSERT_TRUE(kernel_->SerializeObject(id, &blob));
    ASSERT_EQ(k2.RestoreObject(blob), Status::kOk);
  }
  k2.FinishRestore(kernel_->root_container());

  // The init thread exists in the restored kernel with its ownership intact.
  CurrentThread bind(init_);
  char buf[sizeof(msg)] = {};
  ASSERT_EQ(k2.sys_segment_read(init_, ContainerEntry{dir, pub}, buf, 0, sizeof(msg)),
            Status::kOk);
  EXPECT_STREQ(buf, msg);
  // Access rules still hold after restore: a fresh plain thread can't read
  // the secret segment.
  ObjectId plain = k2.BootstrapThread(Label(), Label(Level::k2), "plain");
  EXPECT_EQ(k2.sys_segment_read(plain, ContainerEntry{dir, sec}, buf, 0, 1),
            Status::kLabelCheckFailed);
  // But init still can (owns c).
  EXPECT_EQ(k2.sys_segment_read(init_, ContainerEntry{dir, sec}, buf, 0, 1), Status::kOk);
}

TEST_F(PersistTest, RestoreRejectsCorruptBlob) {
  ObjectId seg = MakeSegment(Label(), 64);
  std::vector<uint8_t> blob;
  ASSERT_TRUE(kernel_->SerializeObject(seg, &blob));
  Kernel k2;
  // Truncations at every prefix must fail cleanly, never crash.
  for (size_t cut = 0; cut < blob.size(); cut += 7) {
    std::vector<uint8_t> t(blob.begin(), blob.begin() + static_cast<ptrdiff_t>(cut));
    EXPECT_NE(k2.RestoreObject(t), Status::kOk);
  }
  // Type byte out of range.
  std::vector<uint8_t> bad = blob;
  bad[0] = 200;
  EXPECT_EQ(k2.RestoreObject(bad), Status::kCorrupt);
}

TEST_F(PersistTest, GateRoundTripKeepsEntryName) {
  kernel_->RegisterGateEntry("svc", [](GateCall&) {});
  CreateSpec spec;
  spec.container = kernel_->root_container();
  Result<ObjectId> g =
      kernel_->sys_gate_create(init_, spec, Label(), Label(Level::k2), "svc", {1, 2});
  ASSERT_TRUE(g.ok());
  std::vector<uint8_t> blob;
  ASSERT_TRUE(kernel_->SerializeObject(g.value(), &blob));
  Kernel k2;
  ASSERT_EQ(k2.RestoreObject(blob), Status::kOk);
  // Invoking in the restored kernel requires re-registering the entry —
  // exactly like code needing to be on disk.
  ObjectId t2 = k2.BootstrapThread(Label(), Label(Level::k2), "t");
  // Fake minimal container linkage for the entry lookup.
  (void)t2;
  EXPECT_TRUE(k2.ObjectExists(g.value()));
}

TEST_F(PersistTest, DirtyTrackingIdentifiesMutatedObjects) {
  ObjectId seg = MakeSegment(Label(), 64);
  kernel_->ClearDirty();
  EXPECT_TRUE(kernel_->DirtyObjects().empty());
  char b = 'x';
  ASSERT_EQ(kernel_->sys_segment_write(init_, RootEntry(seg), &b, 0, 1), Status::kOk);
  std::vector<ObjectId> dirty = kernel_->DirtyObjects();
  ASSERT_EQ(dirty.size(), 1u);
  EXPECT_EQ(dirty[0], seg);
}

}  // namespace
}  // namespace histar
