// The §2.2 access rules as an exhaustive matrix.
//
//   T can observe O  iff  L_O ⊑ L_T^J      ("no read up")
//   T can modify  O  iff  L_T ⊑ L_O ⊑ L_T^J ("no write down")
//
// TEST_P sweeps every (thread level, object level) pair in a single
// category — {⋆, 0, 1, 2, 3} × {0, 1, 2, 3} — and checks that the kernel's
// segment read/write outcomes equal the label-algebra prediction. This
// pins the entire Figure 3 semantics to the syscall layer: any divergence
// between the formulas and enforcement is caught here.
#include <gtest/gtest.h>

#include <tuple>

#include "tests/kernel/kernel_test_util.h"

namespace histar {
namespace {

using MatrixParam = std::tuple<Level, Level>;  // thread level, object level

class AccessMatrix : public KernelTest, public ::testing::WithParamInterface<MatrixParam> {};

TEST_P(AccessMatrix, SegmentAccessMatchesFormulas) {
  auto [tl, ol] = GetParam();

  // init allocates the category and the object (it owns c, so any object
  // level is creatable); the probe thread is built at the requested level.
  Result<CategoryId> c = kernel_->sys_cat_create(init_);
  ASSERT_TRUE(c.ok());

  Label obj_label(Level::k1, {{c.value(), ol}});
  // The probe container shares the object's label so that entry resolution
  // itself never masks the per-object check under test.
  ObjectId ct = MakeContainer(obj_label);
  ObjectId seg = MakeSegment(obj_label, 64, ct);

  Label thread_label(Level::k1, {{c.value(), tl}});
  Label thread_clear(Level::k2, {{c.value(), Level::k3}});
  ObjectId probe = kernel_->BootstrapThread(thread_label, thread_clear, "probe");

  Label thi = thread_label.ToHi();
  bool expect_observe = obj_label.Leq(thi);
  bool expect_modify = thread_label.Leq(obj_label) && expect_observe;

  char buf[8] = {};
  Status rd = kernel_->sys_segment_read(probe, ContainerEntry{ct, seg}, buf, 0, 8);
  Status wr = kernel_->sys_segment_write(probe, ContainerEntry{ct, seg}, buf, 0, 8);

  // Entry resolution requires observing the container, which carries the
  // same label; an unobservable object is therefore unreachable altogether
  // (kLabelCheckFailed either from the entry or the object check).
  EXPECT_EQ(rd == Status::kOk, expect_observe)
      << "thread " << thread_label.ToString() << " object " << obj_label.ToString();
  EXPECT_EQ(wr == Status::kOk, expect_modify)
      << "thread " << thread_label.ToString() << " object " << obj_label.ToString();
}

INSTANTIATE_TEST_SUITE_P(
    AllLevelPairs, AccessMatrix,
    ::testing::Combine(::testing::Values(Level::kStar, Level::k0, Level::k1, Level::k2,
                                         Level::k3),
                       ::testing::Values(Level::k0, Level::k1, Level::k2, Level::k3)),
    [](const ::testing::TestParamInfo<MatrixParam>& info) {
      auto name = [](Level l) {
        switch (l) {
          case Level::kStar: return std::string("Star");
          case Level::k0: return std::string("L0");
          case Level::k1: return std::string("L1");
          case Level::k2: return std::string("L2");
          case Level::k3: return std::string("L3");
          default: return std::string("J");
        }
      };
      return "T" + name(std::get<0>(info.param)) + "_O" + name(std::get<1>(info.param));
    });

// The same sweep for the two-category composition the paper uses throughout
// (§2: "It is, of course, common to restrict both by using two categories"):
// a {r3, w0, 1} file against threads owning each subset of {r, w}.
class TwoCategoryMatrix : public KernelTest,
                          public ::testing::WithParamInterface<std::tuple<bool, bool>> {};

TEST_P(TwoCategoryMatrix, ReadWriteCapabilitySplit) {
  auto [owns_r, owns_w] = GetParam();
  Result<CategoryId> r = kernel_->sys_cat_create(init_);
  Result<CategoryId> w = kernel_->sys_cat_create(init_);
  ASSERT_TRUE(r.ok() && w.ok());

  Label file_label(Level::k1, {{r.value(), Level::k3}, {w.value(), Level::k0}});
  ObjectId ct = MakeContainer(Label());  // world-usable directory
  ObjectId seg = MakeSegment(file_label, 64, ct);

  Label tl;
  if (owns_r) {
    tl.set(r.value(), Level::kStar);
  }
  if (owns_w) {
    tl.set(w.value(), Level::kStar);
  }
  ObjectId probe = kernel_->BootstrapThread(tl, Label(Level::k2), "probe");

  char buf[8] = {};
  Status rd = kernel_->sys_segment_read(probe, ContainerEntry{ct, seg}, buf, 0, 8);
  Status wr = kernel_->sys_segment_write(probe, ContainerEntry{ct, seg}, buf, 0, 8);

  // r acts as the read capability; w as the write capability — writing also
  // requires observing (no blind writes), hence needs both.
  EXPECT_EQ(rd == Status::kOk, owns_r);
  EXPECT_EQ(wr == Status::kOk, owns_r && owns_w);
}

INSTANTIATE_TEST_SUITE_P(Capabilities, TwoCategoryMatrix,
                         ::testing::Combine(::testing::Bool(), ::testing::Bool()),
                         [](const ::testing::TestParamInfo<std::tuple<bool, bool>>& info) {
                           return std::string(std::get<0>(info.param) ? "R" : "nr") +
                                  std::string(std::get<1>(info.param) ? "W" : "nw");
                         });

}  // namespace
}  // namespace histar
