// Gates: protected control transfer and privilege movement (paper §3.5),
// including the Figure 7 gate-call sequence and tainted invocation.
#include <gtest/gtest.h>

#include "tests/kernel/kernel_test_util.h"

namespace histar {
namespace {

class GateTest : public KernelTest {};

TEST_F(GateTest, CreateRequiresOwnedStar) {
  Result<CategoryId> c = kernel_->sys_cat_create(init_);
  ASSERT_TRUE(c.ok());
  kernel_->RegisterGateEntry("noop", [](GateCall&) {});
  CreateSpec spec;
  spec.container = kernel_->root_container();
  spec.descrip = "g";
  // init owns c: may store c⋆ in a gate.
  Label gl(Level::k1, {{c.value(), Level::kStar}});
  Result<ObjectId> g =
      kernel_->sys_gate_create(init_, spec, gl, Label(Level::k2), "noop", {});
  EXPECT_TRUE(g.ok()) << StatusName(g.status());
  // A plain thread may not mint a gate owning c.
  ObjectId plain = MakeThread(Label(), Label(Level::k2));
  Result<ObjectId> bad =
      kernel_->sys_gate_create(plain, spec, gl, Label(Level::k2), "noop", {});
  EXPECT_FALSE(bad.ok());
}

TEST_F(GateTest, CreateRequiresRegisteredEntry) {
  CreateSpec spec;
  spec.container = kernel_->root_container();
  Result<ObjectId> g =
      kernel_->sys_gate_create(init_, spec, Label(), Label(Level::k2), "unregistered", {});
  EXPECT_FALSE(g.ok());
  EXPECT_EQ(g.status(), Status::kNotFound);
}

TEST_F(GateTest, InvokeGrantsGateOwnership) {
  // The core privilege-transfer property: a gate owning c lets its invoker
  // request c⋆.
  Result<CategoryId> c = kernel_->sys_cat_create(init_);
  ASSERT_TRUE(c.ok());
  bool ran = false;
  kernel_->RegisterGateEntry("grant-check", [&](GateCall& call) {
    ran = true;
    Result<Label> l = call.kernel->sys_self_get_label(call.thread);
    ASSERT_TRUE(l.ok());
    EXPECT_EQ(l.value().get(42), Level::k1);  // sanity: unrelated category
  });
  CreateSpec spec;
  spec.container = kernel_->root_container();
  Label gl(Level::k1, {{c.value(), Level::kStar}});
  Result<ObjectId> g =
      kernel_->sys_gate_create(init_, spec, gl, Label(Level::k2), "grant-check", {});
  ASSERT_TRUE(g.ok());

  ObjectId plain = MakeThread(Label(), Label(Level::k2));
  Label req(Level::k1, {{c.value(), Level::kStar}});
  ASSERT_EQ(kernel_->sys_gate_invoke(plain, RootEntry(g.value()), req, Label(Level::k2),
                                     Label()),
            Status::kOk);
  EXPECT_TRUE(ran);
  Result<Label> after = kernel_->sys_self_get_label(plain);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().get(c.value()), Level::kStar);
}

TEST_F(GateTest, InvokeCannotRequestUnownedStar) {
  Result<CategoryId> c = kernel_->sys_cat_create(init_);
  Result<CategoryId> other = kernel_->sys_cat_create(init_);
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE(other.ok());
  kernel_->RegisterGateEntry("noop2", [](GateCall&) {});
  CreateSpec spec;
  spec.container = kernel_->root_container();
  Label gl(Level::k1, {{c.value(), Level::kStar}});
  Result<ObjectId> g =
      kernel_->sys_gate_create(init_, spec, gl, Label(Level::k2), "noop2", {});
  ASSERT_TRUE(g.ok());
  ObjectId plain = MakeThread(Label(), Label(Level::k2));
  // Requesting ⋆ in a category neither the thread nor gate owns: floor has
  // level 1 there, and ⋆ < 1.
  Label req(Level::k1, {{other.value(), Level::kStar}});
  EXPECT_EQ(kernel_->sys_gate_invoke(plain, RootEntry(g.value()), req, Label(Level::k2),
                                     Label()),
            Status::kLabelCheckFailed);
}

TEST_F(GateTest, GateClearanceGatesInvocation) {
  // A gate with clearance {c0, 2} can only be invoked by owners of c — the
  // signal-gate pattern (§5.6). Note the gate's own label must own c too
  // (L_G ⊑ C_G), just as the paper's signal gate carries the user's ⋆.
  Result<CategoryId> c = kernel_->sys_cat_create(init_);
  ASSERT_TRUE(c.ok());
  kernel_->RegisterGateEntry("sig", [](GateCall&) {});
  CreateSpec spec;
  spec.container = kernel_->root_container();
  Label gl(Level::k1, {{c.value(), Level::kStar}});
  Label gcl(Level::k2, {{c.value(), Level::k0}});
  Result<ObjectId> g = kernel_->sys_gate_create(init_, spec, gl, gcl, "sig", {});
  ASSERT_TRUE(g.ok()) << StatusName(g.status());
  ObjectId plain = MakeThread(Label(), Label(Level::k2));
  EXPECT_EQ(kernel_->sys_gate_invoke(plain, RootEntry(g.value()), Label(), Label(Level::k2),
                                     Label()),
            Status::kLabelCheckFailed);
  // init owns c (⋆ ≤ 0), so init may invoke.
  EXPECT_EQ(kernel_->sys_gate_invoke(init_, RootEntry(g.value()),
                                     kernel_->sys_self_get_label(init_).value(),
                                     kernel_->sys_self_get_clearance(init_).value(), Label()),
            Status::kOk);
}

TEST_F(GateTest, DefaultClearanceRefusesTaintedCallers) {
  // §5.5: services that don't want tainted copies simply keep the default
  // gate clearance {2}; a caller already tainted t3 fails L_T ⊑ C_G.
  Result<CategoryId> t = kernel_->sys_cat_create(init_);
  ASSERT_TRUE(t.ok());
  kernel_->RegisterGateEntry("noop3", [](GateCall&) {});
  CreateSpec spec;
  spec.container = kernel_->root_container();
  Result<ObjectId> g =
      kernel_->sys_gate_create(init_, spec, Label(), Label(Level::k2), "noop3", {});
  ASSERT_TRUE(g.ok());
  Label tl(Level::k1, {{t.value(), Level::k3}});
  Label tc(Level::k2, {{t.value(), Level::k3}});
  ObjectId tainted = MakeThread(tl, tc);
  EXPECT_EQ(kernel_->sys_gate_invoke(tainted, RootEntry(g.value()), tl, tc, Label()),
            Status::kLabelCheckFailed);
}

TEST_F(GateTest, TaintedInvocationAcquiresTaintAtEntry) {
  // The §5.5 flow: a caller *owning* t invokes the service gate requesting
  // a t3-tainted label; inside the entry the thread is tainted, and the
  // floor rule prevents it from requesting anything less on the way in.
  Result<CategoryId> t = kernel_->sys_cat_create(init_);
  ASSERT_TRUE(t.ok());
  CategoryId tc_id = t.value();
  Label observed;
  kernel_->RegisterGateEntry("svc-taint", [&](GateCall& call) {
    observed = call.kernel->sys_self_get_label(call.thread).value();
  });
  CreateSpec spec;
  spec.container = kernel_->root_container();
  // Gate accepts callers tainted up to t3 (its creator owns t, so its
  // clearance may cover t3 — C_G ⊑ C_T holds after cat_create).
  Label gate_clear(Level::k2, {{tc_id, Level::k3}});
  Result<ObjectId> g =
      kernel_->sys_gate_create(init_, spec, Label(), gate_clear, "svc-taint", {});
  ASSERT_TRUE(g.ok()) << StatusName(g.status());
  // Spawn the pre-tainted worker now, while init still owns t and can write
  // the root container (after the invoke below init is tainted and cannot).
  Label tl(Level::k1, {{tc_id, Level::k3}});
  Label tcl(Level::k2, {{tc_id, Level::k3}});
  ObjectId worker = MakeThread(tl, tcl);

  // init owns t (just allocated): request a t3 label across the gate.
  Label req = kernel_->sys_self_get_label(init_).value();
  req.set(tc_id, Level::k3);
  Label reqc = kernel_->sys_self_get_clearance(init_).value();
  ASSERT_EQ(kernel_->sys_gate_invoke(init_, RootEntry(g.value()), req, reqc, Label()),
            Status::kOk);
  EXPECT_EQ(observed.get(tc_id), Level::k3);
  // A tainted non-owner cannot shed taint at the gate (the floor rule) but
  // may cross it keeping the taint.
  EXPECT_EQ(kernel_->sys_gate_invoke(worker, RootEntry(g.value()), Label(), Label(Level::k2),
                                     tl),
            Status::kLabelCheckFailed);
  // (Note the verify label must also satisfy L_T ⊑ L_V, so it is tl here.)
  EXPECT_EQ(kernel_->sys_gate_invoke(worker, RootEntry(g.value()), tl, tcl, tl),
            Status::kOk);
}

TEST_F(GateTest, VerifyLabelMustBeProvable) {
  // L_T ⊑ L_V: claiming ownership you don't have fails.
  Result<CategoryId> c = kernel_->sys_cat_create(init_);
  ASSERT_TRUE(c.ok());
  Label seen;
  kernel_->RegisterGateEntry("verify-capture",
                             [&](GateCall& call) { seen = call.verify; });
  CreateSpec spec;
  spec.container = kernel_->root_container();
  Result<ObjectId> g =
      kernel_->sys_gate_create(init_, spec, Label(), Label(Level::k2), "verify-capture", {});
  ASSERT_TRUE(g.ok());
  ObjectId plain = MakeThread(Label(), Label(Level::k2));
  Label claim(Level::k1, {{c.value(), Level::kStar}});
  EXPECT_EQ(kernel_->sys_gate_invoke(plain, RootEntry(g.value()), Label(), Label(Level::k2),
                                     claim),
            Status::kLabelCheckFailed);
  // init really owns c; the entry sees the proof without gaining anything.
  EXPECT_EQ(kernel_->sys_gate_invoke(init_, RootEntry(g.value()), Label(), Label(Level::k2),
                                     claim),
            Status::kOk);
  EXPECT_EQ(seen.get(c.value()), Level::kStar);
}

TEST_F(GateTest, ReturnGatePatternRestoresPrivilege) {
  // Figure 7: caller makes a return gate holding its own privileges, guarded
  // by a fresh return category r; the service thread re-acquires the
  // caller's privileges only through that gate.
  Result<CategoryId> d = kernel_->sys_cat_create(init_);  // daemon's category
  ASSERT_TRUE(d.ok());

  // The "caller": a thread owning r after allocating it.
  ObjectId caller = MakeThread(Label(), Label(Level::k2));
  Result<CategoryId> r = kernel_->sys_cat_create(caller);
  ASSERT_TRUE(r.ok());
  Label caller_label = kernel_->sys_self_get_label(caller).value();
  Label caller_clear = kernel_->sys_self_get_clearance(caller).value();

  // Return gate: label = caller's privileges, clearance requires r0.
  kernel_->RegisterGateEntry("return", [](GateCall&) {});
  CreateSpec rspec;
  rspec.container = kernel_->root_container();
  Label rclear(Level::k2, {{r.value(), Level::k0}});
  Result<ObjectId> rgate =
      kernel_->sys_gate_create(caller, rspec, caller_label, rclear, "return", {});
  ASSERT_TRUE(rgate.ok()) << StatusName(rgate.status());

  // Service gate owned by the daemon (init owns d).
  bool service_ran = false;
  ObjectId rgate_id = rgate.value();
  CategoryId rcat = r.value();
  kernel_->RegisterGateEntry("service", [&](GateCall& call) {
    service_ran = true;
    Kernel* k = call.kernel;
    // Inside the daemon's domain: the thread holds d⋆ and r⋆ but not the
    // caller's other privileges. Return by invoking the return gate.
    Label now = k->sys_self_get_label(call.thread).value();
    EXPECT_EQ(now.get(rcat), Level::kStar);
    ContainerEntry rg{k->root_container(), rgate_id};
    Status st = k->sys_gate_invoke(call.thread, rg,
                                   k->sys_obj_get_label(call.thread, rg).value(),
                                   k->sys_self_get_clearance(call.thread).value(), Label());
    EXPECT_EQ(st, Status::kOk);
  });
  CreateSpec sspec;
  sspec.container = kernel_->root_container();
  Label sgl(Level::k1, {{d.value(), Level::kStar}});
  Result<ObjectId> sgate =
      kernel_->sys_gate_create(init_, sspec, sgl, Label(Level::k2), "service", {});
  ASSERT_TRUE(sgate.ok());

  // Caller invokes the service gate, granting r⋆ (so the service can return)
  // and receiving d⋆ (the daemon's privilege for the call's duration).
  Label req(Level::k1, {{d.value(), Level::kStar}, {rcat, Level::kStar}});
  ASSERT_EQ(kernel_->sys_gate_invoke(caller, RootEntry(sgate.value()), req, Label(Level::k2),
                                     Label()),
            Status::kOk);
  EXPECT_TRUE(service_ran);
  // After the return gate, the thread has the caller's original privileges
  // (which include r⋆ ownership via cat_create).
  Label after = kernel_->sys_self_get_label(caller).value();
  EXPECT_EQ(after.get(rcat), Level::kStar);
  EXPECT_EQ(after, caller_label);
}

TEST_F(GateTest, ClosureWordsArePassedThrough) {
  std::vector<uint64_t> got;
  kernel_->RegisterGateEntry("closure", [&](GateCall& call) { got = call.closure; });
  CreateSpec spec;
  spec.container = kernel_->root_container();
  Result<ObjectId> g = kernel_->sys_gate_create(init_, spec, Label(), Label(Level::k2),
                                                "closure", {7, 8, 9});
  ASSERT_TRUE(g.ok());
  ASSERT_EQ(kernel_->sys_gate_invoke(init_, RootEntry(g.value()), Label(), Label(Level::k2),
                                     Label()),
            Status::kOk);
  EXPECT_EQ(got, (std::vector<uint64_t>{7, 8, 9}));
  Result<std::vector<uint64_t>> via_sys = kernel_->sys_gate_get_closure(init_,
                                                                        RootEntry(g.value()));
  ASSERT_TRUE(via_sys.ok());
  EXPECT_EQ(via_sys.value(), (std::vector<uint64_t>{7, 8, 9}));
}

}  // namespace
}  // namespace histar
