// Quota-hierarchy invariants (paper §3.3) as randomized property tests.
//
// The accounting rule: a container's usage is the sum of the space used by
// its own data structures and the quotas of all objects it contains, with
// multiply-linked objects "double-charged" into every containing container.
// After any interleaving of create / link / unref / quota_move, the books
// must balance and no container may exceed its quota.
#include <gtest/gtest.h>

#include <map>
#include <random>
#include <vector>

#include "tests/kernel/kernel_test_util.h"

namespace histar {
namespace {

class QuotaProperty : public KernelTest, public ::testing::WithParamInterface<uint64_t> {
 protected:
  // Recomputes what a container's usage *should* be from its links.
  uint64_t ExpectedUsage(ObjectId d) {
    Result<std::vector<ObjectId>> links = kernel_->sys_container_list(init_, d);
    EXPECT_TRUE(links.ok());
    uint64_t sum = 0;
    for (ObjectId o : links.value()) {
      if (o == d) {
        continue;
      }
      Result<uint64_t> q = kernel_->sys_obj_get_quota(init_, ContainerEntry{d, o});
      if (q.ok() && q.value() != kQuotaInfinite) {
        sum += q.value();
      }
    }
    return sum;
  }
};

TEST_P(QuotaProperty, BooksBalanceUnderRandomOperations) {
  std::mt19937_64 rng(GetParam());
  constexpr uint64_t kPoolQuota = 1 << 20;
  ObjectId pool = MakeContainer(Label(), kernel_->root_container(), kPoolQuota);
  std::vector<ObjectId> segs;

  for (int step = 0; step < 200; ++step) {
    switch (rng() % 4) {
      case 0: {  // create a segment with a random small quota
        CreateSpec spec;
        spec.container = pool;
        spec.descrip = "q";
        spec.quota = kObjectOverheadBytes + (rng() % 4 + 1) * 512;
        Result<ObjectId> s = kernel_->sys_segment_create(init_, spec, 128);
        if (s.ok()) {
          segs.push_back(s.value());
        }
        break;
      }
      case 1: {  // delete one
        if (!segs.empty()) {
          size_t i = rng() % segs.size();
          kernel_->sys_container_unref(init_, ContainerEntry{pool, segs[i]});
          segs.erase(segs.begin() + static_cast<ptrdiff_t>(i));
        }
        break;
      }
      case 2: {  // grow one by quota_move (never beyond the pool)
        if (!segs.empty()) {
          ObjectId s = segs[rng() % segs.size()];
          (void)kernel_->sys_quota_move(init_, pool, s, 256);
        }
        break;
      }
      default: {  // shrink one
        if (!segs.empty()) {
          ObjectId s = segs[rng() % segs.size()];
          (void)kernel_->sys_quota_move(init_, pool, s, -256);
        }
        break;
      }
    }
    // Invariant 1: recorded usage equals the sum of child quotas.
    Result<std::vector<ObjectId>> links = kernel_->sys_container_list(init_, pool);
    ASSERT_TRUE(links.ok());
    // (usage is not directly observable via a syscall; reconstruct through
    //  free space: a create of exactly the remaining free bytes succeeds,
    //  one byte more fails — checked below on exit instead of every step.)
    uint64_t expected = ExpectedUsage(pool);
    // Invariant 2: expected usage never exceeds quota.
    EXPECT_LE(expected, kPoolQuota);
  }

  // Final audit: the pool must accept a segment of exactly its free space
  // (minus the pool's own overhead) and reject one byte more.
  uint64_t used = ExpectedUsage(pool);
  Result<uint64_t> pool_quota =
      kernel_->sys_obj_get_quota(init_, ContainerEntry{kernel_->root_container(), pool});
  ASSERT_TRUE(pool_quota.ok());
  // Own usage: overhead + link table; leave generous room for it, then probe
  // the boundary within that margin.
  uint64_t margin = kObjectOverheadBytes + 16 * (segs.size() + 8);
  ASSERT_GT(pool_quota.value(), used + margin);
  uint64_t free_estimate = pool_quota.value() - used - margin;

  CreateSpec over;
  over.container = pool;
  over.descrip = "over";
  over.quota = free_estimate + margin + 1;  // strictly more than can fit
  EXPECT_EQ(kernel_->sys_segment_create(init_, over, 16).status(), Status::kQuotaExceeded);

  CreateSpec fits;
  fits.container = pool;
  fits.descrip = "fits";
  fits.quota = kObjectOverheadBytes + 512;
  EXPECT_TRUE(kernel_->sys_segment_create(init_, fits, 16).ok());
}

TEST_P(QuotaProperty, DoubleChargingOnHardLinks) {
  std::mt19937_64 rng(GetParam() * 31);
  ObjectId a = MakeContainer(Label(), kernel_->root_container(), 1 << 18);
  ObjectId b = MakeContainer(Label(), kernel_->root_container(), 1 << 18);

  uint64_t q = kObjectOverheadBytes + (rng() % 8 + 1) * 256;
  CreateSpec spec;
  spec.container = a;
  spec.descrip = "shared";
  spec.quota = q;
  Result<ObjectId> seg = kernel_->sys_segment_create(init_, spec, 64);
  ASSERT_TRUE(seg.ok());

  // Linking requires a frozen quota (§3.3).
  EXPECT_EQ(kernel_->sys_container_link(init_, b, ContainerEntry{a, seg.value()}),
            Status::kNoPerm);
  ASSERT_EQ(kernel_->sys_obj_set_fixed_quota(init_, ContainerEntry{a, seg.value()}),
            Status::kOk);
  ASSERT_EQ(kernel_->sys_container_link(init_, b, ContainerEntry{a, seg.value()}),
            Status::kOk);

  // Both containers now charge the full quota (conservative double charge):
  // each accepts at most (quota - q - own) more.
  EXPECT_EQ(ExpectedUsage(a), q);
  EXPECT_EQ(ExpectedUsage(b), q);

  // Dropping one link releases one charge but keeps the object alive.
  ASSERT_EQ(kernel_->sys_container_unref(init_, ContainerEntry{a, seg.value()}), Status::kOk);
  EXPECT_EQ(ExpectedUsage(b), q);
  char buf[8];
  EXPECT_EQ(kernel_->sys_segment_read(init_, ContainerEntry{b, seg.value()}, buf, 0, 8),
            Status::kOk);
  // Last link gone → object destroyed.
  ASSERT_EQ(kernel_->sys_container_unref(init_, ContainerEntry{b, seg.value()}), Status::kOk);
  EXPECT_FALSE(kernel_->ObjectExists(seg.value()));
}

TEST_P(QuotaProperty, FixedQuotaRefusesMoves) {
  ObjectId pool = MakeContainer(Label(), kernel_->root_container(), 1 << 18);
  CreateSpec spec;
  spec.container = pool;
  spec.descrip = "frozen";
  spec.quota = kObjectOverheadBytes + 1024;
  Result<ObjectId> seg = kernel_->sys_segment_create(init_, spec, 64);
  ASSERT_TRUE(seg.ok());
  ASSERT_EQ(kernel_->sys_obj_set_fixed_quota(init_, ContainerEntry{pool, seg.value()}),
            Status::kOk);
  EXPECT_EQ(kernel_->sys_quota_move(init_, pool, seg.value(), 256), Status::kImmutable);
  EXPECT_EQ(kernel_->sys_quota_move(init_, pool, seg.value(), -256), Status::kImmutable);
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuotaProperty, ::testing::Values(1, 42, 1337, 99991));

}  // namespace
}  // namespace histar
