// sys_trace_read's flow check (§3 applied to the flight recorder): trace
// events are kernel state like any other object, so reading them is an
// observe and the label rules apply per event. Events stamped with a label
// that does not flow to the reader's raised label are counted but
// withheld — the count itself is label-safe (it reveals that secret
// activity exists, which the paper's resource channels already concede,
// not what it was).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>

#include "src/core/trace.h"
#include "tests/kernel/kernel_test_util.h"

namespace histar {
namespace {

class TraceFlowTest : public KernelTest {
 protected:
  void SetUp() override {
    KernelTest::SetUp();
    // The recorder is process-global and other tests in this binary share
    // it; start each flow test from an empty ring so the event counts and
    // label assertions below are exact.
    trace::Reset();
  }


  // Creates a fresh category owned by init_ plus a segment secret in it
  // ({c3, 1}: only c's owners can observe), then touches the segment so
  // the recorder holds events stamped with the secret label.
  ObjectId MakeSecretSegmentAndTouch(CategoryId* cat_out) {
    Result<CategoryId> c = kernel_->sys_cat_create(init_);
    EXPECT_TRUE(c.ok());
    *cat_out = c.value();
    Label secret(Level::k1, {{c.value(), Level::k3}});
    ObjectId ct = MakeContainer(secret);
    ObjectId seg = MakeSegment(secret, 64, ct);
    char buf[16] = "secret-bytes";
    EXPECT_EQ(kernel_->sys_segment_write(init_, ContainerEntry{ct, seg}, buf, 0,
                                         sizeof(buf)),
              Status::kOk);
    EXPECT_EQ(kernel_->sys_segment_read(init_, ContainerEntry{ct, seg}, buf, 0,
                                        sizeof(buf)),
              Status::kOk);
    return seg;
  }

  static size_t CountEventsForObject(const TraceReadRes& res, ObjectId oid) {
    size_t n = 0;
    for (const TraceEventWire& e : res.events) {
      if (e.kind == static_cast<uint32_t>(trace::EventKind::kSyscall) &&
          e.a == oid) {
        ++n;
      }
    }
    return n;
  }
};

TEST_F(TraceFlowTest, SecretOpsInvisibleToUnprivilegedReader) {
  CategoryId c = 0;
  ObjectId seg = MakeSecretSegmentAndTouch(&c);

  // A reader with no ownership of c: the secret segment's ops must not
  // appear, in any form — not the oid, not the label, not the timing.
  ObjectId unpriv =
      kernel_->BootstrapThread(Label(Level::k1), Label(Level::k2), "reader");
  ASSERT_NE(unpriv, kInvalidObject);

  TraceReadRes res = kernel_->sys_trace_read(unpriv, kTraceReadMaxEvents);
  ASSERT_EQ(res.status, Status::kOk);
  EXPECT_EQ(CountEventsForObject(res, seg), 0u);
  // The withheld counter proves events existed and were filtered rather
  // than never recorded.
  EXPECT_GE(res.withheld, 2u);  // at least the write and the read
  EXPECT_EQ(res.total, res.withheld + res.events.size());
}

TEST_F(TraceFlowTest, SecretOpsVisibleToCategoryOwner) {
  CategoryId c = 0;
  ObjectId seg = MakeSecretSegmentAndTouch(&c);

  // init_ owns c (sys_cat_create grants c⋆), so {c3} ⊑ init's raised
  // label: the same events an unprivileged reader is denied are delivered
  // here, with their operands and durations intact.
  TraceReadRes res = kernel_->sys_trace_read(init_, kTraceReadMaxEvents);
  ASSERT_EQ(res.status, Status::kOk);
  EXPECT_GE(CountEventsForObject(res, seg), 2u);
  for (const TraceEventWire& e : res.events) {
    if (e.kind == static_cast<uint32_t>(trace::EventKind::kSyscall) && e.a == seg) {
      EXPECT_NE(e.olabel, kInvalidLabelId);  // the secret label rode along
      EXPECT_EQ(static_cast<Status>(static_cast<int32_t>(e.code)), Status::kOk);
    }
  }
}

TEST_F(TraceFlowTest, WithheldCountIsLabelSafeAndTotalsAgree) {
  CategoryId c = 0;
  ObjectId seg = MakeSecretSegmentAndTouch(&c);

  ObjectId unpriv =
      kernel_->BootstrapThread(Label(Level::k1), Label(Level::k2), "reader");
  ASSERT_NE(unpriv, kInvalidObject);

  TraceReadRes priv = kernel_->sys_trace_read(init_, kTraceReadMaxEvents);
  TraceReadRes unpv = kernel_->sys_trace_read(unpriv, kTraceReadMaxEvents);
  ASSERT_EQ(priv.status, Status::kOk);
  ASSERT_EQ(unpv.status, Status::kOk);

  // Both readers observe the same stream (monotonically grown between the
  // two calls — the first read records events of its own), and the
  // unprivileged view is a strict filter of it: everything is accounted
  // for either as a delivered event or a withheld count, never dropped
  // silently.
  EXPECT_GE(unpv.total, priv.total);
  EXPECT_EQ(priv.total, priv.withheld + priv.events.size());
  EXPECT_EQ(unpv.total, unpv.withheld + unpv.events.size());
  EXPECT_GT(unpv.withheld, priv.withheld);

  // No withheld event leaks through the unprivileged list: the privileged
  // read exposes the secret label ids (on the secret segment's events);
  // none of them may appear on any event the unprivileged reader received.
  std::vector<uint32_t> secret_labels;
  for (const TraceEventWire& p : priv.events) {
    if (p.kind == static_cast<uint32_t>(trace::EventKind::kSyscall) &&
        p.a == seg && p.olabel != kInvalidLabelId) {
      secret_labels.push_back(p.olabel);
    }
  }
  ASSERT_FALSE(secret_labels.empty());
  for (const TraceEventWire& e : unpv.events) {
    EXPECT_EQ(std::find(secret_labels.begin(), secret_labels.end(), e.olabel),
              secret_labels.end());
    EXPECT_EQ(std::find(secret_labels.begin(), secret_labels.end(), e.tlabel),
              secret_labels.end());
  }
}

TEST_F(TraceFlowTest, StaleGenerationEventsDoNotLeakAcrossReboot) {
  // The recorder outlives kernel instances, but label ids are dense per
  // registry: after an in-process reboot, an id stamped under the OLD
  // registry numerically collides with whatever the NEW registry interned
  // at that slot. Bounds alone (Known) therefore pass, and Leq would
  // check the wrong label entirely — the per-event generation stamp is
  // what keeps the stale secret event withheld.
  CategoryId c = 0;
  ObjectId seg = MakeSecretSegmentAndTouch(&c);

  // Capture the secret label id the old kernel stamped on seg's events.
  TraceReadRes priv = kernel_->sys_trace_read(init_, kTraceReadMaxEvents);
  ASSERT_EQ(priv.status, Status::kOk);
  uint32_t stale_label = 0;
  for (const TraceEventWire& e : priv.events) {
    if (e.kind == static_cast<uint32_t>(trace::EventKind::kSyscall) &&
        e.a == seg && e.olabel != kInvalidLabelId) {
      stale_label = e.olabel;
    }
  }
  ASSERT_NE(stale_label, 0u);

  // Reboot in-process: the recorder (and the stale events) survive.
  kernel_ = std::make_unique<Kernel>();
  ObjectId init2 =
      kernel_->BootstrapThread(Label(Level::k1), Label(Level::k2), "init2");
  ASSERT_NE(init2, kInvalidObject);
  CurrentThread::Set(init2);

  // Force the collision the generation check defends against: intern
  // fresh labels until the stale id is a live id of the NEW registry.
  // Every label created here is owned by init2, so if the stale event
  // were (wrongly) interpreted against the colliding label, it would
  // flow to init2 and be delivered.
  for (int i = 0; i < 256 && !kernel_->label_registry().Known(stale_label); ++i) {
    Result<CategoryId> nc = kernel_->sys_cat_create(init2);
    ASSERT_TRUE(nc.ok());
    MakeContainer(Label(Level::k1, {{nc.value(), Level::k3}}), kInvalidObject,
                  1 << 20, 0, init2);
  }
  ASSERT_TRUE(kernel_->label_registry().Known(stale_label));

  TraceReadRes res = kernel_->sys_trace_read(init2, kTraceReadMaxEvents);
  ASSERT_EQ(res.status, Status::kOk);
  // The old kernel's secret segment ops must not be delivered, even
  // though their label id now passes Known() against the new registry.
  EXPECT_EQ(CountEventsForObject(res, seg), 0u);
  EXPECT_GE(res.withheld, 2u);  // at least the stale write and read
  // Every delivered labeled event was minted under the CURRENT registry.
  const uint32_t gen = kernel_->label_registry().instance_id();
  for (const TraceEventWire& e : res.events) {
    if (e.tlabel != kInvalidLabelId || e.olabel != kInvalidLabelId) {
      EXPECT_EQ(e.gen, gen);
    }
  }
}

TEST_F(TraceFlowTest, UnknownThreadIsRejected) {
  TraceReadRes res = kernel_->sys_trace_read(ObjectId{0xdeadbeef});
  EXPECT_EQ(res.status, Status::kNotFound);
}

TEST_F(TraceFlowTest, DefaultCapBoundsDeliveredEventsButNotCounts) {
  CategoryId c = 0;
  MakeSecretSegmentAndTouch(&c);
  // Tiny cap: delivery truncates, accounting does not.
  TraceReadRes res = kernel_->sys_trace_read(init_, 2);
  ASSERT_EQ(res.status, Status::kOk);
  EXPECT_EQ(res.events.size(), 2u);
  // More visible events existed than the cap let through: total keeps
  // counting past the truncation point.
  EXPECT_GT(res.total, res.withheld + res.events.size());
}

}  // namespace
}  // namespace histar
