// Adversarial gate tests (§3.5): every way a thread might try to launder
// privilege or taint through the gate mechanism, and the §5.5 return-gate
// protocol's properties.
#include <gtest/gtest.h>

#include "tests/kernel/kernel_test_util.h"

namespace histar {
namespace {

class GateSecurityTest : public KernelTest {
 protected:
  void SetUp() override {
    KernelTest::SetUp();
    kernel_->RegisterGateEntry("noop", [](GateCall&) {});
    kernel_->RegisterGateEntry("record-label", [](GateCall& call) {
      Result<Label> l = call.kernel->sys_self_get_label(call.thread);
      uint8_t ok = l.ok() ? 1 : 0;
      call.kernel->sys_self_local_write(call.thread, &ok, 63, 1);
    });
  }

  // A gate owned by a category-owner, carrying that ownership.
  std::pair<ObjectId, CategoryId> MakePrivilegedGate(const Label& clearance) {
    Result<CategoryId> c = kernel_->sys_cat_create(init_);
    EXPECT_TRUE(c.ok());
    CreateSpec spec;
    spec.container = kernel_->root_container();
    spec.descrip = "priv-gate";
    Label glabel(Level::k1, {{c.value(), Level::kStar}});
    Result<ObjectId> g =
        kernel_->sys_gate_create(init_, spec, glabel, clearance, "noop", {});
    EXPECT_TRUE(g.ok()) << StatusName(g.status());
    return {g.ok() ? g.value() : kInvalidObject, c.value()};
  }
};

TEST_F(GateSecurityTest, TaintedThreadCannotEnterLowClearanceGate) {
  // The wrap/§6.1 mechanism: clearance {2} keeps 3-tainted threads out —
  // this is precisely why the sandboxed scanner cannot invoke a victim's
  // signal gate.
  auto [gate, c] = MakePrivilegedGate(Label(Level::k2));
  Result<CategoryId> taint = kernel_->sys_cat_create(init_);
  ASSERT_TRUE(taint.ok());
  Label tl(Level::k1, {{taint.value(), Level::k3}});
  Label tc(Level::k2, {{taint.value(), Level::k3}});
  ObjectId sandboxed = kernel_->BootstrapThread(tl, tc, "sandboxed");

  ContainerEntry ce{kernel_->root_container(), gate};
  Label request = tl.ToHi().Join(Label(Level::k1, {{c, Level::kStar}}).ToHi()).ToStar();
  EXPECT_EQ(kernel_->sys_gate_invoke(sandboxed, ce, request, tc, tl),
            Status::kLabelCheckFailed);
}

TEST_F(GateSecurityTest, RequestBelowTheFloorIsRejected) {
  // The floor (L_T^J ⊔ L_G^J)^⋆ means taint follows the thread through the
  // gate: requesting a label that sheds it must fail.
  auto [gate, c] = MakePrivilegedGate(Label(Level::k2));
  Result<CategoryId> taint = kernel_->sys_cat_create(init_);
  ASSERT_TRUE(taint.ok());
  Label tl(Level::k1, {{taint.value(), Level::k2}});
  Label tc(Level::k2);
  ObjectId t = kernel_->BootstrapThread(tl, tc, "tainted2");

  ContainerEntry ce{kernel_->root_container(), gate};
  // Request = untainted + the gate's star: drops our own t2. Must fail.
  Label request(Level::k1, {{c, Level::kStar}});
  EXPECT_EQ(kernel_->sys_gate_invoke(t, ce, request, tc, tl), Status::kLabelCheckFailed);
  // The honest request (floor) succeeds and carries both.
  Label honest = tl.ToHi().Join(Label(Level::k1, {{c, Level::kStar}}).ToHi()).ToStar();
  EXPECT_EQ(kernel_->sys_gate_invoke(t, ce, honest, tc.Join(honest), tl), Status::kOk);
  Result<Label> after = kernel_->sys_self_get_label(t);
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after.value().Owns(c));
  EXPECT_EQ(after.value().get(taint.value()), Level::k2);
}

TEST_F(GateSecurityTest, RequestAboveTheGateGrantIsRejected) {
  // Stars not in (thread ∪ gate) cannot be requested: the gate grants its
  // own categories, nothing more.
  auto [gate, c] = MakePrivilegedGate(Label(Level::k2));
  ObjectId t = kernel_->BootstrapThread(Label(), Label(Level::k2), "greedy");
  Result<CategoryId> other = kernel_->sys_cat_create(init_);  // init's, not the gate's
  ASSERT_TRUE(other.ok());

  ContainerEntry ce{kernel_->root_container(), gate};
  Label request(Level::k1, {{c, Level::kStar}, {other.value(), Level::kStar}});
  EXPECT_EQ(kernel_->sys_gate_invoke(t, ce, request, Label(Level::k2), Label()),
            Status::kLabelCheckFailed);
}

TEST_F(GateSecurityTest, VerifyLabelMustBeProvable) {
  // L_T ⊑ L_V: a thread cannot "prove" ownership it lacks. (The verify label
  // is how the §6.2 check gate distinguishes the root override.)
  auto [gate, c] = MakePrivilegedGate(Label(Level::k2));
  ObjectId t = kernel_->BootstrapThread(Label(), Label(Level::k2), "claimant");
  Result<CategoryId> claimed = kernel_->sys_cat_create(init_);
  ASSERT_TRUE(claimed.ok());

  ContainerEntry ce{kernel_->root_container(), gate};
  Label request = Label().ToHi().Join(Label(Level::k1, {{c, Level::kStar}}).ToHi()).ToStar();
  // Verify label asserts ownership of `claimed`, which t does not have:
  Label verify(Level::k1, {{claimed.value(), Level::kStar}});
  EXPECT_EQ(kernel_->sys_gate_invoke(t, ce, request, Label(Level::k2), verify),
            Status::kLabelCheckFailed);
  // With an honest verify label the same call passes.
  EXPECT_EQ(kernel_->sys_gate_invoke(t, ce, request, Label(Level::k2), Label()), Status::kOk);
}

TEST_F(GateSecurityTest, ClearanceRequestBoundedByThreadPlusGate) {
  // C_R ⊑ (C_T ⊔ C_G): a gate with low clearance cannot be used to raise a
  // thread's clearance beyond the union.
  Result<CategoryId> c = kernel_->sys_cat_create(init_);
  ASSERT_TRUE(c.ok());
  CreateSpec spec;
  spec.container = kernel_->root_container();
  spec.descrip = "low-gate";
  Result<ObjectId> gate = kernel_->sys_gate_create(init_, spec, Label(), Label(Level::k2),
                                                   "noop", {});
  ASSERT_TRUE(gate.ok());
  ObjectId t = kernel_->BootstrapThread(Label(), Label(Level::k2), "climber");

  ContainerEntry ce{kernel_->root_container(), gate.value()};
  // Request clearance 3 in c: neither the thread (2) nor the gate (2) has it.
  Label high_clear(Level::k2, {{c.value(), Level::k3}});
  EXPECT_EQ(kernel_->sys_gate_invoke(t, ce, Label(), high_clear, Label()),
            Status::kLabelCheckFailed);
}

TEST_F(GateSecurityTest, ReturnGateRestoresCallerPrivilege) {
  // §5.5: the caller mints a return gate carrying its own stars, guarded by
  // a fresh return category r granted across the service call. After the
  // service gate strips the caller's stars (explicit request), the return
  // gate — and only the return gate — brings them back.
  Result<CategoryId> mine = kernel_->sys_cat_create(init_);   // caller's privilege
  Result<CategoryId> r = kernel_->sys_cat_create(init_);      // return category
  ASSERT_TRUE(mine.ok() && r.ok());

  CreateSpec spec;
  spec.container = kernel_->root_container();
  spec.descrip = "return-gate";
  Label rlabel(Level::k1, {{mine.value(), Level::kStar}, {r.value(), Level::kStar}});
  Label rclear(Level::k2, {{r.value(), Level::k0}});  // requires owning r to enter
  Result<ObjectId> ret = kernel_->sys_gate_create(init_, spec, rlabel, rclear, "noop", {});
  ASSERT_TRUE(ret.ok());
  ContainerEntry ret_ce{kernel_->root_container(), ret.value()};

  // The "service" left our thread with r⋆ but none of its old privilege
  // (the state after an honest service-gate crossing).
  Label stripped(Level::k1, {{r.value(), Level::kStar}});
  ObjectId t = kernel_->BootstrapThread(stripped, Label(Level::k2, {{r.value(), Level::k3}}),
                                        "returning");
  Label request = stripped.ToHi().Join(rlabel.ToHi()).ToStar();
  ASSERT_EQ(kernel_->sys_gate_invoke(t, ret_ce, request, Label(Level::k2), stripped),
            Status::kOk);
  Result<Label> after = kernel_->sys_self_get_label(t);
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after.value().Owns(mine.value()));

  // A thread without r cannot even enter the return gate (clearance r0).
  ObjectId imposter = kernel_->BootstrapThread(Label(), Label(Level::k2), "imposter");
  EXPECT_EQ(kernel_->sys_gate_invoke(imposter, ret_ce, request, Label(Level::k2), Label()),
            Status::kLabelCheckFailed);
}

TEST_F(GateSecurityTest, GateLabelsReadableOnlyViaUsableEntry) {
  // Gate labels are immutable creation-time state: whoever can use the
  // container entry may read them (§3.2) — and nobody else.
  auto [gate, c] = MakePrivilegedGate(Label(Level::k2));
  ObjectId t = kernel_->BootstrapThread(Label(), Label(Level::k2), "reader");
  Result<Label> l =
      kernel_->sys_obj_get_label(t, ContainerEntry{kernel_->root_container(), gate});
  ASSERT_TRUE(l.ok());
  EXPECT_TRUE(l.value().Owns(c));

  // Hide an identical gate inside an unobservable container: the label (and
  // the gate's existence) disappears with it.
  Result<CategoryId> hidden_cat = kernel_->sys_cat_create(init_);
  Label hidden_label(Level::k1, {{hidden_cat.value(), Level::k3}});
  ObjectId hidden_ct = MakeContainer(hidden_label);
  CreateSpec spec;
  spec.container = hidden_ct;
  spec.descrip = "hidden-gate";
  Result<ObjectId> hidden_gate = kernel_->sys_gate_create(
      init_, spec, Label(Level::k1, {{hidden_cat.value(), Level::kStar}}),
      Label(Level::k2, {{hidden_cat.value(), Level::k3}}), "noop", {});
  ASSERT_TRUE(hidden_gate.ok());
  EXPECT_EQ(kernel_->sys_obj_get_label(t, ContainerEntry{hidden_ct, hidden_gate.value()})
                .status(),
            Status::kLabelCheckFailed);
}

}  // namespace
}  // namespace histar
