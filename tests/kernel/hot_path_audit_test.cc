// Source audit: kernel hot paths may not bypass the label registry.
//
// The §4 optimization only holds if *every* label check in the kernel goes
// through the memoized LabelRegistry — one stray Label::Leq on a by-value
// label, or one per-check ToHi() allocation, silently reintroduces the cost
// the registry exists to remove (this happened: the seed had four such
// bypasses, at the old kernel.cc:206/458/519/663).
//
// The matching itself now lives in the histar-lint "registry-bypass" rule
// (tools/histar-lint/lint.cc), which is comment/string-aware and fixture
// tested; this test is a thin driver that runs that one rule over the
// kernel translation units, so the test suite and the CI lint job can never
// disagree about what counts as a bypass.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/histar-lint/lint.h"

namespace histar {
namespace {

#ifndef HISTAR_SOURCE_DIR
#define HISTAR_SOURCE_DIR ""
#endif

// Kernel translation units whose label checks must be registry-mediated.
// Kept in sync with kKernelLabelSources in tools/histar-lint/lint.cc — the
// linter applies the rule to exactly this set when run over the whole tree.
const char* kKernelSources[] = {
    "src/kernel/kernel.cc",
    "src/kernel/kernel_seg.cc",
    "src/kernel/kernel_thread.cc",
    "src/kernel/kernel_persist.cc",
    "src/kernel/kernel_batch.cc",
    "src/kernel/syscall_abi.cc",
    "src/kernel/ring.cc",
};

TEST(HotPathAudit, KernelLabelChecksGoThroughRegistry) {
  std::string root = HISTAR_SOURCE_DIR;
  if (root.empty()) {
    GTEST_SKIP() << "HISTAR_SOURCE_DIR not defined";
  }
  std::vector<std::string> violations;
  bool any_file = false;
  for (const char* rel : kKernelSources) {
    std::ifstream in(root + "/" + rel, std::ios::binary);
    if (!in.is_open()) {
      continue;  // source tree not present (e.g. installed-test run)
    }
    any_file = true;
    std::ostringstream ss;
    ss << in.rdbuf();
    for (const lint::Finding& f :
         lint::LintSource(rel, ss.str(), {"registry-bypass"})) {
      violations.push_back(f.file + ":" + std::to_string(f.line) + ": " +
                           f.message);
    }
  }
  if (!any_file) {
    GTEST_SKIP() << "kernel sources not found under " << root;
  }
  EXPECT_TRUE(violations.empty()) << [&] {
    std::ostringstream os;
    os << "label-registry bypasses in kernel hot paths:\n";
    for (const std::string& v : violations) {
      os << "  " << v << "\n";
    }
    return os.str();
  }();
}

}  // namespace
}  // namespace histar
