// Source audit: kernel hot paths may not bypass the label registry.
//
// The §4 optimization only holds if *every* label check in the kernel goes
// through the memoized LabelRegistry — one stray Label::Leq on a by-value
// label, or one per-check ToHi() allocation, silently reintroduces the cost
// the registry exists to remove (this happened: the seed had four such
// bypasses, at the old kernel.cc:206/458/519/663). This test greps the
// kernel translation units and fails on any direct label-algebra call, so a
// regression is caught at test time rather than in a profile.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace histar {
namespace {

#ifndef HISTAR_SOURCE_DIR
#define HISTAR_SOURCE_DIR ""
#endif

// Kernel translation units whose label checks must be registry-mediated.
const char* kKernelSources[] = {
    "src/kernel/kernel.cc",
    "src/kernel/kernel_seg.cc",
    "src/kernel/kernel_thread.cc",
    "src/kernel/kernel_persist.cc",
    "src/kernel/kernel_batch.cc",
    "src/kernel/syscall_abi.cc",
    "src/kernel/ring.cc",
};

// Label-algebra calls that allocate or walk entry lists per invocation. The
// registry exposes HiOf/StarOf/Leq/Join equivalents that are precomputed or
// memoized; kernel code must use those.
const char* kForbidden[] = {".ToHi(", ".ToStar(", "RaiseForRead("};

// Methods that are legal only as registry calls (registry_.Leq et al. are
// the memoized path; label.Leq(...) is the bypass).
const char* kRegistryOnly[] = {".Leq(", ".Join(", ".Meet("};

std::string StripLineComment(const std::string& line) {
  size_t pos = line.find("//");
  return pos == std::string::npos ? line : line.substr(0, pos);
}

bool EndsWithRegistryReceiver(const std::string& code, size_t dot_pos) {
  const std::string receiver = "registry_";
  if (dot_pos < receiver.size()) {
    return false;
  }
  return code.compare(dot_pos - receiver.size(), receiver.size(), receiver) == 0;
}

TEST(HotPathAudit, KernelLabelChecksGoThroughRegistry) {
  std::string root = HISTAR_SOURCE_DIR;
  if (root.empty()) {
    GTEST_SKIP() << "HISTAR_SOURCE_DIR not defined";
  }
  std::vector<std::string> violations;
  bool any_file = false;
  for (const char* rel : kKernelSources) {
    std::ifstream in(root + "/" + rel);
    if (!in.is_open()) {
      continue;  // source tree not present (e.g. installed-test run)
    }
    any_file = true;
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
      ++lineno;
      std::string code = StripLineComment(line);
      for (const char* pat : kForbidden) {
        if (code.find(pat) != std::string::npos) {
          violations.push_back(std::string(rel) + ":" + std::to_string(lineno) + ": " + pat);
        }
      }
      for (const char* pat : kRegistryOnly) {
        size_t pos = 0;
        while ((pos = code.find(pat, pos)) != std::string::npos) {
          if (!EndsWithRegistryReceiver(code, pos)) {
            violations.push_back(std::string(rel) + ":" + std::to_string(lineno) +
                                 ": non-registry " + pat);
          }
          pos += 1;
        }
      }
    }
  }
  if (!any_file) {
    GTEST_SKIP() << "kernel sources not found under " << root;
  }
  EXPECT_TRUE(violations.empty()) << [&] {
    std::ostringstream os;
    os << "label-registry bypasses in kernel hot paths:\n";
    for (const std::string& v : violations) {
      os << "  " << v << "\n";
    }
    return os.str();
  }();
}

}  // namespace
}  // namespace histar
