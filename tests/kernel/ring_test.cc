// Async submission/completion rings (PR 5).
//
// Pinned here:
//  1. Basic SQ/CQ life cycle: create → submit → wait → reap, completion seq
//     numbering, capacity backpressure, and the ring-op restrictions (no
//     nested ring calls, no gate_invoke).
//  2. Linked-op semantics: a dependent get_len → read chain submits as ONE
//     submission with the length flowing forward between entries; a
//     mid-chain failure cancels the rest of the chain with distinct
//     kCancelled completions; entries past the chain still execute.
//  3. The lock-parity acceptance property: the worker executes a linked
//     chain under the same group-merged TableLock as the equivalent
//     synchronous SubmitBatch — the dependent second op costs ZERO extra
//     lock rounds (asserted with the ObjectTable lock-accounting counter).
//  4. Proxy execution: a worker running another thread's descriptors never
//     reads or pollutes that thread's last-fault hint (the submitter's
//     warm-fault guarantee of one lock round survives ring-driven faults
//     through other mappings).
//  5. Label rules: ring create/submit/wait/reap are checked against the
//     ring's own label, and every submitted op is re-checked against the
//     SUBMITTER's labels at execution.
//  6. A multi-submitter stress test (the TSan `ring` CI target).
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "tests/kernel/kernel_test_util.h"

namespace histar {
namespace {

class RingTest : public KernelTest {
 protected:
  ObjectId MakeRing(uint32_t capacity = 0, ObjectId parent = kInvalidObject,
                    Label label = Label(), ObjectId creator = kInvalidObject) {
    CreateSpec spec;
    spec.container = parent == kInvalidObject ? kernel_->root_container() : parent;
    spec.label = label;
    spec.descrip = "test-ring";
    spec.quota = 16 * kPageSize;
    Result<ObjectId> r = kernel_->sys_ring_create(
        creator == kInvalidObject ? init_ : creator, spec, capacity);
    EXPECT_TRUE(r.ok()) << StatusName(r.status());
    return r.ok() ? r.value() : kInvalidObject;
  }

  // Submits, waits for, and reaps one chain; returns the completions.
  std::vector<RingCompletion> RunChain(ObjectId ring, std::vector<RingOp> ops) {
    ContainerEntry re = RootEntry(ring);
    Result<uint64_t> t = kernel_->sys_ring_submit(init_, re, std::move(ops));
    EXPECT_TRUE(t.ok()) << StatusName(t.status());
    if (!t.ok()) {
      return {};
    }
    EXPECT_EQ(kernel_->sys_ring_wait(init_, re, t.value(), 5000), Status::kOk);
    Result<std::vector<RingCompletion>> c = kernel_->sys_ring_reap(init_, re, 0);
    EXPECT_TRUE(c.ok()) << StatusName(c.status());
    return c.ok() ? c.take() : std::vector<RingCompletion>{};
  }

  template <typename Fn>
  uint64_t Acquisitions(Fn&& fn) {
    const ObjectTable& table = kernel_->object_table();
    table.set_lock_accounting(true);
    uint64_t before = table.lock_acquisitions();
    fn();
    uint64_t after = table.lock_acquisitions();
    table.set_lock_accounting(false);
    return after - before;
  }
};

TEST_F(RingTest, SubmitWaitReapRoundTrip) {
  ObjectId ring = MakeRing();
  ObjectId seg = MakeSegment(Label(), 64);
  ContainerEntry ce = RootEntry(seg);
  char wbuf[8] = {'r', 'i', 'n', 'g', 'd', 'a', 't', 'a'};
  char rbuf[8] = {};
  std::vector<RingOp> ops;
  ops.push_back(RingOp{SyscallReq{SegmentWriteReq{ce, wbuf, 0, 8}}});
  ops.push_back(RingOp{SyscallReq{SegmentReadReq{ce, rbuf, 0, 8}}});
  std::vector<RingCompletion> done = RunChain(ring, std::move(ops));
  ASSERT_EQ(done.size(), 2u);
  // Completions arrive in submission order with contiguous seq numbers.
  EXPECT_EQ(done[0].seq + 1, done[1].seq);
  EXPECT_EQ(std::get<SegmentWriteRes>(done[0].res).status, Status::kOk);
  EXPECT_EQ(std::get<SegmentReadRes>(done[1].res).status, Status::kOk);
  EXPECT_EQ(memcmp(wbuf, rbuf, 8), 0);
}

TEST_F(RingTest, LinkedChainFlowsLengthForward) {
  ObjectId ring = MakeRing();
  ObjectId seg = MakeSegment(Label(), 48);
  ContainerEntry ce = RootEntry(seg);
  char pattern[48];
  for (int i = 0; i < 48; ++i) {
    pattern[i] = static_cast<char>('a' + (i % 26));
  }
  ASSERT_EQ(kernel_->sys_segment_write(init_, ce, pattern, 0, 48), Status::kOk);

  // ONE submission: get_len, then a read whose len operand is the get_len
  // result (submitted as 0 — the routed value must overwrite it).
  char rbuf[64] = {};
  std::vector<RingOp> ops;
  ops.push_back(RingOp{SyscallReq{SegmentGetLenReq{ce}}, kRingLinked});
  ops.push_back(
      RingOp{SyscallReq{SegmentReadReq{ce, rbuf, 0, 0}}, 0, RingSlot::kLen, RingSlot::kLen});
  std::vector<RingCompletion> done = RunChain(ring, std::move(ops));
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(std::get<SegmentGetLenRes>(done[0].res).len, 48u);
  EXPECT_EQ(std::get<SegmentReadRes>(done[1].res).status, Status::kOk);
  EXPECT_EQ(memcmp(rbuf, pattern, 48), 0) << "routed length must cover the whole segment";
}

TEST_F(RingTest, DependentChainCostsNoExtraLockRound) {
  ObjectId ring = MakeRing();
  ObjectId seg = MakeSegment(Label(), 64);
  ContainerEntry ce = RootEntry(seg);
  ContainerEntry re = RootEntry(ring);
  char rbuf[64] = {};

  // Reference: the equivalent synchronous batch is one group, ONE lock.
  SyscallReq sreqs[2] = {SyscallReq{SegmentGetLenReq{ce}},
                         SyscallReq{SegmentReadReq{ce, rbuf, 0, 8}}};
  SyscallRes sres[2];
  uint64_t sync_locks = Acquisitions([&] {
    ASSERT_EQ(kernel_->SubmitBatch(init_, sreqs, sres), Status::kOk);
  });
  EXPECT_EQ(sync_locks, 1u);

  // Ring path. sys_ring_submit itself costs a fixed two rounds (entry
  // validation + the submit-vs-destroy liveness probe); completion is
  // polled through ring_completed_ticket, which reads only the leaf-locked
  // ring state — NO TableLock — so the counter delta isolates the chain.
  auto run_ring = [&](std::vector<RingOp> ops) {
    uint64_t locks = Acquisitions([&] {
      Result<uint64_t> t = kernel_->sys_ring_submit(init_, re, std::move(ops));
      ASSERT_TRUE(t.ok()) << StatusName(t.status());
      while (kernel_->ring_completed_ticket(ring) < t.value()) {
        std::this_thread::yield();
      }
    });
    Result<std::vector<RingCompletion>> c = kernel_->sys_ring_reap(init_, re, 0);
    EXPECT_TRUE(c.ok());
    for (const RingCompletion& done : c.value()) {
      EXPECT_EQ(ResStatus(done.res), Status::kOk);
    }
    return locks;
  };

  std::vector<RingOp> single;
  single.push_back(RingOp{SyscallReq{SegmentGetLenReq{ce}}});
  uint64_t single_locks = run_ring(std::move(single));

  std::vector<RingOp> chain;
  chain.push_back(RingOp{SyscallReq{SegmentGetLenReq{ce}}, kRingLinked});
  chain.push_back(
      RingOp{SyscallReq{SegmentReadReq{ce, rbuf, 0, 0}}, 0, RingSlot::kLen, RingSlot::kLen});
  uint64_t chain_locks = run_ring(std::move(chain));

  // The acceptance property: the dependent read rides the SAME worker-side
  // group lock as the get_len — a two-op linked chain costs exactly what a
  // one-op submission costs, which is the sync batch's one group round plus
  // the fixed submit overhead.
  EXPECT_EQ(chain_locks, single_locks);
  EXPECT_EQ(chain_locks, sync_locks + 2);
}

TEST_F(RingTest, MidChainFailureCancelsOnlyTheChain) {
  ObjectId ring = MakeRing();
  ObjectId seg = MakeSegment(Label(), 64);
  ContainerEntry ce = RootEntry(seg);
  char buf[8] = {};
  // [get_len →link] [read out-of-range →link] [write (cancelled)] then an
  // UNLINKED read that must still execute.
  std::vector<RingOp> ops;
  ops.push_back(RingOp{SyscallReq{SegmentGetLenReq{ce}}, kRingLinked});
  ops.push_back(RingOp{SyscallReq{SegmentReadReq{ce, buf, 10000, 8}}, kRingLinked});
  ops.push_back(RingOp{SyscallReq{SegmentWriteReq{ce, buf, 0, 8}}});
  ops.push_back(RingOp{SyscallReq{SegmentReadReq{ce, buf, 0, 8}}});
  std::vector<RingCompletion> done = RunChain(ring, std::move(ops));
  ASSERT_EQ(done.size(), 4u);
  EXPECT_EQ(std::get<SegmentGetLenRes>(done[0].res).status, Status::kOk);
  // The failing entry keeps its own distinct status...
  EXPECT_EQ(std::get<SegmentReadRes>(done[1].res).status, Status::kRange);
  // ...its linked successor is cancelled, unexecuted...
  EXPECT_EQ(std::get<SegmentWriteRes>(done[2].res).status, Status::kCancelled);
  // ...and the first entry past the chain runs normally.
  EXPECT_EQ(std::get<SegmentReadRes>(done[3].res).status, Status::kOk);
}

TEST_F(RingTest, CancellationCascadesDownLongChains) {
  ObjectId ring = MakeRing();
  ObjectId seg = MakeSegment(Label(), 64);
  ContainerEntry ce = RootEntry(seg);
  char buf[8] = {};
  std::vector<RingOp> ops;
  ops.push_back(RingOp{SyscallReq{SegmentReadReq{ce, buf, 10000, 8}}, kRingLinked});
  ops.push_back(RingOp{SyscallReq{SegmentWriteReq{ce, buf, 0, 8}}, kRingLinked});
  ops.push_back(RingOp{SyscallReq{SegmentWriteReq{ce, buf, 8, 8}}, kRingLinked});
  ops.push_back(RingOp{SyscallReq{SegmentGetLenReq{ce}}});
  std::vector<RingCompletion> done = RunChain(ring, std::move(ops));
  ASSERT_EQ(done.size(), 4u);
  EXPECT_EQ(std::get<SegmentReadRes>(done[0].res).status, Status::kRange);
  EXPECT_EQ(std::get<SegmentWriteRes>(done[1].res).status, Status::kCancelled);
  EXPECT_EQ(std::get<SegmentWriteRes>(done[2].res).status, Status::kCancelled);
  EXPECT_EQ(std::get<SegmentGetLenRes>(done[3].res).status, Status::kCancelled);
}

TEST_F(RingTest, CapacityBackpressureReturnsAgain) {
  ObjectId ring = MakeRing(/*capacity=*/4);
  ObjectId seg = MakeSegment(Label(), 64);
  ContainerEntry ce = RootEntry(seg);
  ContainerEntry re = RootEntry(ring);
  char buf[8] = {};
  auto make_ops = [&](size_t n) {
    std::vector<RingOp> ops;
    for (size_t i = 0; i < n; ++i) {
      ops.push_back(RingOp{SyscallReq{SegmentReadReq{ce, buf, 0, 8}}});
    }
    return ops;
  };
  // More ops than capacity in one go: rejected outright.
  EXPECT_EQ(kernel_->sys_ring_submit(init_, re, make_ops(5)).status(), Status::kAgain);
  // Fill to 3 of 4...
  Result<uint64_t> t = kernel_->sys_ring_submit(init_, re, make_ops(3));
  ASSERT_TRUE(t.ok());
  // ...completed-but-unreaped ops still hold their slots.
  ASSERT_EQ(kernel_->sys_ring_wait(init_, re, t.value(), 5000), Status::kOk);
  EXPECT_EQ(kernel_->sys_ring_submit(init_, re, make_ops(2)).status(), Status::kAgain);
  // Reaping frees them.
  Result<std::vector<RingCompletion>> c = kernel_->sys_ring_reap(init_, re, 0);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c.value().size(), 3u);
  EXPECT_TRUE(kernel_->sys_ring_submit(init_, re, make_ops(2)).ok());
}

TEST_F(RingTest, NestedRingAndGateOpsRejected) {
  ObjectId ring = MakeRing();
  ContainerEntry re = RootEntry(ring);
  {
    std::vector<RingOp> ops;
    ops.push_back(RingOp{SyscallReq{RingReapReq{re, 0}}});
    EXPECT_EQ(kernel_->sys_ring_submit(init_, re, std::move(ops)).status(),
              Status::kInvalidArg);
  }
  {
    std::vector<RingOp> ops;
    ops.push_back(
        RingOp{SyscallReq{GateInvokeReq{re, Label(), Label(), Label()}}});
    EXPECT_EQ(kernel_->sys_ring_submit(init_, re, std::move(ops)).status(),
              Status::kInvalidArg);
  }
  {
    // Unbounded blocking ops are rejected: an indefinite futex wait would
    // pin a pool worker until an unrelated wake. Bounded waits are fine.
    ObjectId seg = MakeSegment(Label(), 64);
    std::vector<RingOp> ops;
    ops.push_back(RingOp{SyscallReq{FutexWaitReq{RootEntry(seg), 0, 1, 0}}});
    EXPECT_EQ(kernel_->sys_ring_submit(init_, re, std::move(ops)).status(),
              Status::kInvalidArg);
    std::vector<RingOp> bounded;
    bounded.push_back(RingOp{SyscallReq{FutexWaitReq{RootEntry(seg), 0, 1, 20}}});
    std::vector<RingCompletion> done = RunChain(ring, std::move(bounded));
    ASSERT_EQ(done.size(), 1u);
    // The word is 0, expected 1 → immediate kAgain from the worker.
    EXPECT_EQ(std::get<FutexWaitRes>(done[0].res).status, Status::kAgain);
  }
  {
    // Routing without a linked predecessor is rejected at submit.
    char buf[8] = {};
    std::vector<RingOp> ops;
    ops.push_back(RingOp{SyscallReq{SegmentGetLenReq{re}}});  // NOT linked
    ops.push_back(RingOp{SyscallReq{SegmentReadReq{re, buf, 0, 0}}, 0, RingSlot::kLen,
                         RingSlot::kLen});
    EXPECT_EQ(kernel_->sys_ring_submit(init_, re, std::move(ops)).status(),
              Status::kInvalidArg);
  }
}

TEST_F(RingTest, RingLabelRulesGateSubmitAndReap) {
  Result<CategoryId> c = kernel_->sys_cat_create(init_);
  ASSERT_TRUE(c.ok());
  // A tainted thread may not submit to (or reap) an untainted ring: both
  // mutate queue state observers could see — classic no-write-down.
  ObjectId ring = MakeRing();
  ContainerEntry re = RootEntry(ring);
  Label tainted(Level::k1, {{c.value(), Level::k3}});
  ObjectId leaker = kernel_->BootstrapThread(tainted, Label(Level::k3), "leaker");
  char buf[8] = {};
  std::vector<RingOp> ops;
  ops.push_back(RingOp{SyscallReq{SelfLocalReadReq{buf, 0, 8}}});
  EXPECT_EQ(kernel_->sys_ring_submit(leaker, re, ops).status(), Status::kLabelCheckFailed);
  EXPECT_EQ(kernel_->sys_ring_reap(leaker, re, 0).status(), Status::kLabelCheckFailed);

  // A public thread may not even observe a secret ring's completion state
  // (init owns c after cat_create, so it can build the secret container the
  // tainted thread then creates its ring in).
  Label secret(Level::k1, {{c.value(), Level::k3}});
  ObjectId sct = MakeContainer(secret);
  ObjectId secret_ring = MakeRing(0, sct, secret, leaker);
  ASSERT_NE(secret_ring, kInvalidObject);
  ObjectId pub = kernel_->BootstrapThread(Label(), Label(Level::k2), "public");
  EXPECT_EQ(kernel_->sys_ring_wait(pub, ContainerEntry{sct, secret_ring}, 0, 10),
            Status::kLabelCheckFailed);

  // Ops are re-checked against the SUBMITTER's labels at execution: a ring
  // everyone can use does not launder access to a secret segment (the
  // public thread submits; the worker executes with the PUBLIC thread's
  // labels and the kernel refuses, category ownership notwithstanding
  // anywhere else in the system).
  ObjectId secret_seg = MakeSegment(secret, 64, sct, leaker);
  std::vector<RingOp> steal;
  steal.push_back(
      RingOp{SyscallReq{SegmentReadReq{ContainerEntry{sct, secret_seg}, buf, 0, 8}}});
  Result<uint64_t> ticket = kernel_->sys_ring_submit(pub, re, std::move(steal));
  ASSERT_TRUE(ticket.ok()) << StatusName(ticket.status());
  ASSERT_EQ(kernel_->sys_ring_wait(pub, re, ticket.value(), 5000), Status::kOk);
  Result<std::vector<RingCompletion>> done = kernel_->sys_ring_reap(pub, re, 0);
  ASSERT_TRUE(done.ok());
  ASSERT_EQ(done.value().size(), 1u);
  EXPECT_EQ(std::get<SegmentReadRes>(done.value()[0].res).status, Status::kLabelCheckFailed);
}

TEST_F(RingTest, DestroyedRingFailsWaitersAndSubmitters) {
  ObjectId ct = MakeContainer(Label());
  CreateSpec spec;
  spec.container = ct;
  spec.label = Label();
  spec.descrip = "doomed";
  spec.quota = 16 * kPageSize;
  Result<ObjectId> ring = kernel_->sys_ring_create(init_, spec, 8);
  ASSERT_TRUE(ring.ok());
  ContainerEntry re{ct, ring.value()};
  // Park a slow op on the ring so queue state exists and a worker is busy.
  ObjectId seg = MakeSegment(Label(), 64);
  std::vector<RingOp> ops;
  ops.push_back(RingOp{SyscallReq{FutexWaitReq{RootEntry(seg), 0, 0, 300}}});
  Result<uint64_t> t = kernel_->sys_ring_submit(init_, re, std::move(ops));
  ASSERT_TRUE(t.ok());
  ASSERT_EQ(kernel_->sys_container_unref(init_, re), Status::kOk);
  // The object is gone: waiting resolves nothing (and any parked queue
  // state was torn down — the in-flight op's completion is dropped).
  EXPECT_EQ(kernel_->sys_ring_wait(init_, re, t.value(), 2000), Status::kNotFound);
}

TEST_F(RingTest, RingObjectSurvivesSerializeRestore) {
  ObjectId ring = MakeRing(/*capacity=*/17);
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(kernel_->SerializeObject(ring, &bytes));
  Kernel other;
  ASSERT_EQ(other.RestoreObject(bytes), Status::kOk);
  EXPECT_TRUE(other.ObjectExists(ring));
  // Byte-identical re-serialization proves the capacity (and everything
  // else) survived; queue state is volatile by design and starts empty.
  std::vector<uint8_t> bytes2;
  ASSERT_TRUE(other.SerializeObject(ring, &bytes2));
  EXPECT_EQ(bytes, bytes2);
}

// ---- proxy execution & the last-fault hint (the satellite regression) -------

class RingFaultHintTest : public RingTest {
 protected:
  size_t ShardOf(ObjectId id) const {
    return ObjectTable::ShardIndexFor(id, kernel_->object_table().shard_count());
  }
};

TEST_F(RingFaultHintTest, WorkerFaultsDoNotPolluteSubmitterHint) {
  // Build an AS with two mappings backed by segments in provably different
  // shards: if the worker's as_access through mapping B overwrote the
  // submitter's hint, the submitter's next fault through mapping A would
  // seed a lock set not covering A's segment and pay a widened retry
  // (2 rounds instead of the warm 1) — the exact regression pinned here.
  CreateSpec aspec;
  aspec.container = kernel_->root_container();
  aspec.label = Label();
  aspec.descrip = "as";
  Result<ObjectId> as = kernel_->sys_as_create(init_, aspec);
  ASSERT_TRUE(as.ok());

  ObjectId root = kernel_->root_container();
  // seg_a: lands in a shard disjoint from {init, as, root}; seg_b: any
  // other shard than seg_a's. Allocation ids are effectively random across
  // 16 shards, so a handful of attempts suffices.
  ObjectId seg_a = kInvalidObject;
  for (int i = 0; i < 256 && seg_a == kInvalidObject; ++i) {
    ObjectId cand = MakeSegment(Label(), kPageSize);
    if (ShardOf(cand) != ShardOf(init_) && ShardOf(cand) != ShardOf(as.value()) &&
        ShardOf(cand) != ShardOf(root)) {
      seg_a = cand;
    }
  }
  ASSERT_NE(seg_a, kInvalidObject);
  ObjectId seg_b = kInvalidObject;
  for (int i = 0; i < 256 && seg_b == kInvalidObject; ++i) {
    ObjectId cand = MakeSegment(Label(), kPageSize);
    if (ShardOf(cand) != ShardOf(seg_a)) {
      seg_b = cand;
    }
  }
  ASSERT_NE(seg_b, kInvalidObject);

  std::vector<Mapping> maps = {
      Mapping{0x1000, RootEntry(seg_a), 0, 1, kMapRead | kMapWrite},
      Mapping{0x2000, RootEntry(seg_b), 0, 1, kMapRead | kMapWrite}};
  ASSERT_EQ(kernel_->sys_as_set(init_, RootEntry(as.value()), maps), Status::kOk);
  ASSERT_EQ(kernel_->sys_self_set_as(init_, RootEntry(as.value())), Status::kOk);

  char buf[8] = {};
  // Warm the submitter's hint on mapping A.
  ASSERT_EQ(kernel_->sys_as_access(init_, 0x1000, buf, 8, false), Status::kOk);
  uint64_t warm = Acquisitions([&] {
    ASSERT_EQ(kernel_->sys_as_access(init_, 0x1008, buf, 8, false), Status::kOk);
  });
  ASSERT_EQ(warm, 1u) << "precondition: the hint is warm";

  // A worker faults through mapping B on the submitter's behalf.
  ObjectId ring = MakeRing();
  char wbuf[8] = {};
  std::vector<RingOp> ops;
  ops.push_back(RingOp{SyscallReq{AsAccessReq{0x2000, wbuf, 8, false}}});
  std::vector<RingCompletion> done = RunChain(ring, std::move(ops));
  ASSERT_EQ(done.size(), 1u);
  ASSERT_EQ(std::get<AsAccessRes>(done[0].res).status, Status::kOk);

  // The submitter's warm-hit guarantee must have survived: still ONE lock
  // round through mapping A (a polluted hint would cost a widened retry).
  uint64_t after_ring = Acquisitions([&] {
    ASSERT_EQ(kernel_->sys_as_access(init_, 0x1010, buf, 8, false), Status::kOk);
  });
  EXPECT_EQ(after_ring, 1u)
      << "ring worker polluted the submitter's last-fault hint";
}

// ---- multi-submitter stress (raced under TSan via the `ring` CI label) ------

TEST_F(RingTest, MultiSubmitterStress) {
  constexpr int kSubmitters = 4;
  constexpr int kRounds = 40;
  constexpr size_t kOpsPerRound = 6;

  ObjectId shared_seg = MakeSegment(Label(), kPageSize);
  std::vector<ObjectId> tids;
  std::vector<ObjectId> rings;
  std::vector<ObjectId> segs;
  for (int i = 0; i < kSubmitters; ++i) {
    ObjectId tid = kernel_->BootstrapThread(Label(), Label(Level::k2), "submitter");
    ASSERT_NE(tid, kInvalidObject);
    tids.push_back(tid);
    segs.push_back(MakeSegment(Label(), kPageSize));
    CreateSpec spec;
    spec.container = kernel_->root_container();
    spec.label = Label();
    spec.descrip = "stress-ring";
    spec.quota = 16 * kPageSize;
    Result<ObjectId> r = kernel_->sys_ring_create(tid, spec, 64);
    ASSERT_TRUE(r.ok());
    rings.push_back(r.value());
  }

  std::atomic<int> failures{0};
  std::vector<std::thread> hosts;
  for (int i = 0; i < kSubmitters; ++i) {
    ObjectId tid = tids[static_cast<size_t>(i)];
    ObjectId ring = rings[static_cast<size_t>(i)];
    ObjectId own = segs[static_cast<size_t>(i)];
    hosts.push_back(RunOnHostThread(kernel_.get(), tid, [&, tid, ring, own] {
      ContainerEntry re = RootEntry(ring);
      ContainerEntry oe = RootEntry(own);
      ContainerEntry se = RootEntry(shared_seg);
      char buf[64] = {};
      for (int round = 0; round < kRounds; ++round) {
        std::vector<RingOp> ops;
        for (size_t k = 0; k < kOpsPerRound; k += 2) {
          // A linked write→read pair on the private segment, interleaved
          // with contended reads of the shared one.
          ops.push_back(RingOp{SyscallReq{SegmentWriteReq{oe, buf, 8 * k, 8}}, kRingLinked});
          ops.push_back(RingOp{SyscallReq{SegmentReadReq{se, buf + 8 * k, 0, 8}}});
        }
        Result<uint64_t> t = kernel_->sys_ring_submit(tid, re, std::move(ops));
        if (!t.ok()) {
          failures.fetch_add(1);
          return;
        }
        // Overlap: the submitter keeps issuing its own syscalls while the
        // worker drains — exactly the concurrent-identity case the proxy
        // execution rules exist for.
        char probe[8] = {};
        if (kernel_->sys_segment_read(tid, se, probe, 0, 8) != Status::kOk) {
          failures.fetch_add(1);
          return;
        }
        if (kernel_->sys_ring_wait(tid, re, t.value(), 10000) != Status::kOk) {
          failures.fetch_add(1);
          return;
        }
        Result<std::vector<RingCompletion>> done = kernel_->sys_ring_reap(tid, re, 0);
        if (!done.ok() || done.value().size() != kOpsPerRound) {
          failures.fetch_add(1);
          return;
        }
        for (const RingCompletion& cmpl : done.value()) {
          if (ResStatus(cmpl.res) != Status::kOk) {
            failures.fetch_add(1);
            return;
          }
        }
      }
    }));
  }
  for (std::thread& h : hosts) {
    h.join();
  }
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace histar
