// Container hierarchy, container entries, and deallocation (paper §3.2).
#include <gtest/gtest.h>

#include "tests/kernel/kernel_test_util.h"

namespace histar {
namespace {

class ContainerTest : public KernelTest {};

TEST_F(ContainerTest, CreateAndListChildren) {
  ObjectId dir = MakeContainer(Label());
  ObjectId seg = MakeSegment(Label(), 10, dir);
  Result<std::vector<ObjectId>> kids = kernel_->sys_container_list(init_, dir);
  ASSERT_TRUE(kids.ok());
  ASSERT_EQ(kids.value().size(), 1u);
  EXPECT_EQ(kids.value()[0], seg);
}

TEST_F(ContainerTest, GetParentWalksUp) {
  ObjectId a = MakeContainer(Label());
  ObjectId b = MakeContainer(Label(), a, 1 << 16);
  Result<ObjectId> p = kernel_->sys_container_get_parent(init_, b);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.value(), a);
  Result<ObjectId> p2 = kernel_->sys_container_get_parent(init_, a);
  ASSERT_TRUE(p2.ok());
  EXPECT_EQ(p2.value(), kernel_->root_container());
}

TEST_F(ContainerTest, RootFakeParentUnobservable) {
  // "The root container has a fake parent labeled {3}" — get_parent fails.
  Result<ObjectId> p = kernel_->sys_container_get_parent(init_, kernel_->root_container());
  EXPECT_FALSE(p.ok());
}

TEST_F(ContainerTest, RootCannotBeUnreferenced) {
  EXPECT_EQ(kernel_->sys_container_unref(
                init_, ContainerEntry{kernel_->root_container(), kernel_->root_container()}),
            Status::kInvalidArg);
}

TEST_F(ContainerTest, UnrefDestroysObject) {
  ObjectId seg = MakeSegment(Label(), 10);
  ASSERT_TRUE(kernel_->ObjectExists(seg));
  ASSERT_EQ(kernel_->sys_container_unref(init_, RootEntry(seg)), Status::kOk);
  EXPECT_FALSE(kernel_->ObjectExists(seg));
}

TEST_F(ContainerTest, UnrefRecursesIntoSubtree) {
  ObjectId a = MakeContainer(Label());
  ObjectId b = MakeContainer(Label(), a, 1 << 16);
  ObjectId seg = MakeSegment(Label(), 10, b);
  ASSERT_EQ(kernel_->sys_container_unref(init_, RootEntry(a)), Status::kOk);
  EXPECT_FALSE(kernel_->ObjectExists(a));
  EXPECT_FALSE(kernel_->ObjectExists(b));
  EXPECT_FALSE(kernel_->ObjectExists(seg));
}

TEST_F(ContainerTest, EntryRequiresActualLink) {
  ObjectId dir = MakeContainer(Label());
  ObjectId seg = MakeSegment(Label(), 10);  // lives in root, not dir
  char buf;
  EXPECT_EQ(kernel_->sys_segment_read(init_, ContainerEntry{dir, seg}, &buf, 0, 1),
            Status::kNotFound);
  EXPECT_EQ(kernel_->sys_segment_read(init_, RootEntry(seg), &buf, 0, 1), Status::kOk);
}

TEST_F(ContainerTest, EntryRequiresReadableContainer) {
  // A segment with open label inside an unreadable container is unreachable
  // via that container: container entries prevent probing.
  Result<CategoryId> c = kernel_->sys_cat_create(init_);
  ASSERT_TRUE(c.ok());
  Label secret(Level::k1, {{c.value(), Level::k3}});
  ObjectId dir = MakeContainer(secret);
  ObjectId seg = MakeSegment(Label(), 10, dir);
  ObjectId other = MakeThread(Label(), Label(Level::k2));
  char buf;
  EXPECT_EQ(kernel_->sys_segment_read(other, ContainerEntry{dir, seg}, &buf, 0, 1),
            Status::kLabelCheckFailed);
  // Even the existence query is blocked.
  EXPECT_FALSE(kernel_->sys_container_list(other, dir).ok());
}

TEST_F(ContainerTest, SelfEntryAllowsAccessWithoutParentRead) {
  // ⟨D,D⟩: a thread that can read D can use D even if D's parent is
  // unreadable (§3.2).
  Result<CategoryId> c = kernel_->sys_cat_create(init_);
  ASSERT_TRUE(c.ok());
  Label secret(Level::k1, {{c.value(), Level::k3}});
  ObjectId outer = MakeContainer(secret);
  ObjectId inner = MakeContainer(Label(), outer, 1 << 16);
  ObjectId other = MakeThread(Label(), Label(Level::k2));
  // Other cannot list outer...
  EXPECT_FALSE(kernel_->sys_container_list(other, outer).ok());
  // ...but can use inner via its self-entry.
  Result<std::vector<ObjectId>> kids = kernel_->sys_container_list(other, inner);
  EXPECT_TRUE(kids.ok()) << StatusName(kids.status());
}

TEST_F(ContainerTest, AvoidTypesBlocksCreationAndInherits) {
  ObjectId no_threads = MakeContainer(Label(), kInvalidObject, 1 << 20,
                                      TypeBit(ObjectType::kThread));
  CreateSpec spec;
  spec.container = no_threads;
  spec.quota = 64 * kPageSize;
  Result<ObjectId> t =
      kernel_->sys_thread_create(init_, spec, Label(), Label(Level::k2));
  EXPECT_FALSE(t.ok());
  EXPECT_EQ(t.status(), Status::kNoPerm);
  // Segments are still fine.
  EXPECT_NE(MakeSegment(Label(), 10, no_threads), kInvalidObject);
  // The restriction is inherited by descendants.
  ObjectId child = MakeContainer(Label(), no_threads, 1 << 18);
  spec.container = child;
  Result<ObjectId> t2 =
      kernel_->sys_thread_create(init_, spec, Label(), Label(Level::k2));
  EXPECT_FALSE(t2.ok());
  EXPECT_EQ(t2.status(), Status::kNoPerm);
}

TEST_F(ContainerTest, HardLinkRequiresFixedQuota) {
  ObjectId dir = MakeContainer(Label());
  ObjectId seg = MakeSegment(Label(), 10);
  EXPECT_EQ(kernel_->sys_container_link(init_, dir, RootEntry(seg)), Status::kNoPerm);
  ASSERT_EQ(kernel_->sys_obj_set_fixed_quota(init_, RootEntry(seg)), Status::kOk);
  EXPECT_EQ(kernel_->sys_container_link(init_, dir, RootEntry(seg)), Status::kOk);
  // Linked twice: object survives removal of one link.
  ASSERT_EQ(kernel_->sys_container_unref(init_, RootEntry(seg)), Status::kOk);
  EXPECT_TRUE(kernel_->ObjectExists(seg));
  char buf;
  EXPECT_EQ(kernel_->sys_segment_read(init_, ContainerEntry{dir, seg}, &buf, 0, 1), Status::kOk);
  ASSERT_EQ(kernel_->sys_container_unref(init_, ContainerEntry{dir, seg}), Status::kOk);
  EXPECT_FALSE(kernel_->ObjectExists(seg));
}

TEST_F(ContainerTest, FixedQuotaForbidsQuotaMove) {
  ObjectId seg = MakeSegment(Label(), 10);
  ASSERT_EQ(kernel_->sys_obj_set_fixed_quota(init_, RootEntry(seg)), Status::kOk);
  EXPECT_EQ(kernel_->sys_quota_move(init_, kernel_->root_container(), seg, 4096),
            Status::kImmutable);
}

TEST_F(ContainerTest, HardLinkCannotExceedClearance) {
  // T can prolong S's life only if L_S ⊑ C_T (§3.2).
  Result<CategoryId> c = kernel_->sys_cat_create(init_);
  ASSERT_TRUE(c.ok());
  Label secret(Level::k1, {{c.value(), Level::k3}});
  ObjectId seg = MakeSegment(secret, 10);
  ASSERT_EQ(kernel_->sys_obj_set_fixed_quota(init_, RootEntry(seg)), Status::kOk);
  ObjectId dir = MakeContainer(Label());
  ObjectId other = MakeThread(Label(), Label(Level::k2));  // clearance {2} < c3
  EXPECT_EQ(kernel_->sys_container_link(other, dir, RootEntry(seg)),
            Status::kLabelCheckFailed);
}

TEST_F(ContainerTest, DoubleChargeOnMultipleLinks) {
  ObjectId dir1 = MakeContainer(Label(), kInvalidObject, 100 * kPageSize);
  ObjectId dir2 = MakeContainer(Label(), kInvalidObject, 100 * kPageSize);
  CreateSpec spec;
  spec.container = dir1;
  spec.quota = 10 * kPageSize;
  spec.descrip = "shared";
  Result<ObjectId> seg = kernel_->sys_segment_create(init_, spec, 100);
  ASSERT_TRUE(seg.ok());
  ASSERT_EQ(kernel_->sys_obj_set_fixed_quota(init_, ContainerEntry{dir1, seg.value()}),
            Status::kOk);
  Result<uint64_t> before = kernel_->sys_obj_get_quota(init_, RootEntry(dir2));
  ASSERT_EQ(kernel_->sys_container_link(init_, dir2, ContainerEntry{dir1, seg.value()}),
            Status::kOk);
  // dir2 is now charged the segment's entire quota too. Verify indirectly:
  // fill dir2 to the brim and observe reduced headroom.
  CreateSpec fill;
  fill.container = dir2;
  fill.quota = 91 * kPageSize;  // would fit without the double charge
  Result<ObjectId> over = kernel_->sys_segment_create(init_, fill, 10);
  EXPECT_FALSE(over.ok());
  EXPECT_EQ(over.status(), Status::kQuotaExceeded);
  (void)before;
}

TEST_F(ContainerTest, PreauthorizedDeallocationRequiresOwnership) {
  // §3.2: creating D inside D' with L_D(c) < L_D'(c) requires owning c,
  // because deleting D would otherwise leak from writers-of-D' to users-of-D.
  Result<CategoryId> c = kernel_->sys_cat_create(init_);
  ASSERT_TRUE(c.ok());
  Label high(Level::k1, {{c.value(), Level::k3}});
  ObjectId outer = MakeContainer(high);

  // A thread tainted c3 (not owner) cannot create a less-tainted container
  // inside outer: L ⊑ C_T holds but L_T ⊑ L fails (3 > 1).
  Label tl(Level::k1, {{c.value(), Level::k3}});
  Label tc(Level::k2, {{c.value(), Level::k3}});
  ObjectId worker = MakeThread(tl, tc);
  CreateSpec spec;
  spec.container = outer;
  spec.label = Label();  // default-1 in c: less tainted than outer
  spec.quota = 4 * kPageSize;
  Result<ObjectId> bad = kernel_->sys_container_create(worker, spec, 0);
  EXPECT_FALSE(bad.ok());
  // The owner (init, holding c⋆) may do exactly this.
  Result<ObjectId> good = kernel_->sys_container_create(init_, spec, 0);
  EXPECT_TRUE(good.ok()) << StatusName(good.status());
}

}  // namespace
}  // namespace histar
