// Lock-accounting tests for the batched syscall ABI (PR 3): the acceptance
// property is that a same-shard batch performs AT MOST ONE TableLock
// acquisition, where the per-call path pays one per syscall. The counter
// behind these assertions lives in ObjectTable (set_lock_accounting /
// lock_acquisitions) and is off outside tests, so the fast path carries no
// shared atomic.
//
// Also pinned here: the per-thread last-fault hint collapses sys_as_access's
// footprint-discovery loop to one lock round once warm, and invalidation on
// remap keeps the hint from going stale.
#include <gtest/gtest.h>

#include "tests/kernel/kernel_test_util.h"

namespace histar {
namespace {

class BatchLockTest : public KernelTest {
 protected:
  // Lock acquisitions performed by `fn` alone.
  template <typename Fn>
  uint64_t Acquisitions(Fn&& fn) {
    const ObjectTable& table = kernel_->object_table();
    table.set_lock_accounting(true);
    uint64_t before = table.lock_acquisitions();
    fn();
    uint64_t after = table.lock_acquisitions();
    table.set_lock_accounting(false);
    return after - before;
  }
};

TEST_F(BatchLockTest, SameShardBatchTakesExactlyOneLock) {
  ObjectId seg = MakeSegment(Label(), 256);
  ContainerEntry ce = RootEntry(seg);
  char buf[8] = {};
  constexpr size_t kN = 16;
  SyscallReq reqs[kN];
  SyscallRes res[kN];
  for (size_t i = 0; i < kN; ++i) {
    reqs[i] = SegmentReadReq{ce, buf, 8 * i, 8};
  }
  // Every entry names the same ⟨D,O⟩ and the same self, so the whole batch
  // is one group over one shard set: exactly one TableLock acquisition —
  // the acceptance criterion of the batch ABI.
  uint64_t n = Acquisitions([&] {
    ASSERT_EQ(kernel_->SubmitBatch(init_, reqs, res), Status::kOk);
  });
  EXPECT_EQ(n, 1u);
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(std::get<SegmentReadRes>(res[i]).status, Status::kOk);
  }
}

TEST_F(BatchLockTest, PerCallPathPaysOneLockPerSyscall) {
  ObjectId seg = MakeSegment(Label(), 256);
  ContainerEntry ce = RootEntry(seg);
  char buf[8] = {};
  constexpr uint64_t kN = 16;
  uint64_t n = Acquisitions([&] {
    for (uint64_t i = 0; i < kN; ++i) {
      ASSERT_EQ(kernel_->sys_segment_read(init_, ce, buf, 8 * i, 8), Status::kOk);
    }
  });
  // One acquisition per legacy call (each is a one-element batch): the
  // 16x spread against the batched case above is the whole point.
  EXPECT_EQ(n, kN);
}

TEST_F(BatchLockTest, MixedReadWriteBatchStillOneLock) {
  ObjectId seg = MakeSegment(Label(), 256);
  ContainerEntry ce = RootEntry(seg);
  char buf[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  SyscallReq reqs[4] = {SyscallReq{SegmentWriteReq{ce, buf, 0, 8}},
                        SyscallReq{SegmentReadReq{ce, buf, 0, 8}},
                        SyscallReq{SegmentWriteReq{ce, buf, 8, 8}},
                        SyscallReq{SegmentGetLenReq{ce}}};
  SyscallRes res[4];
  // Any mutating member escalates the single group lock to exclusive; it is
  // still one acquisition.
  uint64_t n = Acquisitions([&] {
    ASSERT_EQ(kernel_->SubmitBatch(init_, reqs, res), Status::kOk);
  });
  EXPECT_EQ(n, 1u);
}

TEST_F(BatchLockTest, CreateBatchPaysOneGroupLockPlusIdProbes) {
  CreateSpec spec;
  spec.container = kernel_->root_container();
  spec.label = Label();
  spec.descrip = "b";
  spec.quota = kObjectOverheadBytes + 64 + kPageSize;
  constexpr size_t kN = 4;
  SyscallReq reqs[kN];
  SyscallRes res[kN];
  for (size_t i = 0; i < kN; ++i) {
    reqs[i] = SegmentCreateReq{spec, 64};
  }
  // Each create preallocates its object id before the group lock
  // (AllocObjectId probes the candidate's shard: one brief shared lock
  // each, since the cipher allocator never collides in a fresh kernel);
  // the bodies then share ONE group lock.
  uint64_t n = Acquisitions([&] {
    ASSERT_EQ(kernel_->SubmitBatch(init_, reqs, res), Status::kOk);
  });
  EXPECT_EQ(n, 1u + kN);
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(std::get<SegmentCreateRes>(res[i]).status, Status::kOk);
  }
}

TEST_F(BatchLockTest, UnbatchableEntrySplitsGroupsButCompletes) {
  ObjectId seg = MakeSegment(Label(), 64);
  ContainerEntry ce = RootEntry(seg);
  uint64_t word = 0;
  SyscallReq reqs[3] = {SyscallReq{SegmentWriteReq{ce, &word, 0, 8}},
                        SyscallReq{FutexWakeReq{ce, 0, 1}},
                        SyscallReq{SegmentReadReq{ce, &word, 0, 8}}};
  SyscallRes res[3];
  uint64_t n = Acquisitions([&] {
    ASSERT_EQ(kernel_->SubmitBatch(init_, reqs, res), Status::kOk);
  });
  // group(write) + futex-wake's own validation lock + group(read): the
  // unbatchable middle entry costs its pre-batch footprint, no more.
  EXPECT_EQ(n, 3u);
}

// ---- lock-free read path (PR 6) ---------------------------------------------
//
// The epoch-protected published index drops the warm read path's lock count
// from one to ZERO: a batch (or one-element legacy call) of pure reads
// resolves ⟨D,O⟩ entries and observes labels/quota/len/links with no
// TableLock at all. These pins are the PR 6 acceptance criteria.

TEST_F(BatchLockTest, LockFreeReadBatchTakesZeroLocks) {
  ObjectId seg = MakeSegment(Label(), 256);
  ContainerEntry ce = RootEntry(seg);
  SyscallReq reqs[4] = {SyscallReq{ObjGetTypeReq{ce}},
                        SyscallReq{ObjGetQuotaReq{ce}},
                        SyscallReq{SegmentGetLenReq{ce}},
                        SyscallReq{ContainerHasReq{kernel_->root_container(), seg}}};
  SyscallRes res[4];
  uint64_t n = Acquisitions([&] {
    ASSERT_EQ(kernel_->SubmitBatch(init_, reqs, res), Status::kOk);
  });
  EXPECT_EQ(n, 0u);
  EXPECT_EQ(std::get<ObjGetTypeRes>(res[0]).type, ObjectType::kSegment);
  EXPECT_EQ(std::get<SegmentGetLenRes>(res[2]).len, 256u);
  EXPECT_TRUE(std::get<ContainerHasRes>(res[3]).has);
}

TEST_F(BatchLockTest, PerCallLockFreeReadsTakeZeroLocks) {
  ObjectId seg = MakeSegment(Label(), 256);
  ContainerEntry ce = RootEntry(seg);
  // Legacy one-element calls route through the same SubmitBatch grouping,
  // so each pure read is its own lock-free group: zero acquisitions.
  uint64_t n = Acquisitions([&] {
    Result<uint64_t> len = kernel_->sys_segment_get_len(init_, ce);
    ASSERT_TRUE(len.ok());
    ASSERT_EQ(len.value(), 256u);
    Result<ObjectType> ty = kernel_->sys_obj_get_type(init_, ce);
    ASSERT_TRUE(ty.ok());
    Result<bool> has = kernel_->sys_container_has(init_, kernel_->root_container(), seg);
    ASSERT_TRUE(has.ok());
    ASSERT_TRUE(has.value());
  });
  EXPECT_EQ(n, 0u);
}

TEST_F(BatchLockTest, MutatingEntrySplitsOffLockFreeReads) {
  ObjectId seg = MakeSegment(Label(), 256);
  ContainerEntry ce = RootEntry(seg);
  char buf[8] = {};
  SyscallReq reqs[3] = {SyscallReq{SegmentGetLenReq{ce}},
                        SyscallReq{SegmentWriteReq{ce, buf, 0, 8}},
                        SyscallReq{SegmentGetLenReq{ce}}};
  SyscallRes res[3];
  // lockfree(get_len) + locked(write) + lockfree(get_len): only the write
  // group pays a TableLock.
  uint64_t n = Acquisitions([&] {
    ASSERT_EQ(kernel_->SubmitBatch(init_, reqs, res), Status::kOk);
  });
  EXPECT_EQ(n, 1u);
}

TEST_F(BatchLockTest, WarmRegistryLeqTakesZeroRegistryLocks) {
  LabelRegistry& reg = kernel_->label_registry();
  Label a(Level::k0);
  Label b(Level::k2);
  LabelId ia = reg.Intern(a);
  LabelId ib = reg.Intern(b);
  ASSERT_TRUE(reg.Leq(ia, ib));  // memo-miss: recorded under the shard mutex

  reg.set_lock_accounting(true);
  uint64_t before = reg.lock_acquisitions();
  ASSERT_TRUE(reg.Leq(ia, ib));   // warm hit
  ASSERT_FALSE(reg.Leq(ib, ia));  // also memoized by the first call? no —
                                  // distinct key; prime it...
  uint64_t primed = reg.lock_acquisitions();
  ASSERT_FALSE(reg.Leq(ib, ia));  // ...now warm
  uint64_t after = reg.lock_acquisitions();
  reg.set_lock_accounting(false);
  EXPECT_EQ(before, primed - 1) << "first (ib,ia) probe misses once";
  EXPECT_EQ(primed, after) << "warm Leq must take zero registry locks";
}

// ---- last-fault hint (the sys_as_access satellite) --------------------------

class FaultHintTest : public KernelTest {
 protected:
  // Builds an AS mapping va 0x1000 → `seg` and binds it to init.
  void MapSegment(ObjectId seg) {
    CreateSpec aspec;
    aspec.container = kernel_->root_container();
    aspec.label = Label();
    aspec.descrip = "as";
    Result<ObjectId> as = kernel_->sys_as_create(init_, aspec);
    ASSERT_TRUE(as.ok());
    as_ = as.value();
    std::vector<Mapping> maps = {
        Mapping{0x1000, RootEntry(seg), 0, 1, kMapRead | kMapWrite}};
    ASSERT_EQ(kernel_->sys_as_set(init_, RootEntry(as_), maps), Status::kOk);
    ASSERT_EQ(kernel_->sys_self_set_as(init_, RootEntry(as_)), Status::kOk);
  }

  template <typename Fn>
  uint64_t Acquisitions(Fn&& fn) {
    const ObjectTable& table = kernel_->object_table();
    table.set_lock_accounting(true);
    uint64_t before = table.lock_acquisitions();
    fn();
    uint64_t after = table.lock_acquisitions();
    table.set_lock_accounting(false);
    return after - before;
  }

  ObjectId as_ = kInvalidObject;
};

TEST_F(FaultHintTest, WarmAccessPaysExactlyOneLockRound) {
  ObjectId seg = MakeSegment(Label(), kPageSize);
  MapSegment(seg);
  char buf[8] = {};
  // Cold: the discovery loop derives AS then segment — up to three targeted
  // rounds (each one TableLock).
  uint64_t cold = Acquisitions([&] {
    ASSERT_EQ(kernel_->sys_as_access(init_, 0x1000, buf, 8, false), Status::kOk);
  });
  EXPECT_GE(cold, 1u);
  EXPECT_LE(cold, 3u);
  // Warm: the last-fault hint seeds a covering round 0 — exactly one
  // acquisition, read or write.
  uint64_t warm_read = Acquisitions([&] {
    ASSERT_EQ(kernel_->sys_as_access(init_, 0x1008, buf, 8, false), Status::kOk);
  });
  EXPECT_EQ(warm_read, 1u);
  uint64_t warm_write = Acquisitions([&] {
    ASSERT_EQ(kernel_->sys_as_access(init_, 0x1010, buf, 8, true), Status::kOk);
  });
  EXPECT_EQ(warm_write, 1u);
}

TEST_F(FaultHintTest, RemapInvalidatesHintButStaysCorrect) {
  ObjectId seg_a = MakeSegment(Label(), kPageSize);
  ObjectId seg_b = MakeSegment(Label(), kPageSize);
  MapSegment(seg_a);
  char mark = 'A';
  ASSERT_EQ(kernel_->sys_as_access(init_, 0x1000, &mark, 1, true), Status::kOk);

  // Remap the same VA onto segment B (sys_as_set clears the caller's hint).
  std::vector<Mapping> maps = {
      Mapping{0x1000, RootEntry(seg_b), 0, 1, kMapRead | kMapWrite}};
  ASSERT_EQ(kernel_->sys_as_set(init_, RootEntry(as_), maps), Status::kOk);

  char got = 0;
  ASSERT_EQ(kernel_->sys_as_access(init_, 0x1000, &got, 1, false), Status::kOk);
  EXPECT_EQ(got, 0) << "read must hit the fresh segment B, not the stale hint";
  char direct = 0;
  ASSERT_EQ(kernel_->sys_segment_read(init_, RootEntry(seg_a), &direct, 0, 1), Status::kOk);
  EXPECT_EQ(direct, 'A') << "the original write landed in segment A";
}

TEST_F(FaultHintTest, StaleHintFromResizeNeverMisreads) {
  ObjectId seg = MakeSegment(Label(), kPageSize);
  MapSegment(seg);
  char buf[8] = {};
  ASSERT_EQ(kernel_->sys_as_access(init_, 0x1000, buf, 8, false), Status::kOk);
  // Shrink the backing segment; the hinted translation is now out of range
  // and the access must fail with kRange (the resize cleared the caller's
  // hint, but even an uncleaned hint re-derives under the lock).
  ASSERT_EQ(kernel_->sys_segment_resize(init_, RootEntry(seg), 4), Status::kOk);
  EXPECT_EQ(kernel_->sys_as_access(init_, 0x1000, buf, 8, false), Status::kRange);
}

}  // namespace
}  // namespace histar
