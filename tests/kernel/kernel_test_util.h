// Shared fixture for kernel tests: a kernel with a bootstrap thread bound to
// the host test thread, plus helpers for the common label patterns.
#ifndef TESTS_KERNEL_KERNEL_TEST_UTIL_H_
#define TESTS_KERNEL_KERNEL_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <memory>

#include "src/kernel/kernel.h"
#include "src/kernel/thread_runner.h"

namespace histar {

class KernelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    kernel_ = std::make_unique<Kernel>();
    // The conventional starting point: label {1}, clearance {2}.
    init_ = kernel_->BootstrapThread(Label(Level::k1), Label(Level::k2), "init");
    ASSERT_NE(init_, kInvalidObject);
    CurrentThread::Set(init_);
  }

  void TearDown() override { CurrentThread::Set(kInvalidObject); }

  // Creates a plain segment of `len` bytes with label `l` in `parent`
  // (defaults to root), asserting success.
  ObjectId MakeSegment(const Label& l, uint64_t len, ObjectId parent = kInvalidObject,
                       ObjectId creator = kInvalidObject) {
    CreateSpec spec;
    spec.container = parent == kInvalidObject ? kernel_->root_container() : parent;
    spec.label = l;
    spec.descrip = "test-seg";
    spec.quota = kObjectOverheadBytes + len + kPageSize;
    Result<ObjectId> r =
        kernel_->sys_segment_create(creator == kInvalidObject ? init_ : creator, spec, len);
    EXPECT_TRUE(r.ok()) << StatusName(r.status());
    return r.ok() ? r.value() : kInvalidObject;
  }

  // Creates a container with label `l`, asserting success.
  ObjectId MakeContainer(const Label& l, ObjectId parent = kInvalidObject,
                         uint64_t quota = 1 << 20, uint32_t avoid = 0,
                         ObjectId creator = kInvalidObject) {
    CreateSpec spec;
    spec.container = parent == kInvalidObject ? kernel_->root_container() : parent;
    spec.label = l;
    spec.descrip = "test-ctr";
    spec.quota = quota;
    Result<ObjectId> r = kernel_->sys_container_create(
        creator == kInvalidObject ? init_ : creator, spec, avoid);
    EXPECT_TRUE(r.ok()) << StatusName(r.status());
    return r.ok() ? r.value() : kInvalidObject;
  }

  // Spawns a second kernel thread with the given labels (object only; the
  // test temporarily binds to it with CurrentThread to act as it).
  ObjectId MakeThread(const Label& l, const Label& c, ObjectId creator = kInvalidObject) {
    CreateSpec spec;
    spec.container = kernel_->root_container();
    spec.descrip = "test-thread";
    spec.quota = 128 * kPageSize;
    Result<ObjectId> r =
        kernel_->sys_thread_create(creator == kInvalidObject ? init_ : creator, spec, l, c);
    EXPECT_TRUE(r.ok()) << StatusName(r.status());
    return r.ok() ? r.value() : kInvalidObject;
  }

  ContainerEntry RootEntry(ObjectId o) const {
    return ContainerEntry{kernel_->root_container(), o};
  }

  std::unique_ptr<Kernel> kernel_;
  ObjectId init_ = kInvalidObject;
};

}  // namespace histar

#endif  // TESTS_KERNEL_KERNEL_TEST_UTIL_H_
