// The batched syscall ABI (PR 3), tested at the descriptor layer.
//
// Three properties pin the ABI:
//  1. Round-trip: EVERY SyscallReq and SyscallRes alternative survives
//     encode → decode → re-encode byte-identically, and the sample set
//     provably covers every alternative (a new syscall added without a
//     sample fails the coverage check here).
//  2. Equivalence: a one-element batch returns exactly what the legacy
//     sys_* wrapper returns — swept across the full §2.2 access matrix, so
//     descriptor dispatch cannot drift from the label semantics the matrix
//     test pins.
//  3. Completion semantics: entries execute in submission order, each
//     completion carries its own Status, and a failing entry does not stop
//     later entries (partial failure is per-entry).
#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "tests/kernel/kernel_test_util.h"

namespace histar {
namespace {

// ---- 1. round-trip property -------------------------------------------------

Label SampleLabel() {
  return Label(Level::k1, {{42, Level::k3}, {77, Level::kStar}, {9000, Level::k0}});
}

CreateSpec SampleSpec() {
  CreateSpec s;
  s.container = 0x1234;
  s.label = SampleLabel();
  s.descrip = "sample";
  s.quota = 4096;
  return s;
}

std::vector<SyscallReq> AllReqSamples() {
  char* buf = reinterpret_cast<char*>(uintptr_t{0xabcd0});
  ContainerEntry ce{7, 11};
  std::vector<SyscallReq> v;
  v.push_back(CatCreateReq{});
  v.push_back(SelfSetLabelReq{SampleLabel()});
  v.push_back(SelfSetClearanceReq{SampleLabel()});
  v.push_back(SelfGetLabelReq{});
  v.push_back(SelfGetClearanceReq{});
  v.push_back(SelfSetAsReq{ce});
  v.push_back(SelfGetAsReq{});
  v.push_back(SelfHaltReq{});
  v.push_back(ThreadCreateReq{SampleSpec(), SampleLabel(), SampleLabel()});
  v.push_back(ThreadAlertReq{ce, 15});
  v.push_back(SelfNextAlertReq{});
  v.push_back(SelfLocalReadReq{buf, 8, 16});
  v.push_back(SelfLocalWriteReq{buf, 8, 16});
  v.push_back(ContainerCreateReq{SampleSpec(), 0x3});
  v.push_back(ContainerUnrefReq{ce});
  v.push_back(ContainerGetParentReq{5});
  v.push_back(ContainerListReq{5});
  v.push_back(ContainerLinkReq{5, ce});
  v.push_back(ContainerHasReq{5, 6});
  v.push_back(ObjGetTypeReq{ce});
  v.push_back(ObjGetLabelReq{ce});
  v.push_back(ObjGetDescripReq{ce});
  v.push_back(ObjGetQuotaReq{ce});
  v.push_back(ObjGetMetadataReq{ce});
  v.push_back(ObjSetMetadataReq{ce, buf, 32});
  v.push_back(ObjSetFixedQuotaReq{ce});
  v.push_back(ObjSetImmutableReq{ce});
  v.push_back(QuotaMoveReq{5, 6, -128});
  v.push_back(SegmentCreateReq{SampleSpec(), 512});
  v.push_back(SegmentCopyReq{SampleSpec(), ce});
  v.push_back(SegmentResizeReq{ce, 256});
  v.push_back(SegmentGetLenReq{ce});
  v.push_back(SegmentReadReq{ce, buf, 4, 8});
  v.push_back(SegmentWriteReq{ce, buf, 4, 8});
  v.push_back(AsCreateReq{SampleSpec()});
  v.push_back(AsSetReq{ce, {Mapping{0x1000, ce, 1, 2, kMapRead | kMapWrite}}});
  v.push_back(AsGetReq{ce});
  v.push_back(AsAccessReq{0x2000, buf, 8, true});
  v.push_back(GateCreateReq{SampleSpec(), SampleLabel(), SampleLabel(), "entry", {1, 2, 3}});
  v.push_back(GateInvokeReq{ce, SampleLabel(), SampleLabel(), SampleLabel()});
  v.push_back(GateGetClosureReq{ce});
  v.push_back(FutexWaitReq{ce, 8, 42, 100});
  v.push_back(FutexWakeReq{ce, 8, 3});
  v.push_back(NetMacAddrReq{ce});
  v.push_back(NetTransmitReq{ce, ce, 0, 64});
  v.push_back(NetReceiveReq{ce, ce, 0, 64});
  v.push_back(NetWaitReq{ce, 250});
  v.push_back(ConsoleWriteReq{ce, "hello"});
  v.push_back(SyncReq{});
  v.push_back(SyncObjectReq{ce});
  v.push_back(SyncPagesReq{ce, 0, 4096});
  v.push_back(RingCreateReq{SampleSpec(), 32});
  // The nested-descriptor case: a submission whose ops embed SyscallReqs,
  // link flags and operand-routing slots (the get_len → read shape).
  v.push_back(RingSubmitReq{
      ce,
      {RingOp{SyscallReq{SegmentGetLenReq{ce}}, kRingLinked, RingSlot::kNone, RingSlot::kNone},
       RingOp{SyscallReq{SegmentReadReq{ce, buf, 0, 0}}, 0, RingSlot::kLen, RingSlot::kLen}}});
  v.push_back(RingWaitReq{ce, 17, 250});
  v.push_back(RingReapReq{ce, 8});
  v.push_back(TraceReadReq{512});
  return v;
}

std::vector<SyscallRes> AllResSamples() {
  ContainerEntry ce{7, 11};
  std::vector<SyscallRes> v;
  v.push_back(CatCreateRes{Status::kOk, 99});
  v.push_back(SelfSetLabelRes{Status::kLabelCheckFailed});
  v.push_back(SelfSetClearanceRes{Status::kOk});
  v.push_back(SelfGetLabelRes{Status::kOk, SampleLabel()});
  v.push_back(SelfGetClearanceRes{Status::kOk, SampleLabel()});
  v.push_back(SelfSetAsRes{Status::kOk});
  v.push_back(SelfGetAsRes{Status::kOk, ce});
  v.push_back(SelfHaltRes{Status::kOk});
  v.push_back(ThreadCreateRes{Status::kOk, 31});
  v.push_back(ThreadAlertRes{Status::kOk});
  v.push_back(SelfNextAlertRes{Status::kOk, 7});
  v.push_back(SelfLocalReadRes{Status::kRange});
  v.push_back(SelfLocalWriteRes{Status::kOk});
  v.push_back(ContainerCreateRes{Status::kOk, 32});
  v.push_back(ContainerUnrefRes{Status::kNotFound});
  v.push_back(ContainerGetParentRes{Status::kOk, 33});
  v.push_back(ContainerListRes{Status::kOk, {1, 2, 3}});
  v.push_back(ContainerLinkRes{Status::kExists});
  v.push_back(ContainerHasRes{Status::kOk, true});
  v.push_back(ObjGetTypeRes{Status::kOk, ObjectType::kGate});
  v.push_back(ObjGetLabelRes{Status::kOk, SampleLabel()});
  v.push_back(ObjGetDescripRes{Status::kOk, "descrip"});
  v.push_back(ObjGetQuotaRes{Status::kOk, 8192});
  v.push_back(ObjGetMetadataRes{Status::kOk, {1, 2, 3, 4}});
  v.push_back(ObjSetMetadataRes{Status::kOk});
  v.push_back(ObjSetFixedQuotaRes{Status::kOk});
  v.push_back(ObjSetImmutableRes{Status::kImmutable});
  v.push_back(QuotaMoveRes{Status::kQuotaExceeded});
  v.push_back(SegmentCreateRes{Status::kOk, 34});
  v.push_back(SegmentCopyRes{Status::kOk, 35});
  v.push_back(SegmentResizeRes{Status::kOk});
  v.push_back(SegmentGetLenRes{Status::kOk, 512});
  v.push_back(SegmentReadRes{Status::kOk});
  v.push_back(SegmentWriteRes{Status::kOk});
  v.push_back(AsCreateRes{Status::kOk, 36});
  v.push_back(AsSetRes{Status::kInvalidArg});
  v.push_back(AsGetRes{Status::kOk, {Mapping{0x1000, ce, 0, 4, kMapRead}}});
  v.push_back(AsAccessRes{Status::kNoPerm});
  v.push_back(GateCreateRes{Status::kOk, 37});
  v.push_back(GateInvokeRes{Status::kOk});
  v.push_back(GateGetClosureRes{Status::kOk, {9, 8}});
  v.push_back(FutexWaitRes{Status::kTimedOut});
  v.push_back(FutexWakeRes{Status::kOk, 2});
  v.push_back(NetMacAddrRes{Status::kOk, {1, 2, 3, 4, 5, 6}});
  v.push_back(NetTransmitRes{Status::kAgain});
  v.push_back(NetReceiveRes{Status::kOk, 60});
  v.push_back(NetWaitRes{Status::kOk});
  v.push_back(ConsoleWriteRes{Status::kOk});
  v.push_back(SyncRes{Status::kOk});
  v.push_back(SyncObjectRes{Status::kOk});
  v.push_back(SyncPagesRes{Status::kCrashed});
  v.push_back(RingCreateRes{Status::kOk, 38});
  v.push_back(RingSubmitRes{Status::kOk, 41});
  v.push_back(RingWaitRes{Status::kTimedOut});
  // Nested completions, including a cancelled op and an unfilled monostate
  // (the raw-index nested wire form must round-trip index 0 too).
  v.push_back(RingReapRes{
      Status::kOk,
      {RingCompletion{40, SyscallRes{SegmentGetLenRes{Status::kOk, 64}}},
       RingCompletion{41, SyscallRes{SegmentReadRes{Status::kCancelled}}},
       RingCompletion{42, SyscallRes{std::monostate{}}}}});
  // Flow-checked trace export: an event list plus the counted-but-withheld
  // tally (kernel.h sys_trace_read). code carries a Status as two's-
  // complement u32 — the negative value must survive the round trip.
  v.push_back(TraceReadRes{
      Status::kOk,
      /*total=*/5,
      /*withheld=*/2,
      {TraceEventWire{1234567, 42, 7, 0, 99, 3, 4096, 5, 6, 1,
                      static_cast<uint32_t>(-7), 12, /*gen=*/3},
       TraceEventWire{1234999, 8, 1, 2, 100, 3, 0, 0, 0, 4, 0, 0}}});
  return v;
}

TEST(SyscallAbi, EveryReqAlternativeRoundTrips) {
  std::vector<SyscallReq> samples = AllReqSamples();
  std::set<size_t> seen;
  for (const SyscallReq& req : samples) {
    seen.insert(req.index());
    std::vector<uint8_t> wire;
    EncodeReq(req, &wire);
    SyscallReq back = CatCreateReq{};
    size_t consumed = 0;
    ASSERT_TRUE(DecodeReq(wire.data(), wire.size(), &consumed, &back))
        << "alternative " << req.index();
    EXPECT_EQ(consumed, wire.size()) << "alternative " << req.index();
    EXPECT_EQ(back.index(), req.index());
    std::vector<uint8_t> wire2;
    EncodeReq(back, &wire2);
    EXPECT_EQ(wire, wire2) << "re-encode mismatch, alternative " << req.index();
  }
  // Coverage: the sample set exercises every alternative exactly once.
  EXPECT_EQ(samples.size(), kNumSyscallKinds);
  EXPECT_EQ(seen.size(), kNumSyscallKinds)
      << "a SyscallReq alternative has no round-trip sample";
}

TEST(SyscallAbi, EveryResAlternativeRoundTrips) {
  std::vector<SyscallRes> samples = AllResSamples();
  std::set<size_t> seen;
  for (const SyscallRes& res : samples) {
    seen.insert(res.index());
    std::vector<uint8_t> wire;
    EncodeRes(res, &wire);
    SyscallRes back;
    size_t consumed = 0;
    ASSERT_TRUE(DecodeRes(wire.data(), wire.size(), &consumed, &back))
        << "alternative " << res.index();
    EXPECT_EQ(consumed, wire.size());
    EXPECT_EQ(back.index(), res.index());
    std::vector<uint8_t> wire2;
    EncodeRes(back, &wire2);
    EXPECT_EQ(wire, wire2) << "re-encode mismatch, alternative " << res.index();
  }
  EXPECT_EQ(samples.size(), kNumSyscallKinds);
  EXPECT_EQ(seen.size(), kNumSyscallKinds)
      << "a SyscallRes alternative has no round-trip sample";
}

TEST(SyscallAbi, TruncatedDescriptorsFailCleanly) {
  for (const SyscallReq& req : AllReqSamples()) {
    std::vector<uint8_t> wire;
    EncodeReq(req, &wire);
    // Every strict prefix must decode to failure, never out-of-bounds.
    for (size_t cut = 0; cut < wire.size(); ++cut) {
      SyscallReq back = CatCreateReq{};
      size_t consumed = 0;
      bool decoded = DecodeReq(wire.data(), cut, &consumed, &back);
      if (decoded) {
        // A shorter *valid* descriptor can only happen if the alternative's
        // tail fields were variable-length — re-encoding must then consume
        // exactly what decode consumed, never the bytes we cut off.
        EXPECT_LE(consumed, cut);
      }
    }
  }
}

// ---- 2. equivalence: one-element batches vs legacy wrappers -----------------
//
// The same (thread level, object level) sweep as access_matrix_test.cc, but
// asserting that the explicit descriptor path and the legacy wrapper return
// identical statuses for observe (segment read) and modify (segment write).
using MatrixParam = std::tuple<Level, Level>;

class BatchEquivalence : public KernelTest,
                         public ::testing::WithParamInterface<MatrixParam> {};

TEST_P(BatchEquivalence, OneElementBatchMatchesLegacyWrapper) {
  auto [tl, ol] = GetParam();
  Result<CategoryId> c = kernel_->sys_cat_create(init_);
  ASSERT_TRUE(c.ok());

  Label obj_label(Level::k1, {{c.value(), ol}});
  ObjectId ct = MakeContainer(obj_label);
  ObjectId seg = MakeSegment(obj_label, 64, ct);

  Label thread_label(Level::k1, {{c.value(), tl}});
  Label thread_clear(Level::k2, {{c.value(), Level::k3}});
  ObjectId probe = kernel_->BootstrapThread(thread_label, thread_clear, "probe");
  ContainerEntry ce{ct, seg};

  char buf[8] = {};
  Status legacy_rd = kernel_->sys_segment_read(probe, ce, buf, 0, 8);
  Status legacy_wr = kernel_->sys_segment_write(probe, ce, buf, 0, 8);
  Status legacy_len = kernel_->sys_segment_get_len(probe, ce).status();
  Status legacy_quota = kernel_->sys_obj_get_quota(probe, ce).status();

  SyscallReq reqs[4] = {SyscallReq{SegmentReadReq{ce, buf, 0, 8}},
                        SyscallReq{SegmentWriteReq{ce, buf, 0, 8}},
                        SyscallReq{SegmentGetLenReq{ce}}, SyscallReq{ObjGetQuotaReq{ce}}};
  SyscallRes res[4];
  ASSERT_EQ(kernel_->SubmitBatch(probe, reqs, res), Status::kOk);

  EXPECT_EQ(std::get<SegmentReadRes>(res[0]).status, legacy_rd);
  EXPECT_EQ(std::get<SegmentWriteRes>(res[1]).status, legacy_wr);
  EXPECT_EQ(std::get<SegmentGetLenRes>(res[2]).status, legacy_len);
  EXPECT_EQ(std::get<ObjGetQuotaRes>(res[3]).status, legacy_quota);
  // Completion index i+1 answers request index i — the ABI invariant.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(res[i].index(), reqs[i].index() + 1);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllLevelPairs, BatchEquivalence,
    ::testing::Combine(::testing::Values(Level::kStar, Level::k0, Level::k1, Level::k2,
                                         Level::k3),
                       ::testing::Values(Level::k0, Level::k1, Level::k2, Level::k3)),
    [](const ::testing::TestParamInfo<MatrixParam>& info) {
      auto name = [](Level l) {
        switch (l) {
          case Level::kStar: return std::string("Star");
          case Level::k0: return std::string("L0");
          case Level::k1: return std::string("L1");
          case Level::k2: return std::string("L2");
          case Level::k3: return std::string("L3");
          default: return std::string("J");
        }
      };
      return "T" + name(std::get<0>(info.param)) + "_O" + name(std::get<1>(info.param));
    });

// ---- 3. completion semantics ------------------------------------------------

class SubmitBatchTest : public KernelTest {};

TEST_F(SubmitBatchTest, EntriesExecuteInSubmissionOrder) {
  ObjectId seg = MakeSegment(Label(), 64);
  ContainerEntry ce = RootEntry(seg);
  char wbuf[8] = {'b', 'a', 't', 'c', 'h', 'e', 'd', '!'};
  char rbuf[8] = {};
  SyscallReq reqs[2] = {SyscallReq{SegmentWriteReq{ce, wbuf, 0, 8}},
                        SyscallReq{SegmentReadReq{ce, rbuf, 0, 8}}};
  SyscallRes res[2];
  ASSERT_EQ(kernel_->SubmitBatch(init_, reqs, res), Status::kOk);
  EXPECT_EQ(std::get<SegmentWriteRes>(res[0]).status, Status::kOk);
  EXPECT_EQ(std::get<SegmentReadRes>(res[1]).status, Status::kOk);
  // The read, later in the batch, observes the earlier write.
  EXPECT_EQ(memcmp(rbuf, wbuf, 8), 0);
}

TEST_F(SubmitBatchTest, PartialFailureLaterEntriesStillExecute) {
  ObjectId seg = MakeSegment(Label(), 64);
  ContainerEntry ce = RootEntry(seg);
  char buf[8] = {};
  SyscallReq reqs[3] = {
      SyscallReq{SegmentWriteReq{ce, buf, 0, 8}},
      SyscallReq{SegmentReadReq{ce, buf, 1 << 20, 8}},  // out of range: fails
      SyscallReq{SegmentReadReq{ce, buf, 0, 8}}};
  SyscallRes res[3];
  ASSERT_EQ(kernel_->SubmitBatch(init_, reqs, res), Status::kOk);
  EXPECT_EQ(std::get<SegmentWriteRes>(res[0]).status, Status::kOk);
  EXPECT_EQ(std::get<SegmentReadRes>(res[1]).status, Status::kRange);
  // The failing middle entry did not stop the tail.
  EXPECT_EQ(std::get<SegmentReadRes>(res[2]).status, Status::kOk);
}

TEST_F(SubmitBatchTest, MixedBatchableAndUnbatchableEntries) {
  ObjectId seg = MakeSegment(Label(), 64);
  ContainerEntry ce = RootEntry(seg);
  uint64_t word = 0;
  // write (batchable) → futex wake (unbatchable, flushes the group) → read
  // (batchable again): all three complete, in order.
  SyscallReq reqs[3] = {SyscallReq{SegmentWriteReq{ce, &word, 0, 8}},
                        SyscallReq{FutexWakeReq{ce, 0, UINT32_MAX}},
                        SyscallReq{SegmentReadReq{ce, &word, 0, 8}}};
  SyscallRes res[3];
  ASSERT_EQ(kernel_->SubmitBatch(init_, reqs, res), Status::kOk);
  EXPECT_EQ(std::get<SegmentWriteRes>(res[0]).status, Status::kOk);
  EXPECT_EQ(std::get<FutexWakeRes>(res[1]).status, Status::kOk);
  EXPECT_EQ(std::get<FutexWakeRes>(res[1]).woken, 0u);  // nobody waiting
  EXPECT_EQ(std::get<SegmentReadRes>(res[2]).status, Status::kOk);
}

TEST_F(SubmitBatchTest, CreatesInOneBatchYieldDistinctObjects) {
  CreateSpec spec;
  spec.container = kernel_->root_container();
  spec.label = Label();
  spec.descrip = "batch-seg";
  spec.quota = kObjectOverheadBytes + 64 + kPageSize;
  SyscallReq reqs[2] = {SyscallReq{SegmentCreateReq{spec, 64}},
                        SyscallReq{SegmentCreateReq{spec, 64}}};
  SyscallRes res[2];
  ASSERT_EQ(kernel_->SubmitBatch(init_, reqs, res), Status::kOk);
  const auto& a = std::get<SegmentCreateRes>(res[0]);
  const auto& b = std::get<SegmentCreateRes>(res[1]);
  ASSERT_EQ(a.status, Status::kOk);
  ASSERT_EQ(b.status, Status::kOk);
  EXPECT_NE(a.id, b.id);
  EXPECT_TRUE(kernel_->ObjectExists(a.id));
  EXPECT_TRUE(kernel_->ObjectExists(b.id));
}

TEST_F(SubmitBatchTest, UndersizedCompletionSpanIsRejected) {
  char buf[8] = {};
  ObjectId seg = MakeSegment(Label(), 64);
  SyscallReq reqs[2] = {SyscallReq{SegmentReadReq{RootEntry(seg), buf, 0, 8}},
                        SyscallReq{SegmentReadReq{RootEntry(seg), buf, 0, 8}}};
  SyscallRes res[1];
  uint64_t before = kernel_->syscall_count();
  EXPECT_EQ(kernel_->SubmitBatch(init_, reqs, std::span<SyscallRes>(res, 1)),
            Status::kInvalidArg);
  EXPECT_EQ(res[0].index(), 0u);  // untouched: still monostate
  EXPECT_EQ(kernel_->syscall_count(), before);  // nothing counted
}

TEST_F(SubmitBatchTest, BatchEntriesCountAsIndividualSyscalls) {
  ObjectId seg = MakeSegment(Label(), 64);
  ContainerEntry ce = RootEntry(seg);
  char buf[8] = {};
  uint64_t total_before = kernel_->syscall_count();
  uint64_t mine_before = kernel_->thread_syscall_count(init_);
  SyscallReq reqs[4];
  SyscallRes res[4];
  for (int i = 0; i < 4; ++i) {
    reqs[i] = SegmentReadReq{ce, buf, 0, 8};
  }
  ASSERT_EQ(kernel_->SubmitBatch(init_, reqs, res), Status::kOk);
  EXPECT_EQ(kernel_->syscall_count(), total_before + 4);
  EXPECT_EQ(kernel_->thread_syscall_count(init_), mine_before + 4);
}

}  // namespace
}  // namespace histar
