// Segment syscalls and the two fundamental access rules (paper §2.2, §3).
#include <gtest/gtest.h>

#include "tests/kernel/kernel_test_util.h"

namespace histar {
namespace {

class SegmentTest : public KernelTest {};

TEST_F(SegmentTest, CreateReadWrite) {
  ObjectId seg = MakeSegment(Label(), 100);
  const char msg[] = "hello histar";
  ASSERT_EQ(kernel_->sys_segment_write(init_, RootEntry(seg), msg, 0, sizeof(msg)),
            Status::kOk);
  char buf[sizeof(msg)] = {};
  ASSERT_EQ(kernel_->sys_segment_read(init_, RootEntry(seg), buf, 0, sizeof(msg)), Status::kOk);
  EXPECT_STREQ(buf, msg);
}

TEST_F(SegmentTest, ReadUpBlocked) {
  // Object {c3, 1} unreadable by thread {1}: "no read up".
  Result<CategoryId> c = kernel_->sys_cat_create(init_);
  ASSERT_TRUE(c.ok());
  Label tainted(Level::k1, {{c.value(), Level::k3}});
  ObjectId seg = MakeSegment(tainted, 10);
  // Drop ownership so init is a bystander: spawn an unprivileged thread.
  ObjectId other = MakeThread(Label(), Label(Level::k2));
  char buf[4];
  EXPECT_EQ(kernel_->sys_segment_read(other, RootEntry(seg), buf, 0, 4),
            Status::kLabelCheckFailed);
  // The owner can read it.
  EXPECT_EQ(kernel_->sys_segment_read(init_, RootEntry(seg), buf, 0, 4), Status::kOk);
}

TEST_F(SegmentTest, WriteDownBlocked) {
  // Object {c0, 1} unwritable by non-owner: "no write down".
  Result<CategoryId> c = kernel_->sys_cat_create(init_);
  ASSERT_TRUE(c.ok());
  Label integrity(Level::k1, {{c.value(), Level::k0}});
  ObjectId seg = MakeSegment(integrity, 10);
  ObjectId other = MakeThread(Label(), Label(Level::k2));
  char b = 'x';
  EXPECT_EQ(kernel_->sys_segment_write(other, RootEntry(seg), &b, 0, 1),
            Status::kLabelCheckFailed);
  // Non-owner can still *read* it (write-protect restricts only writes).
  char buf;
  EXPECT_EQ(kernel_->sys_segment_read(other, RootEntry(seg), &buf, 0, 1), Status::kOk);
  // The owner can write.
  EXPECT_EQ(kernel_->sys_segment_write(init_, RootEntry(seg), &b, 0, 1), Status::kOk);
}

TEST_F(SegmentTest, TaintedThreadCannotWriteUntaintedSegment) {
  ObjectId seg = MakeSegment(Label(), 10);
  Result<CategoryId> c = kernel_->sys_cat_create(init_);
  ASSERT_TRUE(c.ok());
  // Spawn a thread tainted c3 (init owns c, so the spawn rule permits it).
  Label tainted(Level::k1, {{c.value(), Level::k3}});
  Label clearance(Level::k2, {{c.value(), Level::k3}});
  ObjectId worker = MakeThread(tainted, clearance);
  char b = 'x';
  EXPECT_EQ(kernel_->sys_segment_write(worker, RootEntry(seg), &b, 0, 1),
            Status::kLabelCheckFailed);
  // But it can read untainted data (1 ⊑ tainted^J).
  char buf;
  EXPECT_EQ(kernel_->sys_segment_read(worker, RootEntry(seg), &buf, 0, 1), Status::kOk);
}

TEST_F(SegmentTest, ResizeRespectsQuota) {
  CreateSpec spec;
  spec.container = kernel_->root_container();
  spec.quota = kObjectOverheadBytes + 100;
  spec.descrip = "tight";
  Result<ObjectId> seg = kernel_->sys_segment_create(init_, spec, 50);
  ASSERT_TRUE(seg.ok());
  ContainerEntry ce = RootEntry(seg.value());
  EXPECT_EQ(kernel_->sys_segment_resize(init_, ce, 100), Status::kOk);
  EXPECT_EQ(kernel_->sys_segment_resize(init_, ce, 101), Status::kQuotaExceeded);
  Result<uint64_t> len = kernel_->sys_segment_get_len(init_, ce);
  ASSERT_TRUE(len.ok());
  EXPECT_EQ(len.value(), 100u);
}

TEST_F(SegmentTest, OutOfRangeAccess) {
  ObjectId seg = MakeSegment(Label(), 16);
  char buf[32];
  EXPECT_EQ(kernel_->sys_segment_read(init_, RootEntry(seg), buf, 10, 10), Status::kRange);
  EXPECT_EQ(kernel_->sys_segment_write(init_, RootEntry(seg), buf, 16, 1), Status::kRange);
}

TEST_F(SegmentTest, ImmutableFlagIsIrrevocable) {
  ObjectId seg = MakeSegment(Label(), 8);
  ASSERT_EQ(kernel_->sys_obj_set_immutable(init_, RootEntry(seg)), Status::kOk);
  char b = 'x';
  EXPECT_EQ(kernel_->sys_segment_write(init_, RootEntry(seg), &b, 0, 1), Status::kImmutable);
  EXPECT_EQ(kernel_->sys_segment_resize(init_, RootEntry(seg), 16), Status::kImmutable);
  // Reading still works.
  char buf;
  EXPECT_EQ(kernel_->sys_segment_read(init_, RootEntry(seg), &buf, 0, 1), Status::kOk);
}

TEST_F(SegmentTest, CopyWithNewLabelRequiresTaintPropagation) {
  // A tainted thread may copy a segment it can read, but only to a label at
  // least as tainted as itself — the copy cannot launder taint.
  Result<CategoryId> c = kernel_->sys_cat_create(init_);
  ASSERT_TRUE(c.ok());
  Label tainted(Level::k1, {{c.value(), Level::k3}});
  ObjectId src = MakeSegment(tainted, 32);

  Label worker_label(Level::k1, {{c.value(), Level::k3}});
  Label worker_clear(Level::k2, {{c.value(), Level::k3}});
  ObjectId worker = MakeThread(worker_label, worker_clear);
  // Worker needs a container it can write: one tainted c3.
  ObjectId dir = MakeContainer(tainted);

  CreateSpec spec;
  spec.container = dir;
  spec.label = Label();  // try to launder: copy to untainted label
  spec.quota = 4 * kPageSize;
  spec.descrip = "laundered";
  Result<ObjectId> bad = kernel_->sys_segment_copy(worker, spec, RootEntry(src));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status(), Status::kLabelCheckFailed);

  spec.label = tainted;  // properly tainted copy succeeds
  Result<ObjectId> good = kernel_->sys_segment_copy(worker, spec, RootEntry(src));
  EXPECT_TRUE(good.ok()) << StatusName(good.status());
}

TEST_F(SegmentTest, MetadataRoundTrip) {
  ObjectId seg = MakeSegment(Label(), 8);
  uint8_t md[16] = {1, 2, 3, 4};
  ASSERT_EQ(kernel_->sys_obj_set_metadata(init_, RootEntry(seg), md, sizeof(md)), Status::kOk);
  Result<std::vector<uint8_t>> got = kernel_->sys_obj_get_metadata(init_, RootEntry(seg));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value()[0], 1);
  EXPECT_EQ(got.value()[3], 4);
  EXPECT_EQ(got.value().size(), kMetadataLen);
}

TEST_F(SegmentTest, DescripReadableWithEntry) {
  ObjectId seg = MakeSegment(Label(), 8);
  Result<std::string> d = kernel_->sys_obj_get_descrip(init_, RootEntry(seg));
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d.value(), "test-seg");
}

TEST_F(SegmentTest, ZeroLengthAccessAtEndOfSegmentSucceeds) {
  // Pin the len == 0 edge (ISSUE 4 satellite): a zero-byte read/write at
  // any offset up to and INCLUDING the segment length is a valid no-op —
  // RangeOk(size, 0, size) holds — and must succeed even with a null
  // buffer (the POSIX read(fd, buf, 0) shape unixlib callers hit). One
  // byte past the end stays a range error, len == 0 or not.
  ObjectId seg = MakeSegment(Label(), 16);
  char probe = 0;
  EXPECT_EQ(kernel_->sys_segment_read(init_, RootEntry(seg), &probe, 16, 0), Status::kOk);
  EXPECT_EQ(kernel_->sys_segment_write(init_, RootEntry(seg), &probe, 16, 0), Status::kOk);
  EXPECT_EQ(kernel_->sys_segment_read(init_, RootEntry(seg), nullptr, 0, 0), Status::kOk);
  EXPECT_EQ(kernel_->sys_segment_write(init_, RootEntry(seg), nullptr, 8, 0), Status::kOk);
  EXPECT_EQ(kernel_->sys_segment_read(init_, RootEntry(seg), &probe, 17, 0), Status::kRange);
  EXPECT_EQ(kernel_->sys_segment_write(init_, RootEntry(seg), &probe, 17, 0), Status::kRange);
}

TEST_F(SegmentTest, ZeroLengthAccessOnEmptySegmentSucceeds) {
  // The empty-segment corner: bytes().data() is null, off == size == 0.
  ObjectId seg = MakeSegment(Label(), 0);
  EXPECT_EQ(kernel_->sys_segment_read(init_, RootEntry(seg), nullptr, 0, 0), Status::kOk);
  EXPECT_EQ(kernel_->sys_segment_write(init_, RootEntry(seg), nullptr, 0, 0), Status::kOk);
  char probe = 0;
  EXPECT_EQ(kernel_->sys_segment_read(init_, RootEntry(seg), &probe, 0, 1), Status::kRange);
  EXPECT_EQ(kernel_->sys_segment_read(init_, RootEntry(seg), &probe, 1, 0), Status::kRange);
}

TEST_F(SegmentTest, ZeroLengthLocalSegmentAccessAtPageEnd) {
  // Same edge for the thread-local segment syscalls.
  EXPECT_EQ(kernel_->sys_self_local_read(init_, nullptr, kPageSize, 0), Status::kOk);
  EXPECT_EQ(kernel_->sys_self_local_write(init_, nullptr, kPageSize, 0), Status::kOk);
  char probe = 0;
  EXPECT_EQ(kernel_->sys_self_local_read(init_, &probe, kPageSize + 1, 0), Status::kRange);
}

TEST_F(SegmentTest, LabelReadableEvenWhenContentsAreNot) {
  // §3.2: threads can examine labels of objects more tainted than themselves
  // to learn how to taint themselves for reading.
  Result<CategoryId> c = kernel_->sys_cat_create(init_);
  ASSERT_TRUE(c.ok());
  Label tainted(Level::k1, {{c.value(), Level::k3}});
  ObjectId seg = MakeSegment(tainted, 8);
  ObjectId other = MakeThread(Label(), Label(Level::k2));
  Result<Label> l = kernel_->sys_obj_get_label(other, RootEntry(seg));
  ASSERT_TRUE(l.ok()) << StatusName(l.status());
  EXPECT_EQ(l.value(), tainted);
  char buf;
  EXPECT_EQ(kernel_->sys_segment_read(other, RootEntry(seg), &buf, 0, 1),
            Status::kLabelCheckFailed);
}

}  // namespace
}  // namespace histar
