// Address spaces and simulated paged access (paper §3.4).
#include <gtest/gtest.h>

#include "tests/kernel/kernel_test_util.h"

namespace histar {
namespace {

class AddressSpaceTest : public KernelTest {
 protected:
  ObjectId MakeAs(const Label& l) {
    CreateSpec spec;
    spec.container = kernel_->root_container();
    spec.label = l;
    spec.descrip = "as";
    Result<ObjectId> as = kernel_->sys_as_create(init_, spec);
    EXPECT_TRUE(as.ok()) << StatusName(as.status());
    return as.value();
  }

  // Maps `seg` at va with the given flags into a fresh AS and attaches it to
  // `thread`.
  ObjectId AttachMapping(ObjectId thread, ObjectId seg, uint64_t va, uint32_t flags,
                         uint64_t npages = 1) {
    ObjectId as = MakeAs(Label());
    Mapping m;
    m.va = va;
    m.segment = RootEntry(seg);
    m.npages = npages;
    m.flags = flags;
    EXPECT_EQ(kernel_->sys_as_set(init_, RootEntry(as), {m}), Status::kOk);
    EXPECT_EQ(kernel_->sys_self_set_as(thread, RootEntry(as)), Status::kOk);
    return as;
  }
};

TEST_F(AddressSpaceTest, MappedReadWrite) {
  ObjectId seg = MakeSegment(Label(), kPageSize);
  AttachMapping(init_, seg, 0x10000, kMapRead | kMapWrite);
  uint32_t v = 0xabcd1234;
  ASSERT_EQ(kernel_->sys_as_access(init_, 0x10000 + 16, &v, 4, true), Status::kOk);
  uint32_t out = 0;
  ASSERT_EQ(kernel_->sys_as_access(init_, 0x10000 + 16, &out, 4, false), Status::kOk);
  EXPECT_EQ(out, v);
  // The write went through to the segment itself.
  uint32_t direct = 0;
  ASSERT_EQ(kernel_->sys_segment_read(init_, RootEntry(seg), &direct, 16, 4), Status::kOk);
  EXPECT_EQ(direct, v);
}

TEST_F(AddressSpaceTest, WriteToReadOnlyMappingFails) {
  ObjectId seg = MakeSegment(Label(), kPageSize);
  AttachMapping(init_, seg, 0x10000, kMapRead);
  uint32_t v = 1;
  EXPECT_EQ(kernel_->sys_as_access(init_, 0x10000, &v, 4, true), Status::kNoPerm);
}

TEST_F(AddressSpaceTest, UnmappedFaults) {
  ObjectId seg = MakeSegment(Label(), kPageSize);
  AttachMapping(init_, seg, 0x10000, kMapRead);
  uint32_t v;
  EXPECT_EQ(kernel_->sys_as_access(init_, 0x90000, &v, 4, false), Status::kNotFound);
}

TEST_F(AddressSpaceTest, FaultTimeLabelCheckOnWrite) {
  // Map a write-protected segment writable in the AS: the mapping is
  // accepted, but the fault-time check L_T ⊑ L_O rejects the store.
  Result<CategoryId> c = kernel_->sys_cat_create(init_);
  ASSERT_TRUE(c.ok());
  Label protect(Level::k1, {{c.value(), Level::k0}});
  ObjectId seg = MakeSegment(protect, kPageSize);
  ObjectId worker = MakeThread(Label(), Label(Level::k2));
  AttachMapping(worker, seg, 0x10000, kMapRead | kMapWrite);
  uint32_t v = 1;
  EXPECT_EQ(kernel_->sys_as_access(worker, 0x10000, &v, 4, true), Status::kLabelCheckFailed);
  // Reads are fine ({c0,1} ⊑ {1}^J).
  EXPECT_EQ(kernel_->sys_as_access(worker, 0x10000, &v, 4, false), Status::kOk);
}

TEST_F(AddressSpaceTest, PageFaultHandlerCanRepair) {
  ObjectId seg = MakeSegment(Label(), kPageSize);
  ObjectId as = AttachMapping(init_, seg, 0x10000, kMapRead);
  int faults = 0;
  kernel_->SetPageFaultHandler(init_, [&](uint64_t va, bool write) {
    ++faults;
    if (!write) {
      return false;
    }
    // Upgrade the mapping to writable (the library's copy-on-write path
    // would map a fresh segment; upgrading suffices for the test).
    Mapping m;
    m.va = 0x10000;
    m.segment = RootEntry(seg);
    m.npages = 1;
    m.flags = kMapRead | kMapWrite;
    return kernel_->sys_as_set(init_, RootEntry(as), {m}) == Status::kOk;
  });
  uint32_t v = 7;
  EXPECT_EQ(kernel_->sys_as_access(init_, 0x10000, &v, 4, true), Status::kOk);
  EXPECT_EQ(faults, 1);
}

TEST_F(AddressSpaceTest, LocalSegmentMapping) {
  // A mapping with the reserved id kLocalSegmentId reaches the calling
  // thread's local segment, always writable (§3.4).
  ObjectId as = MakeAs(Label());
  Mapping m;
  m.va = 0x7000000;
  m.segment = ContainerEntry{kernel_->root_container(), kLocalSegmentId};
  m.npages = 1;
  m.flags = kMapRead | kMapWrite;
  ASSERT_EQ(kernel_->sys_as_set(init_, RootEntry(as), {m}), Status::kOk);
  ASSERT_EQ(kernel_->sys_self_set_as(init_, RootEntry(as)), Status::kOk);
  uint64_t v = 0x1122334455667788ULL;
  ASSERT_EQ(kernel_->sys_as_access(init_, 0x7000000 + 8, &v, 8, true), Status::kOk);
  uint64_t direct = 0;
  ASSERT_EQ(kernel_->sys_self_local_read(init_, &direct, 8, 8), Status::kOk);
  EXPECT_EQ(direct, v);
}

TEST_F(AddressSpaceTest, AsObservationRule) {
  // A thread cannot attach an AS it cannot observe.
  Result<CategoryId> c = kernel_->sys_cat_create(init_);
  ASSERT_TRUE(c.ok());
  Label secret(Level::k1, {{c.value(), Level::k3}});
  CreateSpec spec;
  spec.container = kernel_->root_container();
  spec.label = secret;
  Result<ObjectId> as = kernel_->sys_as_create(init_, spec);
  ASSERT_TRUE(as.ok());
  ObjectId plain = MakeThread(Label(), Label(Level::k2));
  EXPECT_EQ(kernel_->sys_self_set_as(plain, RootEntry(as.value())),
            Status::kLabelCheckFailed);
}

TEST_F(AddressSpaceTest, AsSetRejectsUnalignedMappings) {
  ObjectId as = MakeAs(Label());
  Mapping m;
  m.va = 0x10001;  // not page aligned
  m.segment = RootEntry(MakeSegment(Label(), kPageSize));
  m.npages = 1;
  m.flags = kMapRead;
  EXPECT_EQ(kernel_->sys_as_set(init_, RootEntry(as), {m}), Status::kInvalidArg);
}

TEST_F(AddressSpaceTest, MultiPageMappingWithOffset) {
  ObjectId seg = MakeSegment(Label(), 4 * kPageSize);
  // Map pages [1, 3) of the segment at 0x20000.
  ObjectId as = MakeAs(Label());
  Mapping m;
  m.va = 0x20000;
  m.segment = RootEntry(seg);
  m.start_page = 1;
  m.npages = 2;
  m.flags = kMapRead | kMapWrite;
  ASSERT_EQ(kernel_->sys_as_set(init_, RootEntry(as), {m}), Status::kOk);
  ASSERT_EQ(kernel_->sys_self_set_as(init_, RootEntry(as)), Status::kOk);
  uint32_t v = 99;
  ASSERT_EQ(kernel_->sys_as_access(init_, 0x20000, &v, 4, true), Status::kOk);
  uint32_t direct = 0;
  ASSERT_EQ(kernel_->sys_segment_read(init_, RootEntry(seg), &direct, kPageSize, 4),
            Status::kOk);
  EXPECT_EQ(direct, 99u);
}

}  // namespace
}  // namespace histar
