// Baseline monolithic FS + pipe sanity tests: the comparison system must be
// believable for the Figure 12 columns to mean anything.
#include "src/baseline/mono_fs.h"

#include <gtest/gtest.h>

#include <thread>

namespace monosim {
namespace {

DiskModel MakeDisk(bool zero_latency) {
  histar::DiskGeometry g;
  g.capacity_bytes = 2ULL << 30;
  g.zero_latency = zero_latency;
  g.store_data = false;  // latency-only: contents don't matter here
  return DiskModel(g);
}

TEST(MonoFs, CreateWriteReadRoundTrip) {
  DiskModel disk = MakeDisk(true);
  MonoFs fs(&disk);
  ASSERT_EQ(fs.Mkfs(), Status::kOk);
  Result<uint64_t> f = fs.Create("a");
  ASSERT_TRUE(f.ok());
  char buf[1024] = {1};
  ASSERT_EQ(fs.Write(f.value(), 0, buf, sizeof(buf)), Status::kOk);
  Result<uint64_t> n = fs.Read(f.value(), 0, buf, sizeof(buf));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), sizeof(buf));
  EXPECT_EQ(fs.LookupFile("a").value(), f.value());
  ASSERT_EQ(fs.Unlink("a"), Status::kOk);
  EXPECT_EQ(fs.LookupFile("a").status(), Status::kNotFound);
}

TEST(MonoFs, AsyncWritesAreCachedFsyncHitsDisk) {
  DiskModel disk = MakeDisk(false);
  MonoFs fs(&disk);
  ASSERT_EQ(fs.Mkfs(), Status::kOk);
  disk.ResetSimTime();
  Result<uint64_t> f = fs.Create("a");
  char buf[1024] = {};
  ASSERT_EQ(fs.Write(f.value(), 0, buf, sizeof(buf)), Status::kOk);
  EXPECT_EQ(disk.sim_time_ns(), 0u);  // pure cache
  ASSERT_EQ(fs.Fsync(f.value()), Status::kOk);
  EXPECT_GT(disk.sim_time_ns(), 0u);
  EXPECT_EQ(fs.journal_commits(), 1u);
}

TEST(MonoFs, FsyncPerFileCostsMoreThanOneBatchedSync) {
  DiskModel d1 = MakeDisk(false);
  MonoFs fs1(&d1);
  ASSERT_EQ(fs1.Mkfs(), Status::kOk);
  char buf[1024] = {};
  for (int i = 0; i < 100; ++i) {
    Result<uint64_t> f = fs1.Create("f" + std::to_string(i));
    fs1.Write(f.value(), 0, buf, sizeof(buf));
    fs1.Fsync(f.value());
  }
  DiskModel d2 = MakeDisk(false);
  MonoFs fs2(&d2);
  ASSERT_EQ(fs2.Mkfs(), Status::kOk);
  for (int i = 0; i < 100; ++i) {
    Result<uint64_t> f = fs2.Create("f" + std::to_string(i));
    fs2.Write(f.value(), 0, buf, sizeof(buf));
  }
  ASSERT_EQ(fs2.SyncAll(), Status::kOk);
  EXPECT_GT(d1.sim_time_ns(), d2.sim_time_ns() * 20);
}

TEST(MonoFs, ClusteredLayoutMakesColdReadsCheapWithLookahead) {
  DiskModel disk = MakeDisk(false);
  MonoFs fs(&disk);
  ASSERT_EQ(fs.Mkfs(), Status::kOk);
  char buf[1024] = {};
  std::vector<uint64_t> files;
  for (int i = 0; i < 200; ++i) {
    Result<uint64_t> f = fs.Create("f" + std::to_string(i));
    fs.Write(f.value(), 0, buf, sizeof(buf));
    files.push_back(f.value());
  }
  ASSERT_EQ(fs.SyncAll(), Status::kOk);
  fs.DropCaches();
  disk.ResetSimTime();
  for (uint64_t f : files) {
    ASSERT_TRUE(fs.Read(f, 0, buf, sizeof(buf)).ok());
  }
  uint64_t with_la = disk.sim_time_ns();

  fs.DropCaches();
  disk.set_lookahead_enabled(false);
  disk.ResetSimTime();
  for (uint64_t f : files) {
    ASSERT_TRUE(fs.Read(f, 0, buf, sizeof(buf)).ok());
  }
  uint64_t without_la = disk.sim_time_ns();
  EXPECT_GT(without_la, with_la * 5);
}

TEST(MonoPipe, RoundTripAcrossThreads) {
  MonoPipe a;  // parent → child
  MonoPipe b;  // child → parent
  std::thread child([&]() {
    char buf[8];
    for (int i = 0; i < 100; ++i) {
      a.Read(buf, 8);
      b.Write(buf, 8);
    }
  });
  char msg[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  for (int i = 0; i < 100; ++i) {
    a.Write(msg, 8);
    char echo[8] = {};
    b.Read(echo, 8);
    ASSERT_EQ(memcmp(msg, echo, 8), 0);
  }
  child.join();
  EXPECT_GE(a.syscalls(), 200u);
}

TEST(MonoProcessModel, ForkExecUsesNineSyscalls) {
  MonoProcessModel m;
  EXPECT_EQ(m.ForkExecTrue(), 9u);
}

}  // namespace
}  // namespace monosim
