// §6.4 web services: per-user data isolation survives buggy or malicious
// service code, authentication runs through the §6.2 daemon, and the
// demultiplexer's container-based resource control works.
#include "src/apps/webserver.h"

#include <gtest/gtest.h>

namespace histar {
namespace {

class WebServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    kernel_ = std::make_unique<Kernel>();
    world_ = UnixWorld::Boot(kernel_.get());
    ASSERT_NE(world_, nullptr);
    CurrentThread::Set(world_->init_thread());
    log_ = LogService::Start(world_.get());
    auth_ = AuthSystem::Start(world_.get(), log_.get());
    store_ = UserStore::Create(world_.get());
    ASSERT_NE(auth_, nullptr);
    ASSERT_NE(store_, nullptr);

    alice_ = auth_->AddUser("alice", "wonderland").value();
    bob_ = auth_->AddUser("bob", "builder").value();
    ASSERT_EQ(store_->AddUser(world_->init_thread(), alice_), Status::kOk);
    ASSERT_EQ(store_->AddUser(world_->init_thread(), bob_), Status::kOk);
    // Seed data as each user (init owns both users' categories at account
    // creation time).
    ASSERT_EQ(store_->Put(world_->init_thread(), "alice", "ssn", "123-45-6789"),
              Status::kOk);
    ASSERT_EQ(store_->Put(world_->init_thread(), "bob", "ssn", "987-65-4321"), Status::kOk);
  }
  void TearDown() override { CurrentThread::Set(kInvalidObject); }

  // Runs one request through a real worker process spawned like the demux
  // does (no network, for determinism).
  std::string Serve(const WebRequest& req) {
    ProcessContext& ctx = world_->init_context();
    FdTable fds(kernel_.get(), ctx.ids, Label());
    Result<std::pair<int, int>> pipe = fds.CreatePipe(world_->init_thread());
    EXPECT_TRUE(pipe.ok());
    ProcessOpts opts;
    opts.inherit_fds = {fds.Entry(pipe.value().second).value()};
    std::vector<std::string> args = {
        "web-worker", req.op == WebRequest::Op::kGet ? "GET" : "PUT",
        req.user,     req.key,
        req.password, req.data};
    Result<std::unique_ptr<ProcHandle>> h =
        world_->procs().Spawn(ctx, "web-worker", args, opts);
    if (!h.ok()) {
      return "spawn-failed";
    }
    std::string resp;
    char buf[512];
    while (resp.find('\n') == std::string::npos) {
      Result<uint64_t> n =
          fds.ReadTimeout(world_->init_thread(), pipe.value().first, buf, sizeof(buf), 5000);
      if (!n.ok() || n.value() == 0) {
        break;
      }
      resp.append(buf, n.value());
    }
    h.value()->Wait(world_->init_thread(), 5000);
    if (!resp.empty() && resp.back() == '\n') {
      resp.pop_back();
    }
    return resp;
  }

  void RegisterWorker() {
    // The production worker program, registered the way WebServer::Start
    // does (tests reuse it without a network).
    AuthSystem* auth = auth_.get();
    UserStore* store = store_.get();
    world_->procs().RegisterProgram("web-worker", [auth, store](ProcessContext& ctx)
                                                      -> int64_t {
      WebRequest req;
      req.op = ctx.args[1] == "GET" ? WebRequest::Op::kGet : WebRequest::Op::kPut;
      req.user = ctx.args[2];
      req.key = ctx.args[3];
      req.password = ctx.args[4];
      req.data = ctx.args[5];
      std::string resp = ServeOne(ctx, auth, store, req);
      resp.push_back('\n');
      ctx.fds->Write(ctx.self, 0, resp.data(), resp.size());
      return 0;
    });
  }

  std::unique_ptr<Kernel> kernel_;
  std::unique_ptr<UnixWorld> world_;
  std::unique_ptr<LogService> log_;
  std::unique_ptr<AuthSystem> auth_;
  std::unique_ptr<UserStore> store_;
  UnixUser alice_;
  UnixUser bob_;
};

TEST_F(WebServiceTest, RequestParserAcceptsAndRejects) {
  WebRequest g = ParseRequest("GET alice/ssn PASS wonderland");
  EXPECT_EQ(g.op, WebRequest::Op::kGet);
  EXPECT_EQ(g.user, "alice");
  EXPECT_EQ(g.key, "ssn");
  EXPECT_EQ(g.password, "wonderland");

  WebRequest p = ParseRequest("PUT bob/bio PASS builder DATA I fix things");
  EXPECT_EQ(p.op, WebRequest::Op::kPut);
  EXPECT_EQ(p.data, "I fix things");

  EXPECT_EQ(ParseRequest("").op, WebRequest::Op::kBad);
  EXPECT_EQ(ParseRequest("GET noslash PASS x").op, WebRequest::Op::kBad);
  EXPECT_EQ(ParseRequest("GET a/b NOPASS x").op, WebRequest::Op::kBad);
  EXPECT_EQ(ParseRequest("PUT a/b PASS x").op, WebRequest::Op::kBad);  // no DATA
}

TEST_F(WebServiceTest, AuthenticatedUserReadsOwnData) {
  RegisterWorker();
  WebRequest req;
  req.op = WebRequest::Op::kGet;
  req.user = "alice";
  req.key = "ssn";
  req.password = "wonderland";
  EXPECT_EQ(Serve(req), "200 123-45-6789");
}

TEST_F(WebServiceTest, WrongPasswordGetsOneBitOnly) {
  RegisterWorker();
  WebRequest req;
  req.op = WebRequest::Op::kGet;
  req.user = "alice";
  req.key = "ssn";
  req.password = "guess";
  EXPECT_EQ(Serve(req), "403 denied");
}

TEST_F(WebServiceTest, PutThenGetRoundTrips) {
  RegisterWorker();
  WebRequest put;
  put.op = WebRequest::Op::kPut;
  put.user = "bob";
  put.key = "bio";
  put.password = "builder";
  put.data = "can we fix it";
  EXPECT_EQ(Serve(put), "200 stored");
  WebRequest get = put;
  get.op = WebRequest::Op::kGet;
  EXPECT_EQ(Serve(get), "200 can we fix it");
}

TEST_F(WebServiceTest, MaliciousWorkerCannotCrossUsers) {
  // The §6.4 claim: service-code compromise does not cross user boundaries.
  // This worker authenticates as alice (whose password it legitimately has)
  // and then goes after bob's record by every available path.
  AuthSystem* auth = auth_.get();
  UserStore* store = store_.get();
  ObjectId bob_home = bob_.home;
  world_->procs().RegisterProgram("web-worker", [auth, store, bob_home](ProcessContext& ctx)
                                                    -> int64_t {
    Result<LoginResult> login = auth->Login(ctx.self, "alice", ctx.args[4]);
    std::string resp;
    if (!login.ok() || !login.value().authenticated) {
      resp = "403 denied";
    } else {
      // (a) straight read of bob's record through the store
      Result<std::string> theft = store->Get(ctx.self, "bob", "ssn");
      // (b) forge a record into bob's area
      Status forgery = store->Put(ctx.self, "bob", "ssn", "000-00-0000");
      // (c) go under the store: walk bob's home directory
      FileSystem fs(ctx.kernel);
      Result<std::vector<std::pair<std::string, ObjectId>>> ls =
          fs.ReadDir(ctx.self, bob_home);
      resp = std::string("steal=") + std::string(StatusName(theft.status())) +
             " forge=" + std::string(StatusName(forgery)) +
             " walk=" + std::string(StatusName(ls.status()));
    }
    resp.push_back('\n');
    ctx.fds->Write(ctx.self, 0, resp.data(), resp.size());
    return 0;
  });
  WebRequest req;
  req.op = WebRequest::Op::kGet;
  req.user = "alice";
  req.key = "ssn";
  req.password = "wonderland";
  std::string resp = Serve(req);
  EXPECT_EQ(resp,
            "steal=label-check-failed forge=label-check-failed walk=label-check-failed");
  // And bob's record is untouched.
  EXPECT_EQ(store_->Get(world_->init_thread(), "bob", "ssn").value(), "987-65-4321");
}

TEST_F(WebServiceTest, EndToEndOverTheNetwork) {
  NetSwitch net;
  std::unique_ptr<NetDaemon> server_stack =
      NetDaemon::Start(world_.get(), net.NewPort(), "netd-s");
  std::unique_ptr<NetDaemon> client_stack =
      NetDaemon::Start(world_.get(), net.NewPort(), "netd-c");
  ASSERT_NE(server_stack, nullptr);
  ASSERT_NE(client_stack, nullptr);
  std::unique_ptr<WebServer> web =
      WebServer::Start(world_.get(), server_stack.get(), auth_.get(), store_.get(), 80);
  ASSERT_NE(web, nullptr);

  Label cl = client_stack->ClientTaint();
  Label cc(Level::k2, {{client_stack->taint().i, Level::k3}});
  ObjectId browser = kernel_->BootstrapThread(cl, cc, "browser");
  CurrentThread bind(browser);

  auto request = [&](const std::string& line) {
    Result<uint64_t> conn = client_stack->Connect(browser, server_stack->mac(), 80);
    EXPECT_TRUE(conn.ok());
    std::string msg = line + "\n";
    EXPECT_TRUE(client_stack->Send(browser, conn.value(), msg.data(), msg.size()).ok());
    std::string resp;
    char buf[512];
    for (;;) {
      Result<uint64_t> n =
          client_stack->Recv(browser, conn.value(), buf, sizeof(buf), 10000);
      if (!n.ok() || n.value() == 0) {
        break;
      }
      resp.append(buf, n.value());
      if (resp.find('\n') != std::string::npos) {
        break;
      }
    }
    client_stack->CloseSocket(browser, conn.value());
    if (!resp.empty() && resp.back() == '\n') {
      resp.pop_back();
    }
    return resp;
  };

  EXPECT_EQ(request("GET alice/ssn PASS wonderland"), "200 123-45-6789");
  EXPECT_EQ(request("GET alice/ssn PASS wrong"), "403 denied");
  EXPECT_EQ(request("PUT alice/city PASS wonderland DATA Oxford"), "200 stored");
  EXPECT_EQ(request("GET alice/city PASS wonderland"), "200 Oxford");
  EXPECT_EQ(request("GET alice/nope PASS wonderland"), "404 not-found");
  EXPECT_EQ(request("garbage"), "400 bad");
  EXPECT_EQ(web->requests_served(), 6u);
  web->Stop();
  server_stack->Stop();
  client_stack->Stop();
}

}  // namespace
}  // namespace histar
