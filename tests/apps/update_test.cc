// The update daemon (§6.1): fetches databases over the network; can write
// the database (it owns i — the administrator's import grant) but cannot
// touch private user data, and an unprivileged variant stays i2-stuck.
#include <gtest/gtest.h>

#include <thread>

#include "src/apps/scanner.h"
#include "src/apps/wrap.h"

namespace histar {
namespace {

class UpdateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    kernel_ = std::make_unique<Kernel>();
    world_ = UnixWorld::Boot(kernel_.get());
    ASSERT_NE(world_, nullptr);
    CurrentThread::Set(world_->init_thread());
    net_switch_ = std::make_unique<NetSwitch>();
    netd_ = NetDaemon::Start(world_.get(), net_switch_->NewPort(), "netd");
    mirror_ = NetDaemon::Start(world_.get(), net_switch_->NewPort(), "mirror-stack");
    ASSERT_NE(netd_, nullptr);
    ASSERT_NE(mirror_, nullptr);

    Result<ObjectId> db_dir =
        world_->fs().MakeDir(world_->init_thread(), world_->fs_root(), "db", Label(), 1 << 20);
    ASSERT_TRUE(db_dir.ok());
    db_dir_ = db_dir.value();
    Result<ObjectId> db = world_->fs().Create(world_->init_thread(), db_dir_, "virus.db",
                                              Label());
    ASSERT_TRUE(db.ok());
    const char old[] = "Old.Sig:41\n";
    ASSERT_EQ(world_->fs().WriteAt(world_->init_thread(), db_dir_, db.value(), old, 0,
                                   sizeof(old) - 1),
              Status::kOk);
  }
  void TearDown() override {
    netd_->Stop();
    mirror_->Stop();
    CurrentThread::Set(kInvalidObject);
  }

  std::unique_ptr<Kernel> kernel_;
  std::unique_ptr<UnixWorld> world_;
  std::unique_ptr<NetSwitch> net_switch_;
  std::unique_ptr<NetDaemon> netd_;
  std::unique_ptr<NetDaemon> mirror_;
  ObjectId db_dir_ = kInvalidObject;
};

TEST_F(UpdateTest, PrivilegedDaemonFetchesAndInstalls) {
  // The mirror serves a fresh database.
  std::string fresh_db = "Fresh.Sig:434c414d\nAnother.Sig:aa55\n";
  Label ml = mirror_->ClientTaint();
  Label mc(Level::k2, {{mirror_->taint().i, Level::k3}});
  ObjectId mirror_client = kernel_->BootstrapThread(ml, mc, "mirror");
  std::thread server([&]() {
    CurrentThread bind(mirror_client);
    ServeDbOnce(mirror_.get(), kernel_.get(), mirror_client, 8888, fresh_db);
  });

  UpdateConfig cfg;
  cfg.net = netd_.get();
  cfg.server_mac = mirror_->mac();
  cfg.port = 8888;
  cfg.db_path = "/db/virus.db";
  RegisterUpdateDaemon(&world_->procs(), &cfg);

  // The daemon owns i: the administrator's import grant.
  ProcessOpts opts;
  opts.extra_ownership = Label(Level::k1, {{netd_->taint().i, Level::kStar}});
  Result<std::unique_ptr<ProcHandle>> h =
      world_->procs().Spawn(world_->init_context(), "av-update", {}, opts);
  ASSERT_TRUE(h.ok()) << StatusName(h.status());
  Result<int64_t> status = h.value()->Wait(world_->init_thread(), 30000);
  server.join();
  ASSERT_TRUE(status.ok()) << StatusName(status.status());
  EXPECT_EQ(status.value(), 2) << "expected 2 signatures installed";

  // The database file now carries the fresh contents.
  Result<ObjectId> db = world_->fs().Lookup(world_->init_thread(), db_dir_, "virus.db");
  ASSERT_TRUE(db.ok());
  char buf[256] = {};
  Result<uint64_t> n = world_->fs().ReadAt(world_->init_thread(), db_dir_, db.value(), buf, 0,
                                           sizeof(buf));
  ASSERT_TRUE(n.ok());
  EXPECT_NE(std::string(buf, n.value()).find("Fresh.Sig"), std::string::npos);
}

TEST_F(UpdateTest, UnprivilegedDaemonStaysTaintedAndCannotInstall) {
  // Without the i grant, the daemon must taint itself i2 to fetch — and
  // then cannot write the untainted database: taint never comes off.
  std::string fresh_db = "Fresh.Sig:434c414d\n";
  Label ml = mirror_->ClientTaint();
  Label mc(Level::k2, {{mirror_->taint().i, Level::k3}});
  ObjectId mirror_client = kernel_->BootstrapThread(ml, mc, "mirror");
  std::thread server([&]() {
    CurrentThread bind(mirror_client);
    ServeDbOnce(mirror_.get(), kernel_.get(), mirror_client, 8889, fresh_db);
  });

  UpdateConfig cfg;
  cfg.net = netd_.get();
  cfg.server_mac = mirror_->mac();
  cfg.port = 8889;
  cfg.db_path = "/db/virus.db";
  RegisterUpdateDaemon(&world_->procs(), &cfg);

  // The spawner owns i (it booted the stacks) and pre-authorizes the §5.8
  // exit leak in i — without this, the self-tainted daemon could not even
  // report that it failed.
  ProcessOpts opts;
  opts.exit_untaint = {netd_->taint().i, mirror_->taint().i};
  Result<std::unique_ptr<ProcHandle>> h =
      world_->procs().Spawn(world_->init_context(), "av-update", {}, opts);
  ASSERT_TRUE(h.ok());
  Result<int64_t> status = h.value()->Wait(world_->init_thread(), 30000);
  server.join();
  ASSERT_TRUE(status.ok());
  EXPECT_LT(status.value(), 0);  // install failed

  // Old database intact.
  Result<ObjectId> db = world_->fs().Lookup(world_->init_thread(), db_dir_, "virus.db");
  ASSERT_TRUE(db.ok());
  char buf[256] = {};
  Result<uint64_t> n = world_->fs().ReadAt(world_->init_thread(), db_dir_, db.value(), buf, 0,
                                           sizeof(buf));
  ASSERT_TRUE(n.ok());
  EXPECT_NE(std::string(buf, n.value()).find("Old.Sig"), std::string::npos);
}

}  // namespace
}  // namespace histar
