// Unit tests for clamav-mini: the matcher, the database format, and the
// report protocol.
#include "src/apps/scanner.h"

#include <gtest/gtest.h>

#include <random>

namespace histar {
namespace {

Signature Sig(const std::string& name, const std::string& pattern) {
  Signature s;
  s.name = name;
  s.pattern.assign(pattern.begin(), pattern.end());
  return s;
}

TEST(AhoCorasick, FindsSinglePattern) {
  AhoCorasick ac({Sig("EICAR", "virus-body")});
  std::string data = "harmless prefix virus-body harmless suffix";
  std::vector<std::string> found =
      ac.Scan(reinterpret_cast<const uint8_t*>(data.data()), data.size());
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0], "EICAR");
}

TEST(AhoCorasick, NoFalsePositives) {
  AhoCorasick ac({Sig("A", "abcdef"), Sig("B", "zzzyyy")});
  std::string data = "abcdex zzzyy abcde fabcdef?";  // contains abcdef at the end? no: 'fabcdef' yes!
  std::vector<std::string> found =
      ac.Scan(reinterpret_cast<const uint8_t*>(data.data()), data.size());
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0], "A");
  std::string clean = "abcde abcdeg zzzyy";
  EXPECT_TRUE(ac.Scan(reinterpret_cast<const uint8_t*>(clean.data()), clean.size()).empty());
}

TEST(AhoCorasick, OverlappingPatterns) {
  AhoCorasick ac({Sig("SHORT", "her"), Sig("LONG", "hershey")});
  std::string data = "hershey";
  std::vector<std::string> found =
      ac.Scan(reinterpret_cast<const uint8_t*>(data.data()), data.size());
  EXPECT_EQ(found.size(), 2u);
}

TEST(AhoCorasick, SharedPrefixPatterns) {
  AhoCorasick ac({Sig("A", "abcx"), Sig("B", "abcy"), Sig("C", "abc")});
  std::string data = "zabcyz";
  std::vector<std::string> found =
      ac.Scan(reinterpret_cast<const uint8_t*>(data.data()), data.size());
  EXPECT_EQ(found.size(), 2u);  // B and C
}

TEST(AhoCorasick, MatchesAgainstNaiveSearchRandomized) {
  std::mt19937_64 rng(2026);
  std::vector<Signature> sigs;
  for (int i = 0; i < 20; ++i) {
    std::string p;
    int len = 2 + static_cast<int>(rng() % 6);
    for (int j = 0; j < len; ++j) {
      p += static_cast<char>('a' + rng() % 4);  // tiny alphabet → collisions
    }
    sigs.push_back(Sig("S" + std::to_string(i), p));
  }
  AhoCorasick ac(sigs);
  for (int trial = 0; trial < 50; ++trial) {
    std::string data;
    for (int j = 0; j < 400; ++j) {
      data += static_cast<char>('a' + rng() % 4);
    }
    std::vector<std::string> got =
        ac.Scan(reinterpret_cast<const uint8_t*>(data.data()), data.size());
    std::vector<std::string> want;
    for (const Signature& s : sigs) {
      std::string pat(s.pattern.begin(), s.pattern.end());
      if (data.find(pat) != std::string::npos) {
        want.push_back(s.name);
      }
    }
    std::sort(got.begin(), got.end());
    std::sort(want.begin(), want.end());
    want.erase(std::unique(want.begin(), want.end()), want.end());
    EXPECT_EQ(got, want) << "trial " << trial;
  }
}

TEST(SignatureDb, SerializeParseRoundTrip) {
  std::vector<Signature> sigs = {Sig("Worm.A", "payload-1"), Sig("Troj.B", "\x01\x02\xff")};
  std::string text = SerializeDb(sigs);
  std::vector<Signature> back = ParseDb(text);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].name, "Worm.A");
  EXPECT_EQ(back[0].pattern, sigs[0].pattern);
  EXPECT_EQ(back[1].pattern, sigs[1].pattern);
}

TEST(SignatureDb, ParseSkipsGarbage) {
  std::vector<Signature> back = ParseDb("no-colon-line\n:\nX:zz\nok:414243\n");
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0].name, "ok");
  EXPECT_EQ(back[0].pattern, (std::vector<uint8_t>{'A', 'B', 'C'}));
}

TEST(ScanReport, SerializeParseRoundTrip) {
  ScanReport r;
  r.files_scanned = 7;
  r.infected = {"/home/bob/a: Worm.A", "/home/bob/b: Troj.B"};
  r.ok = true;
  ScanReport back = ParseReport(SerializeReport(r));
  EXPECT_TRUE(back.ok);
  EXPECT_EQ(back.files_scanned, 7u);
  EXPECT_EQ(back.infected, r.infected);
}

TEST(ScanReport, IncompleteReportNotOk) {
  ScanReport r = ParseReport("scanned 3\nFOUND x: Y\n");  // no "done"
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.files_scanned, 3u);
}

}  // namespace
}  // namespace histar
