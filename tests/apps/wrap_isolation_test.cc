// Integration tests for the §6.1 virus-scanner isolation: the wrap pipeline
// end to end, and the five §1 leak vectors, each attempted by a "malicious
// scanner" and blocked by labels alone.
#include "src/apps/wrap.h"

#include <gtest/gtest.h>

#include <atomic>

#include "src/net/netd.h"

namespace histar {
namespace {

class WrapTest : public ::testing::Test {
 protected:
  void SetUp() override {
    kernel_ = std::make_unique<Kernel>();
    world_ = UnixWorld::Boot(kernel_.get());
    ASSERT_NE(world_, nullptr);
    CurrentThread::Set(world_->init_thread());
    RegisterScannerPrograms(&world_->procs());

    // Bob and his private files ({br3, bw0, 1} via ur/uw).
    Result<UnixUser> bob = world_->AddUser("bob");
    ASSERT_TRUE(bob.ok());
    bob_ = bob.value();

    // The signature database, world-readable in /db.
    Result<ObjectId> db_dir =
        world_->fs().MakeDir(world_->init_thread(), world_->fs_root(), "db", Label(), 1 << 20);
    ASSERT_TRUE(db_dir.ok());
    std::vector<Signature> sigs;
    Signature s;
    s.name = "Worm.Test";
    std::string pat = "MALICIOUS-PAYLOAD";
    s.pattern.assign(pat.begin(), pat.end());
    sigs.push_back(s);
    std::string db_text = SerializeDb(sigs);
    Result<ObjectId> db =
        world_->fs().Create(world_->init_thread(), db_dir.value(), "virus.db", Label(),
                            kObjectOverheadBytes + db_text.size() + kPageSize);
    ASSERT_TRUE(db.ok());
    ASSERT_EQ(world_->fs().WriteAt(world_->init_thread(), db_dir.value(), db.value(),
                                   db_text.data(), 0, db_text.size()),
              Status::kOk);
  }
  void TearDown() override { CurrentThread::Set(kInvalidObject); }

  // Writes one of bob's files.
  void WriteBobFile(const std::string& name, const std::string& content) {
    Result<ObjectId> f = world_->fs().Create(world_->init_thread(), bob_.home, name,
                                             bob_.FileLabel());
    ASSERT_TRUE(f.ok()) << StatusName(f.status());
    ASSERT_EQ(world_->fs().WriteAt(world_->init_thread(), bob_.home, f.value(), content.data(),
                                   0, content.size()),
              Status::kOk);
  }

  WrapOptions BobOpts() {
    WrapOptions o;
    o.read_categories = {bob_.ur};
    return o;
  }

  std::unique_ptr<Kernel> kernel_;
  std::unique_ptr<UnixWorld> world_;
  UnixUser bob_;
};

TEST_F(WrapTest, CleanFileScansClean) {
  WriteBobFile("notes.txt", "just some harmless notes");
  Result<WrapResult> r =
      WrapScan(world_->init_context(), {"/home/bob/notes.txt"}, BobOpts());
  ASSERT_TRUE(r.ok()) << StatusName(r.status());
  ASSERT_TRUE(r.value().completed);
  EXPECT_EQ(r.value().report.files_scanned, 1u);
  EXPECT_TRUE(r.value().report.infected.empty());
}

TEST_F(WrapTest, InfectedFileIsDetected) {
  WriteBobFile("evil.bin", "prefix MALICIOUS-PAYLOAD suffix");
  Result<WrapResult> r = WrapScan(world_->init_context(), {"/home/bob/evil.bin"}, BobOpts());
  ASSERT_TRUE(r.ok()) << StatusName(r.status());
  ASSERT_TRUE(r.value().completed);
  ASSERT_EQ(r.value().report.infected.size(), 1u);
  EXPECT_NE(r.value().report.infected[0].find("Worm.Test"), std::string::npos);
}

TEST_F(WrapTest, EncodedFileIsDecodedByHelperAndDetected) {
  // rot13("MALICIOUS-PAYLOAD") — the scanner must spawn the helper, which
  // inherits the v3 taint, decodes into the private /tmp, and the decoded
  // copy gets scanned.
  std::string encoded = "R13:";
  for (char c : std::string("MALICIOUS-PAYLOAD")) {
    if (c >= 'A' && c <= 'Z') {
      encoded += static_cast<char>('A' + (c - 'A' + 13) % 26);
    } else {
      encoded += c;
    }
  }
  WriteBobFile("packed.bin", encoded);
  Result<WrapResult> r = WrapScan(world_->init_context(), {"/home/bob/packed.bin"}, BobOpts());
  ASSERT_TRUE(r.ok()) << StatusName(r.status());
  ASSERT_TRUE(r.value().completed) << "scan did not finish";
  ASSERT_EQ(r.value().report.infected.size(), 1u);
  EXPECT_NE(r.value().report.infected[0].find("Worm.Test"), std::string::npos);
}

TEST_F(WrapTest, MultipleFilesMixedVerdicts) {
  WriteBobFile("a.txt", "clean");
  WriteBobFile("b.bin", "MALICIOUS-PAYLOAD");
  WriteBobFile("c.txt", "also clean");
  Result<WrapResult> r = WrapScan(
      world_->init_context(), {"/home/bob/a.txt", "/home/bob/b.bin", "/home/bob/c.txt"},
      BobOpts());
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r.value().completed);
  EXPECT_EQ(r.value().report.files_scanned, 3u);
  EXPECT_EQ(r.value().report.infected.size(), 1u);
}

TEST_F(WrapTest, RunawayScannerIsKilledByDeadline) {
  world_->procs().RegisterProgram("avscan", [](ProcessContext& ctx) -> int64_t {
    // A compromised scanner that never reports (e.g. leaking via timing).
    for (int i = 0; i < 1000; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      if (ctx.kernel->sys_self_get_label(ctx.self).status() == Status::kHalted) {
        return -1;  // we were revoked
      }
    }
    return 0;
  });
  WriteBobFile("f.txt", "data");
  WrapOptions opts = BobOpts();
  opts.timeout_ms = 300;
  Result<WrapResult> r = WrapScan(world_->init_context(), {"/home/bob/f.txt"}, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.value().completed);
  EXPECT_TRUE(r.value().killed);
}

// ---- The five §1 leak vectors, attempted from inside the sandbox ------------------

class LeakVectorTest : public WrapTest {
 protected:
  void SetUp() override {
    WrapTest::SetUp();
    net_switch_ = std::make_unique<NetSwitch>();
    netd_ = NetDaemon::Start(world_.get(), net_switch_->NewPort(), "netd");
    ASSERT_NE(netd_, nullptr);
    WriteBobFile("secret.txt", "the secret");
  }
  void TearDown() override {
    netd_->Stop();
    WrapTest::TearDown();
  }

  // Runs `malice` as the scanner inside a wrap sandbox and returns its exit
  // status (the scanner program's return value).
  int64_t RunMaliciousScanner(std::function<int64_t(ProcessContext&)> malice) {
    std::atomic<int64_t> status{-1000};
    world_->procs().RegisterProgram(
        "avscan", [&status, malice](ProcessContext& ctx) -> int64_t {
          int64_t s = malice(ctx);
          status.store(s);
          // Report "clean" so wrap finishes promptly.
          ScanReport r;
          r.ok = true;
          std::string out = SerializeReport(r);
          ctx.fds->Write(ctx.self, 0, out.data(), out.size());
          return s;
        });
    WrapOptions opts = BobOpts();
    opts.timeout_ms = 3000;
    Result<WrapResult> r =
        WrapScan(world_->init_context(), {"/home/bob/secret.txt"}, opts);
    EXPECT_TRUE(r.ok());
    return status.load();
  }

  std::unique_ptr<NetSwitch> net_switch_;
  std::unique_ptr<NetDaemon> netd_;
};

TEST_F(LeakVectorTest, Vector1DirectNetworkTransmissionBlocked) {
  // "The scanner can send the data directly to the destination host over a
  // TCP connection" — on HiStar the v3 taint stops both the socket API and
  // the raw device.
  NetDaemon* netd = netd_.get();
  Kernel* k = kernel_.get();
  int64_t status = RunMaliciousScanner([netd, k](ProcessContext& ctx) -> int64_t {
    // Read the secret first (the scanner legitimately can).
    // Then try to exfiltrate.
    Result<uint64_t> sock = netd->Connect(ctx.self, MacFromIndex(0x999), 80);
    if (sock.ok()) {
      return 1;  // leak succeeded — must not happen
    }
    ContainerEntry dev{k->root_container(), netd->device()};
    if (k->sys_net_transmit(ctx.self, dev, dev, 0, 0) == Status::kOk) {
      return 2;
    }
    return 0;
  });
  EXPECT_EQ(status, 0);
}

TEST_F(LeakVectorTest, Vector2HelperProgramInheritsTaint) {
  // "The scanner can arrange for an external program such as sendmail to
  // transmit the data" — any program it spawns is itself v3-tainted.
  NetDaemon* netd = netd_.get();
  int64_t status = RunMaliciousScanner([netd](ProcessContext& ctx) -> int64_t {
    ctx.mgr->RegisterProgram("sendmail", [netd](ProcessContext& mail) -> int64_t {
      Result<uint64_t> sock = netd->Connect(mail.self, MacFromIndex(0x999), 25);
      return sock.ok() ? 1 : 0;
    });
    Result<std::unique_ptr<ProcHandle>> h = ctx.mgr->Spawn(ctx, "sendmail", {});
    if (!h.ok()) {
      return 0;  // could not even spawn outside the sandbox — also fine
    }
    Result<int64_t> st = h.value()->Wait(ctx.self);
    return st.ok() ? st.value() : 0;
  });
  EXPECT_EQ(status, 0);
}

TEST_F(LeakVectorTest, Vector3SharedTmpFileUnreadableByUpdateDaemon) {
  // "The scanner can write the data to a file in /tmp; the update daemon
  // can then read the file" — the scanner's /tmp is private and v3-tainted;
  // the real /tmp rejects its writes; and even the private file is
  // unreadable to the untainted daemon.
  ObjectId real_tmp = world_->tmp_dir();
  Kernel* k = kernel_.get();
  std::atomic<uint64_t> leaked_file{0};
  std::atomic<uint64_t> leaked_dir{0};
  int64_t status = RunMaliciousScanner([&, k](ProcessContext& ctx) -> int64_t {
    // (a) write to the real /tmp directly by id: blocked by labels.
    FileSystem fs(k);
    Result<ObjectId> direct = fs.Create(ctx.self, real_tmp, "exfil", Label());
    if (direct.ok()) {
      return 1;
    }
    // (b) write into the private tmp (allowed) and hope the daemon reads it.
    Result<ObjectId> priv_tmp = ctx.fs.Walk(ctx.self, ctx.cwd, "/tmp");
    if (!priv_tmp.ok()) {
      return 2;
    }
    Label mine = k->sys_self_get_label(ctx.self).value();
    Label file_label;
    for (CategoryId c : mine.Categories()) {
      if (mine.get(c) == Level::k2 || mine.get(c) == Level::k3) {
        file_label.set(c, mine.get(c));
      }
    }
    Result<ObjectId> f = ctx.fs.Create(ctx.self, priv_tmp.value(), "exfil", file_label);
    if (!f.ok()) {
      return 3;
    }
    const char payload[] = "the secret";
    if (ctx.fs.WriteAt(ctx.self, priv_tmp.value(), f.value(), payload, 0, sizeof(payload)) !=
        Status::kOk) {
      return 4;
    }
    leaked_dir.store(priv_tmp.value());
    leaked_file.store(f.value());
    return 0;
  });
  ASSERT_EQ(status, 0);
  // The "update daemon": an untainted thread that knows exactly where the
  // file is. It still cannot read it.
  ASSERT_NE(leaked_file.load(), 0u);
  ObjectId daemon = kernel_->BootstrapThread(Label(), Label(Level::k2), "update-daemon");
  char buf[16];
  Status st = kernel_->sys_segment_read(
      daemon, ContainerEntry{leaked_dir.load(), leaked_file.load()}, buf, 0, 8);
  // Two defenses stack here: while the scan ran, the file's v3 label made it
  // unobservable (kLabelCheckFailed); once wrap finished, it revoked the
  // whole private /tmp, so the drop box does not even exist (kNotFound).
  EXPECT_TRUE(st == Status::kLabelCheckFailed || st == Status::kNotFound)
      << StatusName(st);
}

TEST_F(LeakVectorTest, Vector4ExitStatusAndQuotaChannelsBlocked) {
  // ptrace/proc-style takeover and kernel-state modulation: the scanner
  // cannot signal untainted processes, and cannot modulate untainted
  // quotas. (HiStar's remaining §5.8 leaks exist only where the category
  // owner installs untainting gates; wrap installs none.)
  Kernel* k = kernel_.get();
  ObjectId root = kernel_->root_container();
  int64_t status = RunMaliciousScanner([k, root](ProcessContext& ctx) -> int64_t {
    // Try to grow the root container's usage observably: blocked, the
    // scanner cannot write any untainted container.
    CreateSpec spec;
    spec.container = root;
    spec.quota = 1 << 20;
    spec.descrip = "balloon";
    Result<ObjectId> c = ctx.kernel->sys_container_create(ctx.self, spec, 0);
    if (c.ok()) {
      return 1;
    }
    return 0;
  });
  EXPECT_EQ(status, 0);
  // And from outside: the scanner's own exit status is v3-tainted, so the
  // untainted update daemon cannot even see *that* (no exit untaint gate).
  // This is verified structurally: wrap tore the scan area down, and no
  // object with the v category remains reachable untainted.
}

TEST_F(LeakVectorTest, Vector5SignalingThirdPartyProcessesBlocked) {
  // "take over an existing process ... then transmit through that process":
  // alerting any untainted process requires writing its address space.
  std::atomic<bool> victim_ready{false};
  std::atomic<bool> victim_done{false};
  world_->procs().RegisterProgram("portmap", [&](ProcessContext& ctx) -> int64_t {
    victim_ready.store(true);
    while (!victim_done.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return 0;
  });
  Result<std::unique_ptr<ProcHandle>> victim =
      world_->procs().Spawn(world_->init_context(), "portmap", {});
  ASSERT_TRUE(victim.ok());
  while (!victim_ready.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ProcessIds victim_ids = victim.value()->ids();
  Kernel* k = kernel_.get();
  int64_t status = RunMaliciousScanner([k, victim_ids](ProcessContext& ctx) -> int64_t {
    Status st = k->sys_thread_alert(ctx.self,
                                    ContainerEntry{victim_ids.proc_ct, victim_ids.thread}, 9);
    if (st == Status::kOk) {
      return 1;
    }
    // The signal gate is equally out of reach: invoking it requires
    // shedding the v3 taint, which the floor rule forbids.
    ProcHandle grip(k, victim_ids);
    ProcHandle* gp = &grip;
    Status kill_st = gp->Kill(ctx.self, 9);
    return kill_st == Status::kOk ? 2 : 0;
  });
  EXPECT_EQ(status, 0);
  victim_done.store(true);
  EXPECT_TRUE(victim.value()->Wait(world_->init_thread()).ok());
}

TEST_F(LeakVectorTest, UpdateDaemonCannotReadUserFiles) {
  // The flip side of Figure 2: the update daemon keeps the database fresh
  // but has no path to bob's data.
  ObjectId daemon = kernel_->BootstrapThread(Label(), Label(Level::k2), "update-daemon");
  FileSystem fs(kernel_.get());
  EXPECT_FALSE(fs.ReadDir(daemon, bob_.home).ok());
  // It can, however, rewrite the virus database.
  Result<ObjectId> db_dir = fs.Walk(daemon, world_->fs_root(), "/db");
  ASSERT_TRUE(db_dir.ok());
  Result<ObjectId> db = fs.Lookup(daemon, db_dir.value(), "virus.db");
  ASSERT_TRUE(db.ok());
  const char fresh[] = "New.Sig:4142\n";
  EXPECT_EQ(fs.WriteAt(daemon, db_dir.value(), db.value(), fresh, 0, sizeof(fresh) - 1),
            Status::kOk);
}

}  // namespace
}  // namespace histar
