// File system tests (paper §5.1): directories as containers, kernel-enforced
// permissions, atomic rename, mount tables.
#include "src/unixlib/fs.h"

#include <gtest/gtest.h>

#include "src/unixlib/unix.h"

namespace histar {
namespace {

class FsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    kernel_ = std::make_unique<Kernel>();
    world_ = UnixWorld::Boot(kernel_.get());
    ASSERT_NE(world_, nullptr);
    self_ = world_->init_thread();
    CurrentThread::Set(self_);
  }
  void TearDown() override { CurrentThread::Set(kInvalidObject); }

  FileSystem& fs() { return world_->fs(); }

  std::unique_ptr<Kernel> kernel_;
  std::unique_ptr<UnixWorld> world_;
  ObjectId self_;
};

TEST_F(FsTest, CreateWriteReadFile) {
  ObjectId tmp = world_->tmp_dir();
  Result<ObjectId> f = fs().Create(self_, tmp, "hello.txt", Label());
  ASSERT_TRUE(f.ok()) << StatusName(f.status());
  const char msg[] = "hello, world";
  ASSERT_EQ(fs().WriteAt(self_, tmp, f.value(), msg, 0, sizeof(msg)), Status::kOk);
  char buf[64] = {};
  Result<uint64_t> n = fs().ReadAt(self_, tmp, f.value(), buf, 0, sizeof(buf));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), sizeof(msg));
  EXPECT_STREQ(buf, msg);
}

TEST_F(FsTest, LookupFindsCreatedFiles) {
  ObjectId tmp = world_->tmp_dir();
  Result<ObjectId> f = fs().Create(self_, tmp, "a", Label());
  ASSERT_TRUE(f.ok());
  Result<ObjectId> found = fs().Lookup(self_, tmp, "a");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found.value(), f.value());
  EXPECT_EQ(fs().Lookup(self_, tmp, "missing").status(), Status::kNotFound);
}

TEST_F(FsTest, DuplicateCreateFails) {
  ObjectId tmp = world_->tmp_dir();
  ASSERT_TRUE(fs().Create(self_, tmp, "dup", Label()).ok());
  EXPECT_EQ(fs().Create(self_, tmp, "dup", Label()).status(), Status::kExists);
}

TEST_F(FsTest, UnlinkRemovesFileAndObject) {
  ObjectId tmp = world_->tmp_dir();
  Result<ObjectId> f = fs().Create(self_, tmp, "gone", Label());
  ASSERT_TRUE(f.ok());
  ASSERT_EQ(fs().Unlink(self_, tmp, "gone"), Status::kOk);
  EXPECT_EQ(fs().Lookup(self_, tmp, "gone").status(), Status::kNotFound);
  EXPECT_FALSE(kernel_->ObjectExists(f.value()));
}

TEST_F(FsTest, RenameIsAtomicWithinDirectory) {
  ObjectId tmp = world_->tmp_dir();
  Result<ObjectId> f = fs().Create(self_, tmp, "old", Label());
  ASSERT_TRUE(f.ok());
  ASSERT_EQ(fs().Rename(self_, tmp, "old", "new"), Status::kOk);
  EXPECT_EQ(fs().Lookup(self_, tmp, "old").status(), Status::kNotFound);
  Result<ObjectId> moved = fs().Lookup(self_, tmp, "new");
  ASSERT_TRUE(moved.ok());
  EXPECT_EQ(moved.value(), f.value());
}

TEST_F(FsTest, RenameReplacesTarget) {
  ObjectId tmp = world_->tmp_dir();
  Result<ObjectId> a = fs().Create(self_, tmp, "src", Label());
  Result<ObjectId> b = fs().Create(self_, tmp, "dst", Label());
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(fs().Rename(self_, tmp, "src", "dst"), Status::kOk);
  Result<ObjectId> now = fs().Lookup(self_, tmp, "dst");
  ASSERT_TRUE(now.ok());
  EXPECT_EQ(now.value(), a.value());
  EXPECT_FALSE(kernel_->ObjectExists(b.value()));  // displaced object reclaimed
}

TEST_F(FsTest, ReadDirListsEntries) {
  ObjectId tmp = world_->tmp_dir();
  ASSERT_TRUE(fs().Create(self_, tmp, "one", Label()).ok());
  ASSERT_TRUE(fs().Create(self_, tmp, "two", Label()).ok());
  ASSERT_TRUE(fs().MakeDir(self_, tmp, "sub", Label(), 1 << 16).ok());
  Result<std::vector<std::pair<std::string, ObjectId>>> list = fs().ReadDir(self_, tmp);
  ASSERT_TRUE(list.ok());
  EXPECT_EQ(list.value().size(), 3u);
}

TEST_F(FsTest, WalkResolvesNestedPaths) {
  ObjectId root = world_->fs_root();
  Result<ObjectId> sub = fs().MakeDir(self_, world_->tmp_dir(), "deep", Label(), 1 << 18);
  ASSERT_TRUE(sub.ok());
  Result<ObjectId> f = fs().Create(self_, sub.value(), "leaf", Label());
  ASSERT_TRUE(f.ok());
  Result<ObjectId> got = fs().Walk(self_, root, "/tmp/deep/leaf");
  ASSERT_TRUE(got.ok()) << StatusName(got.status());
  EXPECT_EQ(got.value(), f.value());
  // Dot and dot-dot.
  Result<ObjectId> via_dots = fs().Walk(self_, root, "/tmp/./deep/../deep/leaf");
  ASSERT_TRUE(via_dots.ok());
  EXPECT_EQ(via_dots.value(), f.value());
}

TEST_F(FsTest, WalkParentSplitsLeaf) {
  Result<std::pair<ObjectId, std::string>> r =
      fs().WalkParent(self_, world_->fs_root(), "/tmp/x");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().first, world_->tmp_dir());
  EXPECT_EQ(r.value().second, "x");
}

TEST_F(FsTest, MountOverlaysDirectory) {
  // Mount /tmp at /home's "scratch" name, Plan 9 style (§5.7 uses this for
  // selecting /netd).
  fs().mounts().Mount(world_->home_dir(), "scratch", world_->tmp_dir());
  Result<ObjectId> via = fs().Walk(self_, world_->fs_root(), "/home/scratch");
  ASSERT_TRUE(via.ok());
  EXPECT_EQ(via.value(), world_->tmp_dir());
  fs().mounts().Unmount(world_->home_dir(), "scratch");
  EXPECT_FALSE(fs().Walk(self_, world_->fs_root(), "/home/scratch").ok());
}

TEST_F(FsTest, FileGrowsAcrossQuotaViaQuotaMove) {
  ObjectId tmp = world_->tmp_dir();
  Result<ObjectId> f = fs().Create(self_, tmp, "big", Label(), kObjectOverheadBytes + 1024);
  ASSERT_TRUE(f.ok());
  std::vector<uint8_t> chunk(8192, 7);
  // 8 kB write exceeds the 1 kB quota: WriteAt must pull quota from /tmp.
  ASSERT_EQ(fs().WriteAt(self_, tmp, f.value(), chunk.data(), 0, chunk.size()), Status::kOk);
  Result<uint64_t> size = fs().FileSize(self_, tmp, f.value());
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(size.value(), 8192u);
}

TEST_F(FsTest, KernelEnforcesFileLabels) {
  // A file labeled {ur3, uw0, 1} is protected by the kernel, not the
  // library: a thread without the categories cannot read it even by
  // forging direct syscalls.
  Result<UnixUser> bob = world_->AddUser("bob");
  ASSERT_TRUE(bob.ok());
  Result<ObjectId> secret =
      fs().Create(self_, bob.value().home, "diary", bob.value().FileLabel());
  ASSERT_TRUE(secret.ok()) << StatusName(secret.status());
  const char msg[] = "private";
  ASSERT_EQ(fs().WriteAt(self_, bob.value().home, secret.value(), msg, 0, sizeof(msg)),
            Status::kOk);

  ObjectId stranger = kernel_->BootstrapThread(Label(), Label(Level::k2), "stranger");
  char buf[16];
  // Both through the library...
  FileSystem their_fs(kernel_.get());
  EXPECT_FALSE(their_fs.ReadAt(stranger, bob.value().home, secret.value(), buf, 0, 8).ok());
  // ...and via raw syscalls.
  EXPECT_EQ(kernel_->sys_segment_read(stranger, ContainerEntry{bob.value().home, secret.value()},
                                      buf, 0, 8),
            Status::kLabelCheckFailed);
}

TEST_F(FsTest, MtimeTrackedNoAtime) {
  // §9: HiStar keeps modification time in object metadata; access times are
  // deliberately not tracked (fundamentally at odds with IFC).
  ObjectId tmp = world_->tmp_dir();
  Result<ObjectId> f = fs().Create(self_, tmp, "stamped", Label());
  ASSERT_TRUE(f.ok());
  ASSERT_EQ(fs().TouchMtime(self_, tmp, f.value(), 1234567), Status::kOk);
  Result<uint64_t> mtime = fs().GetMtime(self_, tmp, f.value());
  ASSERT_TRUE(mtime.ok());
  EXPECT_EQ(mtime.value(), 1234567u);
  // Reading does not bump anything.
  char buf[4];
  fs().ReadAt(self_, tmp, f.value(), buf, 0, 0);
  EXPECT_EQ(fs().GetMtime(self_, tmp, f.value()).value(), 1234567u);
}

TEST_F(FsTest, DirectoryListingWithoutWritePermission) {
  // Users that cannot write a directory can still obtain consistent
  // listings via the generation protocol (§5.1).
  Result<UnixUser> bob = world_->AddUser("bob");
  ASSERT_TRUE(bob.ok());
  // Bob's home dir is {ur3, uw0, 1}; a reader owning ur but not uw can
  // list but not create.
  Label reader_label(Level::k1, {{bob.value().ur, Level::kStar}});
  Label reader_clear(Level::k2, {{bob.value().ur, Level::k3}});
  CreateSpec spec;
  spec.container = kernel_->root_container();
  spec.quota = 64 * kPageSize;
  Result<ObjectId> reader =
      kernel_->sys_thread_create(self_, spec, reader_label, reader_clear);
  ASSERT_TRUE(reader.ok()) << StatusName(reader.status());
  ASSERT_TRUE(fs().Create(self_, bob.value().home, "visible", bob.value().FileLabel()).ok());

  FileSystem reader_fs(kernel_.get());
  Result<std::vector<std::pair<std::string, ObjectId>>> list =
      reader_fs.ReadDir(reader.value(), bob.value().home);
  ASSERT_TRUE(list.ok()) << StatusName(list.status());
  EXPECT_EQ(list.value().size(), 1u);
  EXPECT_EQ(list.value()[0].first, "visible");
  // But creation requires write permission (uw).
  EXPECT_FALSE(reader_fs.Create(reader.value(), bob.value().home, "nope", Label()).ok());
}

TEST_F(FsTest, AsyncScansMatchSyncScans) {
  // The PR 5 ring-backed dir-scan pipeline must be observationally
  // identical to the synchronous batched path — same listing, same lookup
  // results — across multiple windows (41 entries > 2 × 16-record windows).
  ObjectId tmp = world_->tmp_dir();
  std::vector<std::string> names;
  for (int i = 0; i < 41; ++i) {
    std::string name = "f" + std::to_string(i);
    ASSERT_TRUE(fs().Create(self_, tmp, name, Label()).ok());
    names.push_back(name);
  }
  Result<std::vector<std::pair<std::string, ObjectId>>> sync_list = fs().ReadDir(self_, tmp);
  ASSERT_TRUE(sync_list.ok());

  ASSERT_EQ(fs().EnableAsyncScans(self_, kernel_->root_container()), Status::kOk);
  ASSERT_TRUE(fs().async_scans_enabled());
  Result<std::vector<std::pair<std::string, ObjectId>>> async_list = fs().ReadDir(self_, tmp);
  ASSERT_TRUE(async_list.ok());
  EXPECT_EQ(async_list.value(), sync_list.value());

  // Lookup exercises the early-stopping scan (drains the in-flight window).
  for (const std::string& name : names) {
    EXPECT_TRUE(fs().Lookup(self_, tmp, name).ok()) << name;
  }
  EXPECT_EQ(fs().Lookup(self_, tmp, "missing").status(), Status::kNotFound);

  // Copies must NOT inherit the ring (single-consumer rule): a forked
  // process's FileSystem starts back on the sync path.
  FileSystem copy = fs();
  EXPECT_FALSE(copy.async_scans_enabled());
  Result<std::vector<std::pair<std::string, ObjectId>>> copy_list = copy.ReadDir(self_, tmp);
  ASSERT_TRUE(copy_list.ok());
  EXPECT_EQ(copy_list.value(), sync_list.value());
}

}  // namespace
}  // namespace histar
