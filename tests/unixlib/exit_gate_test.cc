// §5.8 exit declassification: "Currently our Unix library provides
// untainting gates for up to three operations: process exit, quota
// adjustment, and file creation. ... Not all categories have untainting
// gates; whether or not to create one is up to the category's owner."
//
// These tests pin down the exit-gate contract: a process that taints itself
// after launch can report its exit iff the spawner pre-authorized that leak
// in exactly the right categories — and the gate grants nothing else.
#include <gtest/gtest.h>

#include "src/unixlib/unix.h"

namespace histar {
namespace {

class ExitGateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    kernel_ = std::make_unique<Kernel>();
    world_ = UnixWorld::Boot(kernel_.get());
    ASSERT_NE(world_, nullptr);
    CurrentThread::Set(world_->init_thread());
    // A taint category owned by init (the "network i" stand-in).
    Result<CategoryId> t = kernel_->sys_cat_create(world_->init_thread());
    ASSERT_TRUE(t.ok());
    taint_ = t.value();
  }
  void TearDown() override { CurrentThread::Set(kInvalidObject); }

  // A program that taints itself in `taint_` at level 2 and exits 7.
  ProgramFn SelfTaintingProgram() {
    CategoryId c = taint_;
    return [c](ProcessContext& ctx) -> int64_t {
      Result<Label> mine = ctx.kernel->sys_self_get_label(ctx.self);
      Label l = mine.value();
      l.set(c, Level::k2);
      if (ctx.kernel->sys_self_set_label(ctx.self, l) != Status::kOk) {
        return -100;
      }
      return 7;
    };
  }

  std::unique_ptr<Kernel> kernel_;
  std::unique_ptr<UnixWorld> world_;
  CategoryId taint_ = kInvalidCategory;
};

TEST_F(ExitGateTest, SelfTaintedProcessExitsThroughAuthorizedGate) {
  world_->procs().RegisterProgram("taintme", SelfTaintingProgram());
  ProcessOpts opts;
  opts.exit_untaint = {taint_};
  Result<std::unique_ptr<ProcHandle>> h =
      world_->procs().Spawn(world_->init_context(), "taintme", {}, opts);
  ASSERT_TRUE(h.ok());
  Result<int64_t> status = h.value()->Wait(world_->init_thread(), 5000);
  ASSERT_TRUE(status.ok()) << StatusName(status.status());
  EXPECT_EQ(status.value(), 7);
}

TEST_F(ExitGateTest, WithoutGateTheExitIsInvisible) {
  // The default: the spawner authorizes nothing, so the tainted process's
  // exit write fails and the parent's wait times out. That silence *is* the
  // security property — not even the one "I exited" bit escapes.
  world_->procs().RegisterProgram("taintme", SelfTaintingProgram());
  Result<std::unique_ptr<ProcHandle>> h =
      world_->procs().Spawn(world_->init_context(), "taintme", {});
  ASSERT_TRUE(h.ok());
  Result<int64_t> status = h.value()->Wait(world_->init_thread(), 600);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.status(), Status::kTimedOut);
}

TEST_F(ExitGateTest, GateInWrongCategoryDoesNotHelp) {
  // The spawner authorized a *different* category than the one the process
  // tainted itself with; the declassification must not extend.
  Result<CategoryId> other = kernel_->sys_cat_create(world_->init_thread());
  ASSERT_TRUE(other.ok());
  world_->procs().RegisterProgram("taintme", SelfTaintingProgram());
  ProcessOpts opts;
  opts.exit_untaint = {other.value()};
  Result<std::unique_ptr<ProcHandle>> h =
      world_->procs().Spawn(world_->init_context(), "taintme", {}, opts);
  ASSERT_TRUE(h.ok());
  Result<int64_t> status = h.value()->Wait(world_->init_thread(), 600);
  EXPECT_FALSE(status.ok());
}

TEST_F(ExitGateTest, SpawnerCannotAuthorizeCategoriesItDoesNotOwn) {
  // Gate creation requires L_T ⊑ L_G: listing someone else's category must
  // fail the spawn outright rather than minting an illegitimate
  // declassifier.
  ObjectId stranger = kernel_->BootstrapThread(Label(), Label(Level::k2), "stranger");
  Result<CategoryId> foreign = kernel_->sys_cat_create(stranger);
  ASSERT_TRUE(foreign.ok());

  world_->procs().RegisterProgram("noop", [](ProcessContext&) -> int64_t { return 0; });
  ProcessOpts opts;
  opts.exit_untaint = {foreign.value()};
  Result<std::unique_ptr<ProcHandle>> h =
      world_->procs().Spawn(world_->init_context(), "noop", {}, opts);
  EXPECT_FALSE(h.ok());
  EXPECT_EQ(h.status(), Status::kLabelCheckFailed);
}

TEST_F(ExitGateTest, UntaintedProcessNeedsNoGate) {
  world_->procs().RegisterProgram("noop", [](ProcessContext&) -> int64_t { return 3; });
  Result<std::unique_ptr<ProcHandle>> h =
      world_->procs().Spawn(world_->init_context(), "noop", {});
  ASSERT_TRUE(h.ok());
  Result<int64_t> status = h.value()->Wait(world_->init_thread(), 5000);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status.value(), 3);
}

TEST_F(ExitGateTest, TaintedAtSpawnExitSegmentCarriesTheTaint) {
  // Processes tainted at spawn need no exit gate: their exit segment is
  // labeled with the taint, so the (taint-owning) spawner reads it directly.
  world_->procs().RegisterProgram("noop", [](ProcessContext&) -> int64_t { return 9; });
  ProcessOpts opts;
  opts.taint = Label(Level::k1, {{taint_, Level::k2}});
  Result<std::unique_ptr<ProcHandle>> h =
      world_->procs().Spawn(world_->init_context(), "noop", {}, opts);
  ASSERT_TRUE(h.ok());
  // The exit segment's label includes the taint — an unrelated thread
  // cannot even observe the exit status.
  Result<Label> exit_label = kernel_->sys_obj_get_label(
      world_->init_thread(), ContainerEntry{h.value()->ids().proc_ct, h.value()->ids().exit_seg});
  ASSERT_TRUE(exit_label.ok());
  EXPECT_EQ(exit_label.value().get(taint_), Level::k2);
  Result<int64_t> status = h.value()->Wait(world_->init_thread(), 5000);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status.value(), 9);

  ObjectId stranger = kernel_->BootstrapThread(Label(), Label(Level::k2), "stranger");
  int64_t probe = 0;
  EXPECT_EQ(kernel_->sys_segment_read(
                stranger, ContainerEntry{h.value()->ids().proc_ct, h.value()->ids().exit_seg},
                &probe, 8, 8),
            Status::kLabelCheckFailed);
}

TEST_F(ExitGateTest, ExitGateEntryOnlyWritesTheExitRecord) {
  // Even with the gate present, a malicious tainted program gains nothing
  // but the exit write: its attempts to use the gate-granted ownership for
  // anything else happen inside library code it does not control, and after
  // exit its thread is halted.
  CategoryId c = taint_;
  FileSystem* fs = &world_->fs();
  ObjectId tmp = world_->tmp_dir();
  world_->procs().RegisterProgram("sneak", [c, fs, tmp](ProcessContext& ctx) -> int64_t {
    Label l = ctx.kernel->sys_self_get_label(ctx.self).value();
    l.set(c, Level::k2);
    ctx.kernel->sys_self_set_label(ctx.self, l);
    // Tainted: cannot create untainted files...
    Result<ObjectId> leak = fs->Create(ctx.self, tmp, "leak", Label());
    EXPECT_FALSE(leak.ok());
    return 1;
  });
  ProcessOpts opts;
  opts.exit_untaint = {taint_};
  Result<std::unique_ptr<ProcHandle>> h =
      world_->procs().Spawn(world_->init_context(), "sneak", {}, opts);
  ASSERT_TRUE(h.ok());
  Result<int64_t> status = h.value()->Wait(world_->init_thread(), 5000);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status.value(), 1);
  // The thread is halted after exit; the gate cannot be replayed from it.
  EXPECT_EQ(kernel_->sys_self_get_label(h.value()->ids().thread).status(), Status::kHalted);
}

}  // namespace
}  // namespace histar
