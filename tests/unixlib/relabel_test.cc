// §9 chmod/chown semantics: "chmod, chown, and chgrp revoke all open file
// descriptors and copy the file or directory." Labels are immutable, so
// changing protection means a fresh object — which is exactly what revokes
// every outstanding handle.
#include <gtest/gtest.h>

#include "src/unixlib/unix.h"

namespace histar {
namespace {

class RelabelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    kernel_ = std::make_unique<Kernel>();
    world_ = UnixWorld::Boot(kernel_.get());
    ASSERT_NE(world_, nullptr);
    CurrentThread::Set(world_->init_thread());
    bob_ = world_->AddUser("bob").value();
  }
  void TearDown() override { CurrentThread::Set(kInvalidObject); }

  ObjectId init() const { return world_->init_thread(); }

  std::unique_ptr<Kernel> kernel_;
  std::unique_ptr<UnixWorld> world_;
  UnixUser bob_;
};

TEST_F(RelabelTest, ChmodChangesWhoCanRead) {
  FileSystem& fs = world_->fs();
  ObjectId priv = fs.Create(init(), bob_.home, "memo", bob_.FileLabel()).value();
  ASSERT_EQ(fs.WriteAt(init(), bob_.home, priv, "hello", 0, 5), Status::kOk);

  // "chmod a+r": relabel to world-readable, bob-writable.
  Label relaxed(Level::k1, {{bob_.uw, Level::k0}});
  Result<ObjectId> pub = fs.Relabel(init(), bob_.home, "memo", relaxed);
  ASSERT_TRUE(pub.ok()) << StatusName(pub.status());
  EXPECT_NE(pub.value(), priv);  // a copy, not a mutation

  // Contents survived the copy.
  char buf[8] = {};
  ASSERT_TRUE(fs.ReadAt(init(), bob_.home, pub.value(), buf, 0, 5).ok());
  EXPECT_STREQ(buf, "hello");

  // A stranger still cannot LIST bob's home (the directory keeps its label),
  // but given the entry it can now read the file — and still not write it.
  ObjectId stranger = kernel_->BootstrapThread(Label(), Label(Level::k2), "stranger");
  char sbuf[8] = {};
  EXPECT_EQ(kernel_->sys_segment_read(stranger, ContainerEntry{bob_.home, pub.value()}, sbuf,
                                      0, 5),
            Status::kLabelCheckFailed);  // entry via bob's {ur3} home fails
  // Through a world-readable directory the relaxed label is what decides:
  Result<ObjectId> shared =
      fs.MakeDir(init(), world_->fs_root(), "shared", Label()).value();
  ObjectId pub2 = fs.Create(init(), shared.value(), "note", relaxed).value();
  ASSERT_EQ(fs.WriteAt(init(), shared.value(), pub2, "world", 0, 5), Status::kOk);
  EXPECT_EQ(kernel_->sys_segment_read(stranger, ContainerEntry{shared.value(), pub2}, sbuf, 0,
                                      5),
            Status::kOk);
  EXPECT_EQ(kernel_->sys_segment_write(stranger, ContainerEntry{shared.value(), pub2}, "x", 0,
                                       1),
            Status::kLabelCheckFailed);
}

TEST_F(RelabelTest, RelabelRevokesOpenDescriptors) {
  FileSystem& fs = world_->fs();
  ObjectId shared = fs.MakeDir(init(), world_->fs_root(), "pub", Label()).value();
  ObjectId f = fs.Create(init(), shared, "doc", Label()).value();
  ASSERT_EQ(fs.WriteAt(init(), shared, f, "v1", 0, 2), Status::kOk);

  // An open descriptor on the pre-chmod object.
  FdTable fds(kernel_.get(), world_->init_context().ids, Label());
  Result<int> fd = fds.OpenFile(init(), shared, f, 0);
  ASSERT_TRUE(fd.ok());

  // chmod: tighten to bob-only.
  Result<ObjectId> tightened = fs.Relabel(init(), shared, "doc", bob_.FileLabel());
  ASSERT_TRUE(tightened.ok());

  // The old object is gone; the descriptor is dead — no grandfathered reads
  // around the new policy.
  EXPECT_FALSE(kernel_->ObjectExists(f));
  char buf[4];
  Result<uint64_t> r = fds.Read(init(), fd.value(), buf, 2);
  EXPECT_FALSE(r.ok());

  // The new object carries the contents under the new label.
  char nbuf[4] = {};
  ASSERT_TRUE(fs.ReadAt(init(), shared, tightened.value(), nbuf, 0, 2).ok());
  EXPECT_STREQ(nbuf, "v1");
}

TEST_F(RelabelTest, RelabelRequiresReadingTheOldFile) {
  // The copy is an observation: a thread that cannot read the file cannot
  // relabel it (there is no "blind chmod" — that would be a write-down).
  FileSystem& fs = world_->fs();
  ObjectId shared = fs.MakeDir(init(), world_->fs_root(), "pub2", Label()).value();
  ASSERT_TRUE(fs.Create(init(), shared, "locked", bob_.FileLabel()).ok());

  ObjectId stranger = kernel_->BootstrapThread(Label(), Label(Level::k2), "stranger");
  FileSystem fs2(kernel_.get());
  Result<ObjectId> grab = fs2.Relabel(stranger, shared, "locked", Label());
  EXPECT_FALSE(grab.ok());
  // And the original is untouched, still under bob's label.
  Result<ObjectId> still = fs2.Lookup(stranger, shared, "locked");
  ASSERT_TRUE(still.ok());
  Result<Label> l = kernel_->sys_obj_get_label(init(), ContainerEntry{shared, still.value()});
  ASSERT_TRUE(l.ok());
  EXPECT_EQ(l.value(), bob_.FileLabel());
}

TEST_F(RelabelTest, RelabelOfMissingNameFails) {
  FileSystem& fs = world_->fs();
  EXPECT_EQ(fs.Relabel(init(), world_->tmp_dir(), "ghost", Label()).status(),
            Status::kNotFound);
}

TEST_F(RelabelTest, DirectoryListingShowsTheNewObject) {
  FileSystem& fs = world_->fs();
  ObjectId shared = fs.MakeDir(init(), world_->fs_root(), "pub3", Label()).value();
  ObjectId f = fs.Create(init(), shared, "doc", Label()).value();
  Result<ObjectId> relabeled = fs.Relabel(init(), shared, "doc", bob_.FileLabel());
  ASSERT_TRUE(relabeled.ok());
  Result<ObjectId> found = fs.Lookup(init(), shared, "doc");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found.value(), relabeled.value());
  EXPECT_NE(found.value(), f);
  Result<std::vector<std::pair<std::string, ObjectId>>> ls = fs.ReadDir(init(), shared);
  ASSERT_TRUE(ls.ok());
  ASSERT_EQ(ls.value().size(), 1u);
  EXPECT_EQ(ls.value()[0].second, relabeled.value());
}

}  // namespace
}  // namespace histar
