// File-descriptor semantics (paper §5.3): descriptors are segments mapped by
// every process that holds them open — seek position and open state are
// *shared*, and a descriptor dies only after every holder closes it.
#include <gtest/gtest.h>

#include "src/unixlib/unix.h"

namespace histar {
namespace {

class FdTest : public ::testing::Test {
 protected:
  void SetUp() override {
    kernel_ = std::make_unique<Kernel>();
    world_ = UnixWorld::Boot(kernel_.get());
    ASSERT_NE(world_, nullptr);
    CurrentThread::Set(world_->init_thread());
    ctx_ = &world_->init_context();
  }
  void TearDown() override { CurrentThread::Set(kInvalidObject); }

  ObjectId init() const { return world_->init_thread(); }

  // A file with known contents in /tmp.
  std::pair<ObjectId, ObjectId> MakeFile(const std::string& name, const std::string& content) {
    ObjectId dir = world_->tmp_dir();
    Result<ObjectId> f = world_->fs().Create(init(), dir, name, Label());
    EXPECT_TRUE(f.ok());
    EXPECT_EQ(world_->fs().WriteAt(init(), dir, f.value(), content.data(), 0, content.size()),
              Status::kOk);
    return {dir, f.value()};
  }

  std::unique_ptr<Kernel> kernel_;
  std::unique_ptr<UnixWorld> world_;
  ProcessContext* ctx_ = nullptr;
};

TEST_F(FdTest, SequentialReadsAdvanceTheSharedOffset) {
  auto [dir, file] = MakeFile("seq", "abcdefghij");
  FdTable fds(kernel_.get(), ctx_->ids, Label());
  Result<int> fd = fds.OpenFile(init(), dir, file, 0);
  ASSERT_TRUE(fd.ok());
  char buf[4] = {};
  ASSERT_EQ(fds.Read(init(), fd.value(), buf, 3).value(), 3u);
  EXPECT_EQ(std::string(buf, 3), "abc");
  ASSERT_EQ(fds.Read(init(), fd.value(), buf, 3).value(), 3u);
  EXPECT_EQ(std::string(buf, 3), "def");
  ASSERT_EQ(fds.Seek(init(), fd.value(), 9).value(), 9u);
  ASSERT_EQ(fds.Read(init(), fd.value(), buf, 3).value(), 1u);  // short read at EOF
  EXPECT_EQ(buf[0], 'j');
}

TEST_F(FdTest, AdoptedDescriptorSharesSeekPosition) {
  // The §5.3 point: the fd *segment* is the state; two tables mapping the
  // same segment see one seek pointer (as parent and child do after fork).
  auto [dir, file] = MakeFile("shared", "0123456789");
  FdTable parent(kernel_.get(), ctx_->ids, Label());
  Result<int> pfd = parent.OpenFile(init(), dir, file, 0);
  ASSERT_TRUE(pfd.ok());

  FdTable child(kernel_.get(), ctx_->ids, Label());
  Result<int> cfd = child.Adopt(init(), parent.Entry(pfd.value()).value());
  ASSERT_TRUE(cfd.ok());

  char buf[4] = {};
  ASSERT_EQ(parent.Read(init(), pfd.value(), buf, 4).value(), 4u);
  EXPECT_EQ(std::string(buf, 4), "0123");
  // The child continues where the parent left off.
  ASSERT_EQ(child.Read(init(), cfd.value(), buf, 4).value(), 4u);
  EXPECT_EQ(std::string(buf, 4), "4567");
  // And vice versa.
  ASSERT_EQ(parent.Read(init(), pfd.value(), buf, 2).value(), 2u);
  EXPECT_EQ(std::string(buf, 2), "89");
}

TEST_F(FdTest, PipeEofRequiresEveryWriterClosed) {
  FdTable fds(kernel_.get(), ctx_->ids, Label());
  Result<std::pair<int, int>> p = fds.CreatePipe(init());
  ASSERT_TRUE(p.ok());

  // A second holder of the write end in its *own* process container (a
  // forked child): the fd segment gets hard-linked there, so each close
  // drops one link and the descriptor outlives the first.
  CreateSpec cspec;
  cspec.container = kernel_->root_container();
  cspec.descrip = "child-proc";
  cspec.quota = 1 << 20;
  Result<ObjectId> child_ct = kernel_->sys_container_create(init(), cspec, 0);
  ASSERT_TRUE(child_ct.ok());
  ProcessIds child_ids = ctx_->ids;
  child_ids.proc_ct = child_ct.value();
  FdTable other(kernel_.get(), child_ids, Label());
  Result<int> wfd2 = other.Adopt(init(), fds.Entry(p.value().second).value());
  ASSERT_TRUE(wfd2.ok());

  ASSERT_TRUE(fds.Write(init(), p.value().second, "x", 1).ok());
  char buf[4];
  ASSERT_EQ(fds.Read(init(), p.value().first, buf, 4).value(), 1u);

  // One writer closes: no EOF yet (the other could still write).
  ASSERT_EQ(fds.Close(init(), p.value().second), Status::kOk);
  Result<uint64_t> pending = fds.ReadTimeout(init(), p.value().first, buf, 4, 150);
  EXPECT_EQ(pending.status(), Status::kAgain);

  // Last writer closes: EOF.
  ASSERT_EQ(other.Close(init(), wfd2.value()), Status::kOk);
  Result<uint64_t> eof = fds.Read(init(), p.value().first, buf, 4);
  ASSERT_TRUE(eof.ok());
  EXPECT_EQ(eof.value(), 0u);
}

TEST_F(FdTest, WriteToClosedReaderFails) {
  FdTable fds(kernel_.get(), ctx_->ids, Label());
  Result<std::pair<int, int>> p = fds.CreatePipe(init());
  ASSERT_TRUE(p.ok());
  ASSERT_EQ(fds.Close(init(), p.value().first), Status::kOk);
  Result<uint64_t> w = fds.Write(init(), p.value().second, "x", 1);
  EXPECT_EQ(w.status(), Status::kNoPerm);  // EPIPE
}

TEST_F(FdTest, PipeWrapsAroundItsRing) {
  // Cross the 4 kB ring boundary several times with odd-sized chunks to
  // exercise the two-part bulk copy.
  FdTable fds(kernel_.get(), ctx_->ids, Label());
  Result<std::pair<int, int>> p = fds.CreatePipe(init());
  ASSERT_TRUE(p.ok());
  std::string pattern;
  for (int i = 0; i < 997; ++i) {
    pattern.push_back(static_cast<char>('a' + i % 26));
  }
  std::string all_read;
  for (int round = 0; round < 13; ++round) {
    ASSERT_EQ(fds.Write(init(), p.value().second, pattern.data(), pattern.size()).value(),
              pattern.size());
    char buf[1024];
    uint64_t got = 0;
    while (got < pattern.size()) {
      Result<uint64_t> n = fds.Read(init(), p.value().first, buf, sizeof(buf));
      ASSERT_TRUE(n.ok());
      all_read.append(buf, n.value());
      got += n.value();
    }
  }
  // Every round must read back exactly the pattern.
  for (int round = 0; round < 13; ++round) {
    EXPECT_EQ(all_read.substr(static_cast<size_t>(round) * pattern.size(), pattern.size()),
              pattern)
        << "corruption in round " << round;
  }
}

TEST_F(FdTest, ReadTimeoutHonorsItsBudget) {
  FdTable fds(kernel_.get(), ctx_->ids, Label());
  Result<std::pair<int, int>> p = fds.CreatePipe(init());
  ASSERT_TRUE(p.ok());
  char buf[4];
  auto t0 = std::chrono::steady_clock::now();
  Result<uint64_t> r = fds.ReadTimeout(init(), p.value().first, buf, 4, 120);
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - t0)
                     .count();
  EXPECT_EQ(r.status(), Status::kAgain);
  EXPECT_GE(elapsed, 100);
  EXPECT_LT(elapsed, 2000);
}

TEST_F(FdTest, DescriptorCountTracksOpenAndClose) {
  FdTable fds(kernel_.get(), ctx_->ids, Label());
  EXPECT_EQ(fds.count(), 0);
  auto [dir, file] = MakeFile("cnt", "z");
  Result<int> a = fds.OpenFile(init(), dir, file, 0);
  Result<std::pair<int, int>> p = fds.CreatePipe(init());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(fds.count(), 3);
  EXPECT_EQ(fds.Close(init(), a.value()), Status::kOk);
  EXPECT_EQ(fds.count(), 2);
  // fd numbers are reused lowest-first, like Unix.
  Result<int> b = fds.OpenFile(init(), dir, file, 0);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b.value(), a.value());
}

TEST_F(FdTest, RingBackedPipeTransfersRoundTrip) {
  // The PR 5 ring mode: every pipe chunk goes out as one linked chain
  // (data ops cancel the cursor commit on failure) — byte streams must be
  // identical to the sync path, including wrap-around chunks.
  FdTable fds(kernel_.get(), ctx_->ids, Label());
  ASSERT_EQ(fds.EnableRingTransfers(init()), Status::kOk);
  ASSERT_TRUE(fds.ring_transfers_enabled());
  Result<std::pair<int, int>> p = fds.CreatePipe(init());
  ASSERT_TRUE(p.ok());
  // Push enough data through to wrap the 4 KiB pipe buffer several times.
  std::string sent;
  std::string got;
  char chunk[512];
  for (int round = 0; round < 24; ++round) {
    for (size_t i = 0; i < sizeof(chunk); ++i) {
      chunk[i] = static_cast<char>('A' + ((round + static_cast<int>(i)) % 23));
    }
    Result<uint64_t> w = fds.Write(init(), p.value().second, chunk, sizeof(chunk));
    ASSERT_TRUE(w.ok()) << StatusName(w.status());
    sent.append(chunk, w.value());
    char rbuf[700];
    Result<uint64_t> r = fds.Read(init(), p.value().first, rbuf, sizeof(rbuf));
    ASSERT_TRUE(r.ok()) << StatusName(r.status());
    got.append(rbuf, r.value());
  }
  // Drain the remainder.
  for (;;) {
    char rbuf[700];
    Result<uint64_t> r = fds.ReadTimeout(init(), p.value().first, rbuf, sizeof(rbuf), 50);
    if (!r.ok() || r.value() == 0) {
      break;
    }
    got.append(rbuf, r.value());
  }
  EXPECT_EQ(got, sent);
}

}  // namespace
}  // namespace histar
