// Process, spawn/fork/exec, pipe, and signal tests (paper §5.2–§5.6, §7.1).
#include "src/unixlib/process.h"

#include <gtest/gtest.h>

#include <atomic>

#include "src/unixlib/unix.h"

namespace histar {
namespace {

class ProcessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    kernel_ = std::make_unique<Kernel>();
    world_ = UnixWorld::Boot(kernel_.get());
    ASSERT_NE(world_, nullptr);
    CurrentThread::Set(world_->init_thread());
  }
  void TearDown() override { CurrentThread::Set(kInvalidObject); }

  ProcessContext& init() { return world_->init_context(); }
  ProcessManager& procs() { return world_->procs(); }

  std::unique_ptr<Kernel> kernel_;
  std::unique_ptr<UnixWorld> world_;
};

TEST_F(ProcessTest, SpawnRunsProgramAndReportsExitStatus) {
  procs().RegisterProgram("ret42", [](ProcessContext&) -> int64_t { return 42; });
  Result<std::unique_ptr<ProcHandle>> h = procs().Spawn(init(), "ret42", {});
  ASSERT_TRUE(h.ok()) << StatusName(h.status());
  Result<int64_t> status = h.value()->Wait(init().self);
  ASSERT_TRUE(status.ok()) << StatusName(status.status());
  EXPECT_EQ(status.value(), 42);
}

TEST_F(ProcessTest, SpawnPathResolvesBinaries) {
  procs().RegisterProgram("true", [](ProcessContext&) -> int64_t { return 0; });
  ASSERT_TRUE(procs()
                  .InstallBinary(init().self, &world_->fs(), world_->bin_dir(), "true", "true",
                                 Label())
                  .ok());
  Result<std::unique_ptr<ProcHandle>> h = procs().SpawnPath(init(), "/bin/true", {});
  ASSERT_TRUE(h.ok()) << StatusName(h.status());
  Result<int64_t> status = h.value()->Wait(init().self);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status.value(), 0);
}

TEST_F(ProcessTest, ProcessesSeeOwnArgs) {
  procs().RegisterProgram("argcheck", [](ProcessContext& ctx) -> int64_t {
    return static_cast<int64_t>(ctx.args.size());
  });
  Result<std::unique_ptr<ProcHandle>> h =
      procs().Spawn(init(), "argcheck", {"argcheck", "a", "b"});
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h.value()->Wait(init().self).value(), 3);
}

TEST_F(ProcessTest, InternalContainerIsPrivate) {
  // Figure 6: another process cannot observe a process's internals (AS,
  // heap, stack) — they are labeled {pr3, pw0, 1}.
  std::atomic<bool> checked{false};
  procs().RegisterProgram("sleeper", [&](ProcessContext& ctx) -> int64_t {
    while (!checked.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return 0;
  });
  Result<std::unique_ptr<ProcHandle>> h = procs().Spawn(init(), "sleeper", {});
  ASSERT_TRUE(h.ok());
  const ProcessIds& ids = h.value()->ids();
  ObjectId stranger = kernel_->BootstrapThread(Label(), Label(Level::k2), "stranger");
  // The process container itself is readable (exit status must be), but
  // the internal container is not.
  Result<std::vector<ObjectId>> outer = kernel_->sys_container_list(stranger, ids.proc_ct);
  EXPECT_TRUE(outer.ok()) << StatusName(outer.status());
  Result<std::vector<ObjectId>> inner = kernel_->sys_container_list(stranger, ids.internal_ct);
  EXPECT_FALSE(inner.ok());
  // Nor can a stranger write the exit-status segment ({pw0, 1}).
  uint64_t fake = 1;
  EXPECT_EQ(kernel_->sys_segment_write(stranger, ContainerEntry{ids.proc_ct, ids.exit_seg},
                                       &fake, 0, 8),
            Status::kLabelCheckFailed);
  checked.store(true);
  EXPECT_TRUE(h.value()->Wait(init().self).ok());
}

TEST_F(ProcessTest, PipesCarryDataBetweenProcesses) {
  ASSERT_TRUE(init().fds->CreatePipe(init().self).ok());
  // fds 0 (read) and 1 (write) now exist in init's table.
  procs().RegisterProgram("producer", [](ProcessContext& ctx) -> int64_t {
    const char msg[] = "through the pipe";
    Result<uint64_t> n = ctx.fds->Write(ctx.self, 1, msg, sizeof(msg));
    return n.ok() ? 0 : -1;
  });
  ProcessOpts opts;
  opts.inherit_fds.push_back(init().fds->Entry(0).value());
  opts.inherit_fds.push_back(init().fds->Entry(1).value());
  Result<std::unique_ptr<ProcHandle>> h = procs().Spawn(init(), "producer", {}, opts);
  ASSERT_TRUE(h.ok()) << StatusName(h.status());
  char buf[64] = {};
  Result<uint64_t> n = init().fds->Read(init().self, 0, buf, sizeof(buf));
  ASSERT_TRUE(n.ok()) << StatusName(n.status());
  EXPECT_STREQ(buf, "through the pipe");
  EXPECT_EQ(h.value()->Wait(init().self).value(), 0);
}

TEST_F(ProcessTest, PipeEofWhenWritersClose) {
  Result<std::pair<int, int>> p = init().fds->CreatePipe(init().self);
  ASSERT_TRUE(p.ok());
  const char msg[] = "x";
  ASSERT_TRUE(init().fds->Write(init().self, p.value().second, msg, 1).ok());
  ASSERT_EQ(init().fds->Close(init().self, p.value().second), Status::kOk);
  char buf[4];
  Result<uint64_t> n1 = init().fds->Read(init().self, p.value().first, buf, 4);
  ASSERT_TRUE(n1.ok());
  EXPECT_EQ(n1.value(), 1u);
  Result<uint64_t> n2 = init().fds->Read(init().self, p.value().first, buf, 4);
  ASSERT_TRUE(n2.ok());
  EXPECT_EQ(n2.value(), 0u);  // EOF
}

TEST_F(ProcessTest, SharedSeekPositionAcrossFork) {
  // §5.3: descriptors shared via fork share their seek position, because
  // the offset lives in the fd segment itself.
  ObjectId tmp = world_->tmp_dir();
  Result<ObjectId> f = world_->fs().Create(init().self, tmp, "seekfile", Label());
  ASSERT_TRUE(f.ok());
  const char content[] = "0123456789";
  ASSERT_EQ(world_->fs().WriteAt(init().self, tmp, f.value(), content, 0, 10), Status::kOk);
  Result<int> fd = init().fds->OpenFile(init().self, tmp, f.value(), 0);
  ASSERT_TRUE(fd.ok());
  int the_fd = fd.value();

  Result<std::unique_ptr<ProcHandle>> h =
      procs().Fork(init(), [the_fd](ProcessContext& ctx) -> int64_t {
        char b[4] = {};
        Result<uint64_t> n = ctx.fds->Read(ctx.self, the_fd, b, 4);
        return n.ok() && n.value() == 4 && memcmp(b, "0123", 4) == 0 ? 0 : -1;
      });
  ASSERT_TRUE(h.ok()) << StatusName(h.status());
  ASSERT_EQ(h.value()->Wait(init().self).value(), 0);
  // The child consumed 4 bytes; the parent's next read continues at 4.
  char b[4] = {};
  Result<uint64_t> n = init().fds->Read(init().self, the_fd, b, 4);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(memcmp(b, "4567", 4), 0);
}

TEST_F(ProcessTest, ForkCopiesHeap) {
  // Writes to the parent's heap before fork are visible in the child's
  // *copy*; child writes do not come back (copy, not share).
  uint32_t magic = 0xfeedface;
  ASSERT_EQ(kernel_->sys_segment_write(init().self,
                                       ContainerEntry{init().ids.internal_ct, init().ids.heap},
                                       &magic, 0, 4),
            Status::kOk);
  Result<std::unique_ptr<ProcHandle>> h =
      procs().Fork(init(), [](ProcessContext& ctx) -> int64_t {
        uint32_t v = 0;
        Status st = ctx.kernel->sys_segment_read(
            ctx.self, ContainerEntry{ctx.ids.internal_ct, ctx.ids.heap}, &v, 0, 4);
        if (st != Status::kOk || v != 0xfeedface) {
          return -1;
        }
        uint32_t w = 0x12345678;
        ctx.kernel->sys_segment_write(ctx.self,
                                      ContainerEntry{ctx.ids.internal_ct, ctx.ids.heap}, &w, 0,
                                      4);
        return 0;
      });
  ASSERT_TRUE(h.ok()) << StatusName(h.status());
  ASSERT_EQ(h.value()->Wait(init().self).value(), 0);
  uint32_t after = 0;
  ASSERT_EQ(kernel_->sys_segment_read(init().self,
                                      ContainerEntry{init().ids.internal_ct, init().ids.heap},
                                      &after, 0, 4),
            Status::kOk);
  EXPECT_EQ(after, 0xfeedface);  // parent's heap unchanged
}

TEST_F(ProcessTest, ExecReplacesImage) {
  procs().RegisterProgram("ret7", [](ProcessContext&) -> int64_t { return 7; });
  ASSERT_TRUE(procs()
                  .InstallBinary(init().self, &world_->fs(), world_->bin_dir(), "seven",
                                 "ret7", Label())
                  .ok());
  procs().RegisterProgram("execer", [](ProcessContext& ctx) -> int64_t {
    ObjectId old_heap = ctx.ids.heap;
    Result<int64_t> st = ctx.mgr->Exec(ctx, "/bin/seven", {});
    if (!st.ok()) {
      return -1;
    }
    // exec created a fresh heap and dropped the old one.
    if (ctx.ids.heap == old_heap) {
      return -2;
    }
    return st.value();
  });
  Result<std::unique_ptr<ProcHandle>> h = procs().Spawn(init(), "execer", {});
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h.value()->Wait(init().self).value(), 7);
}

TEST_F(ProcessTest, SignalsDeliverToHandlers) {
  std::atomic<int> got_signo{0};
  std::atomic<bool> ready{false};
  procs().RegisterProgram("sighandler", [&](ProcessContext& ctx) -> int64_t {
    ctx.signal_handlers[15] = [&](int s) { got_signo.store(s); };
    ready.store(true);
    for (int i = 0; i < 500 && got_signo.load() == 0; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      ctx.PollSignals();
    }
    return got_signo.load();
  });
  Result<std::unique_ptr<ProcHandle>> h = procs().Spawn(init(), "sighandler", {});
  ASSERT_TRUE(h.ok());
  while (!ready.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_EQ(h.value()->Kill(init().self, 15), Status::kOk);
  Result<int64_t> status = h.value()->Wait(init().self);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status.value(), 15);
  EXPECT_EQ(got_signo.load(), 15);
}

TEST_F(ProcessTest, SignalGateGuardBlocksUnauthorized) {
  // §5.6: the signal gate's clearance is {uw0, 2} — only owners of the
  // guard category may signal.
  Result<CategoryId> guard = kernel_->sys_cat_create(world_->init_thread());
  ASSERT_TRUE(guard.ok());
  std::atomic<bool> done{false};
  procs().RegisterProgram("guarded", [&](ProcessContext& ctx) -> int64_t {
    while (!done.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return 0;
  });
  ProcessOpts opts;
  opts.signal_guard = guard.value();
  Result<std::unique_ptr<ProcHandle>> h = procs().Spawn(init(), "guarded", {}, opts);
  ASSERT_TRUE(h.ok()) << StatusName(h.status());

  // A stranger without the guard category cannot signal.
  ObjectId stranger = kernel_->BootstrapThread(Label(), Label(Level::k2), "stranger");
  ProcHandle stranger_view(kernel_.get(), h.value()->ids());
  EXPECT_EQ(stranger_view.Kill(stranger, 9), Status::kLabelCheckFailed);
  // init owns the guard: allowed.
  EXPECT_EQ(h.value()->Kill(init().self, 9), Status::kOk);
  done.store(true);
  EXPECT_TRUE(h.value()->Wait(init().self).ok());
}

TEST_F(ProcessTest, DestroyRevokesWithoutCooperation) {
  // §3.2 / §9: the administrator (anyone with write access to the parent
  // container) can revoke a process's resources without being able to
  // observe or modify it.
  std::atomic<bool> spin{true};
  procs().RegisterProgram("stubborn", [&](ProcessContext& ctx) -> int64_t {
    while (spin.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      // A destroyed thread notices at its next syscall.
      if (ctx.kernel->sys_self_get_label(ctx.self).status() == Status::kHalted) {
        return -1;
      }
    }
    return 0;
  });
  Result<std::unique_ptr<ProcHandle>> h = procs().Spawn(init(), "stubborn", {});
  ASSERT_TRUE(h.ok());
  ObjectId thread_id = h.value()->ids().thread;
  ASSERT_TRUE(kernel_->ObjectExists(thread_id));
  ASSERT_EQ(h.value()->Destroy(init().self), Status::kOk);
  EXPECT_FALSE(kernel_->ObjectExists(thread_id));
  spin.store(false);  // let the host thread unwind
}

TEST_F(ProcessTest, SpawnIsCheaperThanForkExecInSyscalls) {
  // §7.1's headline: fork+exec needs ~2.5× the syscalls of spawn. We verify
  // the ordering and a sensible gap, not the exact 317/127 (our scaffolding
  // differs in detail).
  procs().RegisterProgram("true", [](ProcessContext&) -> int64_t { return 0; });
  ASSERT_TRUE(procs()
                  .InstallBinary(init().self, &world_->fs(), world_->bin_dir(), "true", "true",
                                 Label())
                  .ok());

  uint64_t spawn_before = kernel_->syscall_count();
  {
    Result<std::unique_ptr<ProcHandle>> h = procs().SpawnPath(init(), "/bin/true", {});
    ASSERT_TRUE(h.ok());
    ASSERT_TRUE(h.value()->Wait(init().self).ok());
  }
  uint64_t spawn_cost = kernel_->syscall_count() - spawn_before;

  uint64_t fork_before = kernel_->syscall_count();
  {
    Result<std::unique_ptr<ProcHandle>> h =
        procs().Fork(init(), [](ProcessContext& ctx) -> int64_t {
          Result<int64_t> st = ctx.mgr->Exec(ctx, "/bin/true", {});
          return st.ok() ? st.value() : -1;
        });
    ASSERT_TRUE(h.ok());
    ASSERT_TRUE(h.value()->Wait(init().self).ok());
  }
  uint64_t forkexec_cost = kernel_->syscall_count() - fork_before;

  EXPECT_GT(forkexec_cost, spawn_cost + 10)
      << "spawn=" << spawn_cost << " fork+exec=" << forkexec_cost;
}

}  // namespace
}  // namespace histar
