// The §5.5 gate-call scenario, Figure 7's three thread states end to end:
// a timestamped-signature daemon D, a client P that does not trust D with
// its input, and the return-gate protocol that launders the taint.
//
//  state 1: T_P = {pr⋆, pw⋆, r⋆, 1}            — before the service call
//  state 2: T_P = {dr⋆, dw⋆, r⋆, t3, 1}        — inside D, tainted t3
//  state 3: T_P = {pr⋆, pw⋆, r⋆, t⋆, 1}        — back via the return gate
//
// The properties pinned here:
//  * the tainted thread can READ the daemon's state (the signing key) but
//    cannot MODIFY it — it must work in a tainted copy (the "fork D" move);
//  * the daemon donates nothing: the client pre-creates a {t3, r0, 1}
//    container for the tainted work (resource donation, §5.5);
//  * only the return gate restores ownership — the tainted thread cannot
//    shed t3 by itself;
//  * after return, the client owns t and can declassify the signature.
#include <gtest/gtest.h>

#include "tests/kernel/kernel_test_util.h"

namespace histar {
namespace {

// Daemon state shared with the gate entries via closure words (the closure
// stands in for the daemon's address-space pointers).
struct DaemonWorld {
  Kernel* kernel = nullptr;
  ObjectId daemon_ct = kInvalidObject;   // {dr3, dw0, 1}
  ObjectId key_seg = kInvalidObject;     // the signing key, {dr3, dw0, 1}
  ObjectId counter_seg = kInvalidObject; // mutable daemon state, {dr3, dw0, 1}
};
DaemonWorld* g_world = nullptr;

// The service entry: sign the 8-byte message in the invoker's local segment
// with key ⊕ counter. Also *try* to bump the daemon's counter — which must
// fail for tainted invocations and succeed for untainted ones; the outcome
// is reported back so the test can assert both sides.
void SignEntry(GateCall& call) {
  Kernel* k = call.kernel;
  uint64_t msg = 0;
  k->sys_self_local_read(call.thread, &msg, 0, 8);
  uint64_t key = 0;
  k->sys_segment_read(call.thread, ContainerEntry{g_world->daemon_ct, g_world->key_seg}, &key,
                      0, 8);
  uint64_t counter = 0;
  ContainerEntry counter_ce{g_world->daemon_ct, g_world->counter_seg};
  k->sys_segment_read(call.thread, counter_ce, &counter, 0, 8);

  uint64_t bumped = counter + 1;
  Status wr = k->sys_segment_write(call.thread, counter_ce, &bumped, 0, 8);

  uint64_t sig = msg ^ key ^ counter;
  k->sys_self_local_write(call.thread, &sig, 8, 8);
  int64_t wr_status = static_cast<int64_t>(wr);
  k->sys_self_local_write(call.thread, &wr_status, 16, 8);
}

class GateCallTest : public KernelTest {
 protected:
  void SetUp() override {
    KernelTest::SetUp();
    kernel_->RegisterGateEntry("ts.sign", SignEntry);
    kernel_->RegisterGateEntry("noop", [](GateCall&) {});

    // The daemon: its own read/write categories, a private container with
    // the key and a mutable counter, and the service gate carrying dr⋆/dw⋆.
    dr_ = kernel_->sys_cat_create(init_).value();
    dw_ = kernel_->sys_cat_create(init_).value();
    Label dlabel(Level::k1, {{dr_, Level::k3}, {dw_, Level::k0}});
    world_.kernel = kernel_.get();
    world_.daemon_ct = MakeContainer(dlabel);
    world_.key_seg = MakeSegment(dlabel, 16, world_.daemon_ct);
    world_.counter_seg = MakeSegment(dlabel, 16, world_.daemon_ct);
    uint64_t key = 0x5157415a5157415aULL;
    ASSERT_EQ(kernel_->sys_segment_write(
                  init_, ContainerEntry{world_.daemon_ct, world_.key_seg}, &key, 0, 8),
              Status::kOk);
    g_world = &world_;

    CreateSpec gspec;
    gspec.container = kernel_->root_container();
    gspec.descrip = "sign-gate";
    Label glabel(Level::k1, {{dr_, Level::kStar}, {dw_, Level::kStar}});
    service_gate_ =
        kernel_->sys_gate_create(init_, gspec, glabel, Label(Level::k2), "ts.sign", {}).value();
  }
  void TearDown() override {
    g_world = nullptr;
    KernelTest::TearDown();
  }

  CategoryId dr_ = kInvalidCategory;
  CategoryId dw_ = kInvalidCategory;
  DaemonWorld world_;
  ObjectId service_gate_ = kInvalidObject;
};

TEST_F(GateCallTest, Figure7TaintedCallRoundTrip) {
  // The client process: its own pr/pw, plus the fresh return and taint
  // categories of §5.5.
  CategoryId pr = kernel_->sys_cat_create(init_).value();
  CategoryId pw = kernel_->sys_cat_create(init_).value();
  CategoryId r = kernel_->sys_cat_create(init_).value();
  CategoryId t = kernel_->sys_cat_create(init_).value();
  Label client_label(Level::k1, {{pr, Level::kStar}, {pw, Level::kStar}, {r, Level::kStar},
                                 {t, Level::kStar}});
  Label client_clear(Level::k2, {{pr, Level::k3}, {pw, Level::k3}, {r, Level::k3},
                                 {t, Level::k3}});
  ObjectId tp = kernel_->BootstrapThread(client_label, client_clear, "Tp");

  // Resource donation: a container the tainted thread will be able to write
  // ({t3, r0, 1}) — creating it requires owning t AND r, which the client
  // does; nothing inside the daemon must be writable.
  Label donation_label(Level::k1, {{t, Level::k3}, {r, Level::k0}});
  CreateSpec dspec;
  dspec.container = kernel_->root_container();
  dspec.label = donation_label;
  dspec.descrip = "donated";
  dspec.quota = 1 << 16;
  Result<ObjectId> donated = kernel_->sys_container_create(tp, dspec, 0);
  ASSERT_TRUE(donated.ok()) << StatusName(donated.status());

  // The return gate: carries the client's full privilege, enterable only
  // with ownership of r (clearance r0) — and with clearance t3, since the
  // caller will arrive still tainted in its own t.
  CreateSpec rspec;
  rspec.container = kernel_->root_container();
  rspec.descrip = "return-gate";
  Label rclear(Level::k2, {{r, Level::k0}, {t, Level::k3}});
  Result<ObjectId> ret =
      kernel_->sys_gate_create(tp, rspec, client_label, rclear, "noop", {});
  ASSERT_TRUE(ret.ok());

  // State 1 → 2: invoke the service gate *requesting* taint t3 and the
  // daemon's categories, shedding pr/pw (the client does not trust D with
  // them) but keeping r⋆ to come home with.
  uint64_t msg = 0x6d657373616765ULL;
  ASSERT_EQ(kernel_->sys_self_local_write(tp, &msg, 0, 8), Status::kOk);
  Label state2(Level::k1, {{dr_, Level::kStar}, {dw_, Level::kStar}, {r, Level::kStar},
                           {t, Level::k3}});
  ASSERT_EQ(kernel_->sys_gate_invoke(tp, ContainerEntry{kernel_->root_container(),
                                                        service_gate_},
                                     state2, client_clear, client_label),
            Status::kOk);

  // Inside D the entry ran with state 2. It could read the key, but its
  // write to the daemon's counter bounced off the t3 taint:
  int64_t wr_status = 0;
  ASSERT_EQ(kernel_->sys_self_local_read(tp, &wr_status, 16, 8), Status::kOk);
  EXPECT_EQ(static_cast<Status>(wr_status), Status::kLabelCheckFailed);

  // ...but it can work in the donated container (tainted fork of D).
  CreateSpec cspec;
  cspec.container = donated.value();
  cspec.label = Label(Level::k1, {{t, Level::k3}});
  cspec.descrip = "fork-scratch";
  cspec.quota = kObjectOverheadBytes + kPageSize;
  EXPECT_TRUE(kernel_->sys_segment_create(tp, cspec, 64).ok());

  // Still in state 2, the thread cannot shed t3 by itself:
  EXPECT_EQ(kernel_->sys_self_set_label(tp, client_label), Status::kLabelCheckFailed);
  // ...and cannot write anything untainted (the whole point of t):
  CreateSpec leak;
  leak.container = kernel_->root_container();
  leak.descrip = "leak";
  EXPECT_EQ(kernel_->sys_segment_create(tp, leak, 16).status(), Status::kLabelCheckFailed);

  // State 2 → 3: home through the return gate (allowed: it owns r), which
  // restores pr/pw/t ownership. The floor keeps nothing above it since the
  // return gate's label owns t? No — t⋆ comes from the *gate*, dr/dw taint
  // none, so the request below is exactly the floor.
  Label mine = kernel_->sys_self_get_label(tp).value();
  Result<Label> rlabel = kernel_->sys_obj_get_label(
      tp, ContainerEntry{kernel_->root_container(), ret.value()});
  ASSERT_TRUE(rlabel.ok());
  Label state3 = mine.ToHi().Join(rlabel.value().ToHi()).ToStar();
  ASSERT_EQ(kernel_->sys_gate_invoke(tp, ContainerEntry{kernel_->root_container(), ret.value()},
                                     state3, client_clear, mine),
            Status::kOk);
  Label after = kernel_->sys_self_get_label(tp).value();
  EXPECT_TRUE(after.Owns(pr));
  EXPECT_TRUE(after.Owns(pw));
  EXPECT_TRUE(after.Owns(t));  // regained: the signature can be declassified

  // The signature round-tripped and verifies against the daemon's key.
  uint64_t sig = 0;
  ASSERT_EQ(kernel_->sys_self_local_read(tp, &sig, 8, 8), Status::kOk);
  EXPECT_EQ(sig, msg ^ 0x5157415a5157415aULL ^ 0u);

  // Owning t again, the client can copy the result somewhere untainted.
  CreateSpec pub;
  pub.container = kernel_->root_container();
  pub.descrip = "published-sig";
  Result<ObjectId> out = kernel_->sys_segment_create(tp, pub, 16);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(kernel_->sys_segment_write(
                tp, ContainerEntry{kernel_->root_container(), out.value()}, &sig, 0, 8),
            Status::kOk);

  // Meanwhile the daemon's counter is untouched by the whole episode.
  uint64_t counter = 0;
  ASSERT_EQ(kernel_->sys_segment_read(
                init_, ContainerEntry{world_.daemon_ct, world_.counter_seg}, &counter, 0, 8),
            Status::kOk);
  EXPECT_EQ(counter, 0u);
}

TEST_F(GateCallTest, UntaintedCallMayMutateTheDaemon) {
  // The contrast case: a caller that does not taint itself lets the daemon
  // code update its own state (stateful services refuse tainted calls and
  // serve untainted ones in place, §5.5's last paragraph).
  ObjectId caller = kernel_->BootstrapThread(Label(), Label(Level::k2), "plain");
  uint64_t msg = 42;
  ASSERT_EQ(kernel_->sys_self_local_write(caller, &msg, 0, 8), Status::kOk);
  Label request(Level::k1, {{dr_, Level::kStar}, {dw_, Level::kStar}});
  ASSERT_EQ(kernel_->sys_gate_invoke(caller,
                                     ContainerEntry{kernel_->root_container(), service_gate_},
                                     request, Label(Level::k2), Label()),
            Status::kOk);
  int64_t wr_status = -1;
  ASSERT_EQ(kernel_->sys_self_local_read(caller, &wr_status, 16, 8), Status::kOk);
  EXPECT_EQ(static_cast<Status>(wr_status), Status::kOk);
  uint64_t counter = 0;
  ASSERT_EQ(kernel_->sys_segment_read(
                init_, ContainerEntry{world_.daemon_ct, world_.counter_seg}, &counter, 0, 8),
            Status::kOk);
  EXPECT_EQ(counter, 1u);
}

}  // namespace
}  // namespace histar
