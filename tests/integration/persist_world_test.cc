// Whole-world persistence (paper §3: "HiStar has a single-level store — on
// bootup, the entire system state is restored from the most recent on-disk
// snapshot. This eliminates the need for trusted boot scripts...").
//
// Integration across kernel + store + unixlib: build a populated Unix world
// (users, files, labels, a gate), checkpoint, boot a *fresh kernel* from the
// disk image, and verify that not just the data but the security state
// survives — categories still protect files, clearances still bound access,
// gates still require their entry code to be re-registered (code lives on
// disk, not in the object).
#include <gtest/gtest.h>

#include "src/store/single_level_store.h"
#include "src/unixlib/unix.h"

namespace histar {
namespace {

class PersistWorldTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DiskGeometry g;
    g.capacity_bytes = 512 << 20;
    g.zero_latency = true;
    g.store_data = true;
    disk_ = std::make_unique<DiskModel>(g);
    store_ = std::make_unique<SingleLevelStore>(disk_.get());
    ASSERT_EQ(store_->Format(), Status::kOk);
    kernel_ = std::make_unique<Kernel>();
    kernel_->AttachPersistTarget(store_.get());
    world_ = UnixWorld::Boot(kernel_.get());
    ASSERT_NE(world_, nullptr);
    CurrentThread::Set(world_->init_thread());
  }
  void TearDown() override { CurrentThread::Set(kInvalidObject); }

  std::unique_ptr<Kernel> RebootKernel() {
    store2_ = std::make_unique<SingleLevelStore>(disk_.get());
    auto k = std::make_unique<Kernel>();
    EXPECT_EQ(store2_->Recover(k.get()), Status::kOk);
    return k;
  }

  std::unique_ptr<DiskModel> disk_;
  std::unique_ptr<SingleLevelStore> store_;
  std::unique_ptr<SingleLevelStore> store2_;
  std::unique_ptr<Kernel> kernel_;
  std::unique_ptr<UnixWorld> world_;
};

TEST_F(PersistWorldTest, UserFilesAndLabelsSurviveReboot) {
  ObjectId init = world_->init_thread();
  UnixUser bob = world_->AddUser("bob").value();
  FileSystem& fs = world_->fs();
  ObjectId diary = fs.Create(init, bob.home, "diary", bob.FileLabel()).value();
  const char text[] = "persists";
  ASSERT_EQ(fs.WriteAt(init, bob.home, diary, text, 0, sizeof(text)), Status::kOk);
  ASSERT_EQ(kernel_->sys_sync(init), Status::kOk);

  std::unique_ptr<Kernel> k2 = RebootKernel();
  CurrentThread bind(init);

  // The file's bytes came back...
  char buf[16] = {};
  FileSystem fs2(k2.get());
  ASSERT_EQ(k2->sys_segment_read(init, ContainerEntry{bob.home, diary}, buf, 0, sizeof(text)),
            Status::kOk);
  EXPECT_STREQ(buf, "persists");
  // ...with its label intact: a fresh unprivileged thread still bounces.
  ObjectId stranger = k2->BootstrapThread(Label(), Label(Level::k2), "stranger");
  EXPECT_EQ(k2->sys_segment_read(stranger, ContainerEntry{bob.home, diary}, buf, 0, 4),
            Status::kLabelCheckFailed);
  // The recovered label matches bit for bit.
  Result<Label> l = k2->sys_obj_get_label(init, ContainerEntry{bob.home, diary});
  ASSERT_TRUE(l.ok());
  EXPECT_EQ(l.value(), bob.FileLabel());
}

TEST_F(PersistWorldTest, DirectoryTreeWalksAfterReboot) {
  ObjectId init = world_->init_thread();
  FileSystem& fs = world_->fs();
  // Nested quotas must shrink: a child container's quota is charged against
  // its parent's.
  ObjectId a = fs.MakeDir(init, world_->fs_root(), "a", Label(), 8 << 20).value();
  ObjectId b = fs.MakeDir(init, a, "b", Label(), 2 << 20).value();
  ObjectId f = fs.Create(init, b, "deep.txt", Label()).value();
  ASSERT_NE(f, kInvalidObject);
  ASSERT_EQ(fs.WriteAt(init, b, f, "x", 0, 1), Status::kOk);
  ASSERT_EQ(kernel_->sys_sync(init), Status::kOk);

  std::unique_ptr<Kernel> k2 = RebootKernel();
  CurrentThread bind(init);
  FileSystem fs2(k2.get());
  Result<ObjectId> found = fs2.Walk(init, world_->fs_root(), "/a/b/deep.txt");
  ASSERT_TRUE(found.ok()) << StatusName(found.status());
  EXPECT_EQ(found.value(), f);
  // ".." via container_get_parent still works on recovered containers.
  Result<ObjectId> up = fs2.Walk(init, b, "..");
  ASSERT_TRUE(up.ok());
  EXPECT_EQ(up.value(), a);
}

TEST_F(PersistWorldTest, ThreadLabelsAndClearancesSurvive) {
  ObjectId init = world_->init_thread();
  Result<CategoryId> c = kernel_->sys_cat_create(init);
  ASSERT_TRUE(c.ok());
  // A tainted thread (halted — persisted threads resume as data; execution
  // state is out of scope for the reproduction).
  Label tl(Level::k1, {{c.value(), Level::k2}});
  ObjectId t = kernel_->BootstrapThread(tl, Label(Level::k2, {{c.value(), Level::k3}}),
                                        "sleeper");
  ASSERT_EQ(kernel_->sys_sync(init), Status::kOk);

  std::unique_ptr<Kernel> k2 = RebootKernel();
  CurrentThread bind(init);
  // init still owns c after reboot: its own label carries the ⋆.
  Result<Label> init_label = k2->sys_self_get_label(init);
  ASSERT_TRUE(init_label.ok());
  EXPECT_TRUE(init_label.value().Owns(c.value()));
  // The sleeper's taint came back too (init can read its label: c ⋆ ⊒ 2).
  Result<Label> sl = k2->sys_obj_get_label(init, ContainerEntry{k2->root_container(), t});
  ASSERT_TRUE(sl.ok());
  EXPECT_EQ(sl.value().get(c.value()), Level::k2);
}

TEST_F(PersistWorldTest, GatesNeedTheirEntryCodeReRegistered) {
  // Gates persist by entry *name*; the code segment must be present after
  // boot (just as on-disk binaries must exist), or invocation fails.
  ObjectId init = world_->init_thread();
  kernel_->RegisterGateEntry("test.echo", [](GateCall& call) {
    uint64_t v = 0;
    call.kernel->sys_self_local_read(call.thread, &v, 0, 8);
    v *= 2;
    call.kernel->sys_self_local_write(call.thread, &v, 8, 8);
  });
  CreateSpec spec;
  spec.container = kernel_->root_container();
  spec.descrip = "echo-gate";
  Result<ObjectId> gate = kernel_->sys_gate_create(init, spec, Label(), Label(Level::k2),
                                                   "test.echo", {});
  ASSERT_TRUE(gate.ok());
  ASSERT_EQ(kernel_->sys_sync(init), Status::kOk);

  std::unique_ptr<Kernel> k2 = RebootKernel();
  CurrentThread bind(init);
  ContainerEntry ce{k2->root_container(), gate.value()};
  uint64_t v = 21;
  ASSERT_EQ(k2->sys_self_local_write(init, &v, 0, 8), Status::kOk);
  Result<Label> mine = k2->sys_self_get_label(init);
  Result<Label> clear = k2->sys_self_get_clearance(init);
  ASSERT_TRUE(mine.ok() && clear.ok());

  // Before re-registration: the gate exists but its code does not.
  EXPECT_EQ(k2->sys_gate_invoke(init, ce, mine.value(), clear.value(), mine.value()),
            Status::kNotFound);

  // After: invocation works as before the reboot.
  k2->RegisterGateEntry("test.echo", [](GateCall& call) {
    uint64_t x = 0;
    call.kernel->sys_self_local_read(call.thread, &x, 0, 8);
    x *= 2;
    call.kernel->sys_self_local_write(call.thread, &x, 8, 8);
  });
  ASSERT_EQ(k2->sys_gate_invoke(init, ce, mine.value(), clear.value(), mine.value()),
            Status::kOk);
  uint64_t out = 0;
  ASSERT_EQ(k2->sys_self_local_read(init, &out, 8, 8), Status::kOk);
  EXPECT_EQ(out, 42u);
}

TEST_F(PersistWorldTest, SecondGenerationSupersedesFirst) {
  ObjectId init = world_->init_thread();
  FileSystem& fs = world_->fs();
  ObjectId f = fs.Create(init, world_->tmp_dir(), "gen", Label()).value();
  ASSERT_EQ(fs.WriteAt(init, world_->tmp_dir(), f, "one", 0, 3), Status::kOk);
  ASSERT_EQ(kernel_->sys_sync(init), Status::kOk);
  ASSERT_EQ(fs.WriteAt(init, world_->tmp_dir(), f, "two", 0, 3), Status::kOk);
  ASSERT_EQ(kernel_->sys_sync(init), Status::kOk);

  std::unique_ptr<Kernel> k2 = RebootKernel();
  CurrentThread bind(init);
  char buf[4] = {};
  ASSERT_EQ(k2->sys_segment_read(init, ContainerEntry{world_->tmp_dir(), f}, buf, 0, 3),
            Status::kOk);
  EXPECT_STREQ(buf, "two");
}

TEST_F(PersistWorldTest, UnsyncedChangesAreLostCleanly) {
  // The flip side of group sync: work after the last checkpoint vanishes on
  // reboot — "the application either runs to completion or appears never to
  // have started" (§7.1).
  ObjectId init = world_->init_thread();
  FileSystem& fs = world_->fs();
  ObjectId f = fs.Create(init, world_->tmp_dir(), "early", Label()).value();
  ASSERT_EQ(kernel_->sys_sync(init), Status::kOk);
  Result<ObjectId> late = fs.Create(init, world_->tmp_dir(), "late", Label());
  ASSERT_TRUE(late.ok());

  std::unique_ptr<Kernel> k2 = RebootKernel();
  CurrentThread bind(init);
  FileSystem fs2(k2.get());
  EXPECT_TRUE(fs2.Lookup(init, world_->tmp_dir(), "early").ok());
  EXPECT_FALSE(k2->ObjectExists(late.value()));
  EXPECT_EQ(fs2.Lookup(init, world_->tmp_dir(), "late").status(), Status::kNotFound);
  EXPECT_EQ(f, fs2.Lookup(init, world_->tmp_dir(), "early").value());
}

}  // namespace
}  // namespace histar
