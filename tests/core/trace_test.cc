// Tests for the flight recorder (src/core/trace.h): histogram bucket
// boundaries (pinned — dashboards depend on them), ring wrap, slot reuse
// after thread exit, group duration patching, and the crash-dump format.
//
// These tests exercise the recorder directly; the kernel-integrated path
// (label stamping + the sys_trace_read flow check) lives in
// tests/kernel/trace_flow_test.cc.
#include "src/core/trace.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <sstream>
#include <thread>
#include <vector>

#include "src/core/epoch.h"

namespace histar {
namespace trace {
namespace {

// Events this test recorded (vs other tests in this binary sharing the
// process-wide recorder) are tagged with a distinctive operand.
std::vector<SlotEvent> MineInSlot(uint64_t marker, size_t slot) {
  std::vector<SlotEvent> all;
  Snapshot(&all);
  std::vector<SlotEvent> mine;
  for (const SlotEvent& se : all) {
    if (se.slot == slot && se.event.c == marker) {
      mine.push_back(se);
    }
  }
  return mine;
}

TEST(HistBucket, BoundariesArePinned) {
  // Bucket 0 holds [0,2); bucket b holds [2^b, 2^(b+1)); the last bucket
  // saturates.
  EXPECT_EQ(HistBucket(0), 0u);
  EXPECT_EQ(HistBucket(1), 0u);
  EXPECT_EQ(HistBucket(2), 1u);
  EXPECT_EQ(HistBucket(3), 1u);
  EXPECT_EQ(HistBucket(4), 2u);
  EXPECT_EQ(HistBucket(7), 2u);
  EXPECT_EQ(HistBucket(8), 3u);
  EXPECT_EQ(HistBucket(1000), 9u);    // ~1 µs
  EXPECT_EQ(HistBucket(1u << 20), 20u);  // ~1 ms
  EXPECT_EQ(HistBucket((1ull << 30) - 1), 29u);
  EXPECT_EQ(HistBucket(1ull << 30), 30u);
  // Saturation: everything >= 2^(kHistBuckets-1) lands in the last bucket.
  EXPECT_EQ(HistBucket(1ull << 31), kHistBuckets - 1);
  EXPECT_EQ(HistBucket(~0ull), kHistBuckets - 1);
  static_assert(HistBucket(1) == 0, "constexpr-evaluable");
  static_assert(HistBucket(1024) == 10, "exact power of two");
}

TEST(Recorder, RingWrapKeepsTheMostRecentEvents) {
  const uint64_t marker = 0x77AB10u;
  const size_t slot = Recorder::CurrentSlot();
  const size_t total = kRingEvents + kRingEvents / 2;
  for (size_t i = 0; i < total; ++i) {
    RecordEvent(EventKind::kRingChain, /*a=*/i, /*b=*/0, /*c=*/marker);
  }
  std::vector<SlotEvent> mine = MineInSlot(marker, slot);
  // At most one ring's worth survives, and it is the most recent window:
  // the oldest half was overwritten.
  ASSERT_LE(mine.size(), kRingEvents);
  ASSERT_GE(mine.size(), kRingEvents / 2);
  EXPECT_EQ(mine.back().event.a, total - 1);
  // Oldest-first within the slot, seq and operand advancing in lockstep.
  for (size_t i = 1; i < mine.size(); ++i) {
    EXPECT_EQ(mine[i].seq, mine[i - 1].seq + 1);
    EXPECT_EQ(mine[i].event.a, mine[i - 1].event.a + 1);
  }
}

TEST(Recorder, SlotIsReusedAfterThreadExit) {
  const uint64_t marker = 0x5107u;
  size_t slot_a = 0, slot_b = 0;
  uint64_t seq_a = 0, seq_b = 0;

  auto run = [&](uint64_t tag, size_t* slot_out, uint64_t* seq_out) {
    std::thread([&, tag] {
      *slot_out = Recorder::CurrentSlot();
      RecordEvent(EventKind::kFault, /*a=*/tag, /*b=*/0, /*c=*/marker);
      std::vector<SlotEvent> mine = MineInSlot(marker, *slot_out);
      ASSERT_FALSE(mine.empty());
      *seq_out = mine.back().seq;
    }).join();
  };

  run(1, &slot_a, &seq_a);
  run(2, &slot_b, &seq_b);

  // Epoch slot ids are lowest-free-first: with no other live threads the
  // second thread reuses the first one's slot, and the slot's ring (and its
  // monotone seq) survives the reuse.
  EXPECT_EQ(slot_a, slot_b);
  EXPECT_GT(seq_b, seq_a);
  std::vector<SlotEvent> mine = MineInSlot(marker, slot_a);
  ASSERT_GE(mine.size(), 2u);
  EXPECT_EQ(mine[mine.size() - 2].event.a, 1u);
  EXPECT_EQ(mine.back().event.a, 2u);
}

TEST(Recorder, FinishSyscallGroupPatchesAmortizedDurations) {
  // Use a syscall-kind row no real syscall occupies (the last one) so the
  // histogram delta below is exactly this test's.
  const uint16_t kind = kMaxSyscallHist - 1;
  const size_t slot = Recorder::CurrentSlot();

  uint64_t before[kHistBuckets] = {};
  SumSyscallHist(kind, before);

  const uint64_t t0 = 1000;
  const uint64_t t1 = t0 + 3 * 4096;  // 4096 ns per event, bucket 12
  ResetTaint();
  uint64_t group = BeginSyscallGroup();
  RecordSyscall(kind, /*status=*/0, /*self_or_b=*/42, t0);
  RecordSyscall(kind, /*status=*/0, /*self_or_b=*/42, t0);
  RecordSyscall(kind, /*status=*/0, /*self_or_b=*/42, t0);
  FinishSyscallGroup(group, t0, t1);

  uint64_t after[kHistBuckets] = {};
  SumSyscallHist(kind, after);
  EXPECT_EQ(after[HistBucket(4096)] - before[HistBucket(4096)], 3u);

  std::vector<SlotEvent> all;
  Snapshot(&all);
  size_t patched = 0;
  for (const SlotEvent& se : all) {
    if (se.slot == slot && se.event.kind == static_cast<uint8_t>(EventKind::kSyscall) &&
        se.event.aux == kind && se.event.ts_ns == t0) {
      EXPECT_EQ(se.event.dur_ns, 4096u);
      ++patched;
    }
  }
  EXPECT_EQ(patched, 3u);
}

TEST(Recorder, PendingDurationReadsAsZero) {
  const uint16_t kind = kMaxSyscallHist - 2;
  const size_t slot = Recorder::CurrentSlot();
  const uint64_t ts = 777777;
  ResetTaint();
  uint64_t group = BeginSyscallGroup();
  RecordSyscall(kind, /*status=*/0, /*self_or_b=*/7, ts);
  // No FinishSyscallGroup: the in-ring sentinel must not leak to readers.
  std::vector<SlotEvent> all;
  Snapshot(&all);
  bool found = false;
  for (const SlotEvent& se : all) {
    if (se.slot == slot && se.event.aux == kind && se.event.ts_ns == ts) {
      EXPECT_EQ(se.event.dur_ns, 0u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
  FinishSyscallGroup(group, ts, ts + 1);  // close it out for later tests
}

TEST(Recorder, GroupPatchingSurvivesUnboundedInterleavedEvents) {
  // A dispatch group can interleave arbitrarily many non-syscall events
  // (epoch retires/advances, fault events recorded inside ExecLocked)
  // between its syscall events. The old bounded backward scan (count + 16)
  // stopped early past 16 of them, leaving syscall events kDurPending
  // forever and the histograms silently short; the exact [start, head)
  // range must patch every one.
  const uint16_t kind = kMaxSyscallHist - 3;
  const size_t slot = Recorder::CurrentSlot();
  uint64_t before[kHistBuckets] = {};
  SumSyscallHist(kind, before);

  const uint64_t t0 = 50000;
  const uint64_t t1 = t0 + 2 * 1024;  // 1024 ns per syscall event
  ResetTaint();
  uint64_t group = BeginSyscallGroup();
  RecordSyscall(kind, /*status=*/0, /*self_or_b=*/1, t0);
  for (uint64_t i = 0; i < 40; ++i) {  // far past the old 16-event cap
    RecordEvent(EventKind::kEpochRetire, /*a=*/i, /*b=*/0, /*c=*/0, 0, 0, 0, t0);
  }
  RecordSyscall(kind, /*status=*/0, /*self_or_b=*/2, t0);
  FinishSyscallGroup(group, t0, t1);

  uint64_t after[kHistBuckets] = {};
  SumSyscallHist(kind, after);
  EXPECT_EQ(after[HistBucket(1024)] - before[HistBucket(1024)], 2u);

  std::vector<SlotEvent> all;
  Snapshot(&all);
  size_t patched = 0;
  for (const SlotEvent& se : all) {
    if (se.slot == slot &&
        se.event.kind == static_cast<uint8_t>(EventKind::kSyscall) &&
        se.event.aux == kind && se.event.ts_ns == t0) {
      EXPECT_EQ(se.event.dur_ns, 1024u);
      ++patched;
    }
  }
  EXPECT_EQ(patched, 2u);
}

TEST(Recorder, SnapshotDropsTheEventTheWriterMayBeOverwriting) {
  // The writer stores a lapping event's words BEFORE publishing the new
  // head, so once head == seq + kRingEvents the slot holding `seq` is
  // already suspect — a torn copy there could pair one event's payload
  // with another's labels. The re-check must therefore drop at >=, not >:
  // after exactly kRingEvents records the oldest event is withheld even
  // though no overwrite happened, trading one event of history for the
  // never-torn guarantee.
  const uint64_t marker = 0x0FF8E7u;
  const size_t slot = Recorder::CurrentSlot();
  for (uint64_t i = 0; i < kRingEvents; ++i) {
    RecordEvent(EventKind::kRingChain, /*a=*/i, /*b=*/0, /*c=*/marker);
  }
  std::vector<SlotEvent> mine = MineInSlot(marker, slot);
  ASSERT_EQ(mine.size(), kRingEvents - 1);
  EXPECT_EQ(mine.front().event.a, 1u);  // the boundary event was dropped
  EXPECT_EQ(mine.back().event.a, kRingEvents - 1);
}

TEST(Recorder, EventsCarryTheLabelGeneration) {
  const uint32_t prev = LabelGeneration();
  SetLabelGeneration(48879);  // 0xBEEF
  const uint64_t marker = 0x6E6123u;
  const size_t slot = Recorder::CurrentSlot();
  RecordEvent(EventKind::kFault, /*a=*/1, /*b=*/2, /*c=*/marker);
  SetLabelGeneration(prev);

  std::vector<SlotEvent> mine = MineInSlot(marker, slot);
  ASSERT_FALSE(mine.empty());
  EXPECT_EQ(mine.back().event.gen, 48879u);

  // The crash dump carries it too (tracefmt and post-mortem tooling need
  // it to pair label ids with the registry that minted them).
  std::ostringstream os;
  DumpJson(os);
  EXPECT_NE(os.str().find("\"gen\":48879"), std::string::npos);
}

TEST(Recorder, StoreHistogramAndEventAgree) {
  uint64_t before[kHistBuckets] = {};
  SumStoreHist(StoreOp::kSyncPages, before);
  RecordStoreOp(StoreOp::kSyncPages, /*status=*/0, /*dur_ns=*/600, /*bytes=*/8192,
                /*write_ops=*/2, /*engine_kind=*/1);
  uint64_t after[kHistBuckets] = {};
  SumStoreHist(StoreOp::kSyncPages, after);
  EXPECT_EQ(after[HistBucket(600)] - before[HistBucket(600)], 1u);

  std::vector<SlotEvent> all;
  Snapshot(&all);
  bool found = false;
  for (const SlotEvent& se : all) {
    const Event& e = se.event;
    if (e.kind == static_cast<uint8_t>(EventKind::kStoreCommit) && e.a == 8192 &&
        e.b == 2 && e.aux == static_cast<uint16_t>(StoreOp::kSyncPages)) {
      EXPECT_EQ(e.dur_ns, 600u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Dump, JsonLinesCarrySchemaAndEvents) {
  RecordEvent(EventKind::kEpochAdvance, 3, 9, 0);
  std::ostringstream os;
  DumpJson(os, /*last_n_per_slot=*/8);
  const std::string s = os.str();
  EXPECT_NE(s.find("\"schema\":\"histar-trace-dump-v1\""), std::string::npos);
  EXPECT_NE(s.find("\"kind\":\"epoch_advance\""), std::string::npos);
  // One JSON object per line: every line starts with '{'.
  std::istringstream in(s);
  std::string line;
  size_t lines = 0;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    ++lines;
  }
  EXPECT_GE(lines, 2u);  // header + at least our event
}

// Runs last among the recorder tests: it floods the slot space and ends
// with a Reset() to clear the sticky per-ring flags it provokes.
TEST(Recorder, AliasedRingsAreWithheldFromSnapshots) {
  // Drive concurrently-live threads past kTraceSlots so masked slot ids
  // collide and rings acquire a second writer with a different unmasked
  // id. Such rings must be withheld from snapshots (sticky multi_writer
  // flag): interleaved writers could publish an event pairing one
  // request's payload with another's labels, and the read-side flow check
  // would then vouch for the wrong labels.
  const uint64_t marker = 0xA11A5u;
  const size_t kThreads = kTraceSlots + 8;
  std::atomic<size_t> recorded{0};
  std::atomic<bool> release{false};
  std::vector<size_t> full_ids(kThreads, 0);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      full_ids[t] = EpochDomain::ThreadSlot();
      RecordEvent(EventKind::kFault, /*a=*/t, /*b=*/0, /*c=*/marker);
      recorded.fetch_add(1, std::memory_order_release);
      // Stay registered until every thread has recorded, so all unmasked
      // slot ids are live simultaneously (ids are freed on thread exit).
      while (!release.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
    });
  }
  while (recorded.load(std::memory_order_acquire) < kThreads) {
    std::this_thread::yield();
  }
  release.store(true, std::memory_order_release);
  for (auto& th : threads) {
    th.join();
  }

  std::vector<SlotEvent> all;
  Snapshot(&all);
  // Slot ids are dense and all threads were live at once, so some got
  // unmasked ids >= kTraceSlots — their masked rings belong to other
  // writers and must deliver nothing at all.
  size_t aliased_threads = 0;
  for (size_t t = 0; t < kThreads; ++t) {
    if (full_ids[t] < kTraceSlots) {
      continue;
    }
    ++aliased_threads;
    const uint32_t ring = static_cast<uint32_t>(full_ids[t] & (kTraceSlots - 1));
    for (const SlotEvent& se : all) {
      EXPECT_NE(se.slot, ring) << "aliased ring delivered events";
    }
  }
  EXPECT_GE(aliased_threads, kThreads - kTraceSlots);
  // Withholding is per-ring, not global: unaliased rings still deliver.
  size_t delivered = 0;
  for (const SlotEvent& se : all) {
    if (se.event.c == marker) {
      ++delivered;
    }
  }
  EXPECT_GT(delivered, 0u);
  // Clear the sticky flags for anything that runs after in this binary.
  Reset();
}

TEST(Names, EventKindAndStoreOpTablesAreTotal) {
  for (size_t k = 0; k < kNumEventKinds; ++k) {
    EXPECT_STRNE(EventKindName(static_cast<uint8_t>(k)), "unknown");
  }
  EXPECT_STREQ(EventKindName(200), "unknown");
  for (size_t op = 0; op < kNumStoreOps; ++op) {
    EXPECT_STRNE(StoreOpName(static_cast<uint8_t>(op)), "unknown");
  }
  EXPECT_STREQ(StoreOpName(9), "unknown");
}

}  // namespace
}  // namespace trace
}  // namespace histar
