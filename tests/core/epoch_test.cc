// Epoch-based reclamation layer (PR 6): deferred-free protocol, garbage
// bounds, guard nesting, and thread-slot registration. The ASan CI job runs
// this file to pin "no use-after-free and no leak" on the retire path; the
// companion tests/kernel/epoch_stress_test.cc races it against real kernel
// mutators under TSan.
#include "src/core/epoch.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace histar {
namespace {

// A retired object that flips a flag when its deleter actually runs, so the
// tests can distinguish "retired" from "freed".
struct Canary {
  explicit Canary(std::atomic<int>* freed) : freed_count(freed) {}
  ~Canary() { freed_count->fetch_add(1, std::memory_order_relaxed); }
  std::atomic<int>* freed_count;
  int payload = 42;
};

TEST(EpochTest, RetireIsDeferredWhileAReaderIsPinned) {
  EpochDomain& d = EpochDomain::Global();
  d.DrainAll();

  std::atomic<int> freed{0};
  Canary* c = new Canary(&freed);

  // Pin an epoch on a second thread, then retire; the object must survive
  // every advance attempt until the reader unpins.
  std::atomic<bool> pinned{false};
  std::atomic<bool> release{false};
  std::thread reader([&] {
    EpochGuard guard;
    pinned.store(true, std::memory_order_release);
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  });
  while (!pinned.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }

  d.Retire(c);
  for (int i = 0; i < 8; ++i) {
    d.AdvanceAndCollect();
  }
  EXPECT_EQ(freed.load(), 0) << "freed under an active reader";
  EXPECT_EQ(c->payload, 42);  // still dereferenceable (ASan would flag UAF)

  release.store(true, std::memory_order_release);
  reader.join();
  d.DrainAll();
  EXPECT_EQ(freed.load(), 1);
}

TEST(EpochTest, DrainAllFreesEverythingWhenQuiescent) {
  EpochDomain& d = EpochDomain::Global();
  d.DrainAll();
  std::atomic<int> freed{0};
  constexpr int kN = 100;
  for (int i = 0; i < kN; ++i) {
    d.Retire(new Canary(&freed));
  }
  d.DrainAll();
  EXPECT_EQ(freed.load(), kN);
  EXPECT_EQ(d.PendingRetired(), 0u);
}

TEST(EpochTest, GarbageStaysBoundedUnderChurn) {
  // With no reader pinned, Retire's opportunistic collect must keep the
  // limbo list near kCollectThreshold no matter how many objects churn
  // through — the "no unbounded garbage" acceptance property.
  EpochDomain& d = EpochDomain::Global();
  d.DrainAll();
  std::atomic<int> freed{0};
  size_t max_pending = 0;
  for (int i = 0; i < 10000; ++i) {
    d.Retire(new Canary(&freed));
    max_pending = std::max(max_pending, d.PendingRetired());
  }
  // The collect inside Retire frees items two epochs stale, so the pending
  // set can briefly hold up to ~two generations plus the trigger batch.
  EXPECT_LE(max_pending, 3 * EpochDomain::kCollectThreshold);
  d.DrainAll();
  EXPECT_EQ(freed.load(), 10000);
}

TEST(EpochTest, GuardsNest) {
  EpochDomain& d = EpochDomain::Global();
  d.DrainAll();
  std::atomic<int> freed{0};
  {
    EpochGuard outer;
    {
      EpochGuard inner;
      d.Retire(new Canary(&freed));
    }
    // Still pinned by the outer guard: nothing can be freed yet.
    for (int i = 0; i < 8; ++i) {
      d.AdvanceAndCollect();
    }
    EXPECT_EQ(freed.load(), 0);
  }
  d.DrainAll();
  EXPECT_EQ(freed.load(), 1);
}

TEST(EpochTest, ThreadSlotsAreStableAndReused) {
  // The calling thread's slot is stable across calls...
  size_t mine = EpochDomain::ThreadSlot();
  EXPECT_EQ(mine, EpochDomain::ThreadSlot());

  // ...distinct from a concurrently live thread's...
  size_t other = EpochDomain::kMaxThreads;
  std::thread t1([&] { other = EpochDomain::ThreadSlot(); });
  t1.join();
  EXPECT_NE(mine, other);
  EXPECT_LT(other, EpochDomain::kMaxThreads);

  // ...and freed slots are reused lowest-first, so short-lived threads do
  // not leak slot ids (what keeps masked indexing collision-free).
  size_t reused = EpochDomain::kMaxThreads;
  std::thread t2([&] { reused = EpochDomain::ThreadSlot(); });
  t2.join();
  EXPECT_EQ(reused, other);
}

TEST(EpochTest, ConcurrentReadersAndRetirersAreSafe) {
  // Mixed pin/retire churn across threads; ASan/TSan verify the protocol,
  // the assertions verify nothing is freed early or twice.
  EpochDomain& d = EpochDomain::Global();
  d.DrainAll();
  std::atomic<int> freed{0};
  std::atomic<bool> stop{false};
  constexpr int kRetirePerThread = 2000;

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        EpochGuard guard;
        std::this_thread::yield();
      }
    });
  }
  std::vector<std::thread> retirers;
  for (int w = 0; w < 3; ++w) {
    retirers.emplace_back([&] {
      for (int i = 0; i < kRetirePerThread; ++i) {
        Canary* c = new Canary(&freed);
        {
          EpochGuard guard;
          EXPECT_EQ(c->payload, 42);
        }
        d.Retire(c);
      }
    });
  }
  for (auto& t : retirers) {
    t.join();
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) {
    t.join();
  }
  d.DrainAll();
  EXPECT_EQ(freed.load(), 3 * kRetirePerThread);
}

}  // namespace
}  // namespace histar
