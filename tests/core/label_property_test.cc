// Property-based tests: labels form a lattice under ⊑ (paper §2.2, citing
// Denning's lattice model). Each property is checked over a randomized sweep
// of label pairs/triples generated from a seeded PRNG (parameterized so each
// seed is an independent test case).
#include <gtest/gtest.h>

#include <random>

#include "src/core/label.h"

namespace histar {
namespace {

// Generates a random label over a small category universe so collisions —
// the interesting cases — are common.
Label RandomLabel(std::mt19937_64* rng, bool allow_star) {
  std::uniform_int_distribution<int> def_dist(1, 4);           // k0..k3
  std::uniform_int_distribution<int> lvl_dist(allow_star ? 0 : 1, 4);
  std::uniform_int_distribution<int> count_dist(0, 6);
  std::uniform_int_distribution<CategoryId> cat_dist(1, 12);
  Label l(static_cast<Level>(def_dist(*rng)));
  int n = count_dist(*rng);
  for (int i = 0; i < n; ++i) {
    l.set(cat_dist(*rng), static_cast<Level>(lvl_dist(*rng)));
  }
  return l;
}

class LabelLatticeProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LabelLatticeProperty, LeqIsReflexive) {
  std::mt19937_64 rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    Label l = RandomLabel(&rng, true);
    EXPECT_TRUE(l.Leq(l)) << l.ToString();
  }
}

TEST_P(LabelLatticeProperty, LeqIsAntisymmetric) {
  std::mt19937_64 rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    Label a = RandomLabel(&rng, true);
    Label b = RandomLabel(&rng, true);
    if (a.Leq(b) && b.Leq(a)) {
      EXPECT_EQ(a, b) << a.ToString() << " vs " << b.ToString();
    }
  }
}

TEST_P(LabelLatticeProperty, LeqIsTransitive) {
  std::mt19937_64 rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    Label a = RandomLabel(&rng, true);
    Label b = RandomLabel(&rng, true);
    Label c = RandomLabel(&rng, true);
    if (a.Leq(b) && b.Leq(c)) {
      EXPECT_TRUE(a.Leq(c)) << a.ToString() << " ⊑ " << b.ToString() << " ⊑ " << c.ToString();
    }
  }
}

TEST_P(LabelLatticeProperty, JoinIsLeastUpperBound) {
  std::mt19937_64 rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    Label a = RandomLabel(&rng, true);
    Label b = RandomLabel(&rng, true);
    Label j = a.Join(b);
    // Upper bound.
    EXPECT_TRUE(a.Leq(j));
    EXPECT_TRUE(b.Leq(j));
    // Least: any other upper bound dominates j.
    Label u = RandomLabel(&rng, true);
    if (a.Leq(u) && b.Leq(u)) {
      EXPECT_TRUE(j.Leq(u));
    }
  }
}

TEST_P(LabelLatticeProperty, MeetIsGreatestLowerBound) {
  std::mt19937_64 rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    Label a = RandomLabel(&rng, true);
    Label b = RandomLabel(&rng, true);
    Label m = a.Meet(b);
    EXPECT_TRUE(m.Leq(a));
    EXPECT_TRUE(m.Leq(b));
    Label l = RandomLabel(&rng, true);
    if (l.Leq(a) && l.Leq(b)) {
      EXPECT_TRUE(l.Leq(m));
    }
  }
}

TEST_P(LabelLatticeProperty, JoinAndMeetAreCommutativeAndIdempotent) {
  std::mt19937_64 rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    Label a = RandomLabel(&rng, true);
    Label b = RandomLabel(&rng, true);
    EXPECT_EQ(a.Join(b), b.Join(a));
    EXPECT_EQ(a.Meet(b), b.Meet(a));
    EXPECT_EQ(a.Join(a), a);
    EXPECT_EQ(a.Meet(a), a);
  }
}

TEST_P(LabelLatticeProperty, JoinIsAssociative) {
  std::mt19937_64 rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    Label a = RandomLabel(&rng, true);
    Label b = RandomLabel(&rng, true);
    Label c = RandomLabel(&rng, true);
    EXPECT_EQ(a.Join(b).Join(c), a.Join(b.Join(c)));
  }
}

TEST_P(LabelLatticeProperty, MeetIsAssociative) {
  std::mt19937_64 rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    Label a = RandomLabel(&rng, true);
    Label b = RandomLabel(&rng, true);
    Label c = RandomLabel(&rng, true);
    EXPECT_EQ(a.Meet(b).Meet(c), a.Meet(b.Meet(c)));
  }
}

TEST_P(LabelLatticeProperty, JoinAndMeetSatisfyAbsorption) {
  // a ⊔ (a ⊓ b) = a and a ⊓ (a ⊔ b) = a — together with associativity,
  // commutativity and idempotence these make (⊔, ⊓) a lattice, which is
  // exactly the structure the registry's memoization relies on.
  std::mt19937_64 rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    Label a = RandomLabel(&rng, true);
    Label b = RandomLabel(&rng, true);
    EXPECT_EQ(a.Join(a.Meet(b)), a) << a.ToString() << " vs " << b.ToString();
    EXPECT_EQ(a.Meet(a.Join(b)), a) << a.ToString() << " vs " << b.ToString();
  }
}

TEST_P(LabelLatticeProperty, LeqIsConsistentWithJoinAndMeet) {
  // The order and the algebra must define each other:
  //   a ⊑ b ⟺ a ⊔ b = b ⟺ a ⊓ b = a.
  std::mt19937_64 rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    Label a = RandomLabel(&rng, true);
    Label b = RandomLabel(&rng, true);
    bool leq = a.Leq(b);
    EXPECT_EQ(leq, a.Join(b) == b) << a.ToString() << " vs " << b.ToString();
    EXPECT_EQ(leq, a.Meet(b) == a) << a.ToString() << " vs " << b.ToString();
  }
}

TEST_P(LabelLatticeProperty, ShiftOperatorsAreInverse) {
  std::mt19937_64 rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    Label a = RandomLabel(&rng, true);
    // For storable labels (no J), ToStar(ToHi(L)) == L.
    EXPECT_EQ(a.ToHi().ToStar(), a);
  }
}

TEST_P(LabelLatticeProperty, RaiseForReadIsMinimalAndSufficient) {
  std::mt19937_64 rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    Label t = RandomLabel(&rng, true);
    Label o = RandomLabel(&rng, false);  // object labels carry no ⋆
    Label r = Label::RaiseForRead(t, o);
    // Sufficient: L_T ⊑ L' and L_O ⊑ L'^J (§2.2).
    EXPECT_TRUE(t.Leq(r)) << t.ToString() << " → " << r.ToString();
    EXPECT_TRUE(o.Leq(r.ToHi())) << o.ToString() << " → " << r.ToString();
    // Minimal: any storable label satisfying both dominates r.
    Label other = RandomLabel(&rng, true);
    if (t.Leq(other) && o.Leq(other.ToHi())) {
      EXPECT_TRUE(r.Leq(other))
          << "raise " << r.ToString() << " not minimal vs " << other.ToString();
    }
  }
}

TEST_P(LabelLatticeProperty, SerializationRoundTripsRandomLabels) {
  std::mt19937_64 rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    Label a = RandomLabel(&rng, true);
    std::vector<uint8_t> bytes;
    a.Serialize(&bytes);
    Label out;
    size_t consumed = 0;
    ASSERT_TRUE(Label::Deserialize(bytes.data(), bytes.size(), &consumed, &out));
    EXPECT_EQ(out, a);
    EXPECT_EQ(consumed, bytes.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LabelLatticeProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

// Information-flow soundness property: if the two paper access rules say a
// flow A→B is forbidden in some category, no sequence of self-relabels by a
// thread without ownership can make it allowed.
class TaintMonotonicity : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TaintMonotonicity, SelfRelabelCannotShedTaint) {
  std::mt19937_64 rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    Label t = RandomLabel(&rng, false);  // no ownership anywhere
    Label target = RandomLabel(&rng, false);
    // The self_set_label rule allows L with t ⊑ L ⊑ C. Any such L is at
    // least as tainted as t in every category, so if t ⋢ target then L ⋢
    // target (transitivity contrapositive).
    Label raised = t.Join(RandomLabel(&rng, false));  // some legal raise
    ASSERT_TRUE(t.Leq(raised));
    if (!t.Leq(target)) {
      // t exceeds target in some category; any legal raise keeps it above,
      // because raised ⊑ target with t ⊑ raised would imply t ⊑ target.
      EXPECT_FALSE(raised.Leq(target))
          << t.ToString() << " raised to " << raised.ToString() << " vs "
          << target.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TaintMonotonicity, ::testing::Values(7, 11, 17, 23));

}  // namespace
}  // namespace histar
