// Tests for the category allocator and its 61-bit block cipher (paper §2).
#include "src/core/category.h"

#include <gtest/gtest.h>

#include <random>
#include <thread>
#include <unordered_set>
#include <vector>

namespace histar {
namespace {

TEST(CategoryCipher, EncryptDecryptRoundTrip) {
  CategoryCipher c(0xdeadbeef);
  std::mt19937_64 rng(42);
  for (int i = 0; i < 10000; ++i) {
    uint64_t p = rng() & kCategoryMask;
    uint64_t e = c.Encrypt(p);
    EXPECT_LE(e, kCategoryMask);
    EXPECT_EQ(c.Decrypt(e), p);
  }
}

TEST(CategoryCipher, SequentialCountersLookUnrelated) {
  // The point of encrypting the counter: adjacent allocations must not have
  // adjacent names, or a thread could estimate how many categories another
  // thread allocated (a storage channel). Check Hamming-ish dispersion.
  CategoryCipher c(1);
  int small_deltas = 0;
  for (uint64_t i = 1; i < 1000; ++i) {
    uint64_t a = c.Encrypt(i);
    uint64_t b = c.Encrypt(i + 1);
    uint64_t delta = a > b ? a - b : b - a;
    if (delta < 1024) {
      ++small_deltas;
    }
  }
  EXPECT_LT(small_deltas, 5);
}

TEST(CategoryCipher, DifferentKeysDifferentPermutations) {
  CategoryCipher c1(1);
  CategoryCipher c2(2);
  int same = 0;
  for (uint64_t i = 0; i < 1000; ++i) {
    if (c1.Encrypt(i) == c2.Encrypt(i)) {
      ++same;
    }
  }
  EXPECT_LT(same, 3);
}

TEST(CategoryCipher, BijectionOnSample) {
  CategoryCipher c(7);
  std::unordered_set<uint64_t> seen;
  for (uint64_t i = 0; i < 100000; ++i) {
    EXPECT_TRUE(seen.insert(c.Encrypt(i)).second) << "collision at " << i;
  }
}

TEST(CategoryAllocator, NeverReturnsInvalidOrOverWidth) {
  CategoryAllocator a;
  for (int i = 0; i < 10000; ++i) {
    CategoryId id = a.Allocate();
    EXPECT_NE(id, kInvalidCategory);
    EXPECT_LE(id, kCategoryMask);
  }
}

TEST(CategoryAllocator, AllUnique) {
  CategoryAllocator a;
  std::unordered_set<CategoryId> seen;
  for (int i = 0; i < 50000; ++i) {
    EXPECT_TRUE(seen.insert(a.Allocate()).second);
  }
}

TEST(CategoryAllocator, ThreadSafeUnderContention) {
  CategoryAllocator a;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::vector<CategoryId>> results(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&a, &results, t]() {
      results[static_cast<size_t>(t)].reserve(kPerThread);
      for (int i = 0; i < kPerThread; ++i) {
        results[static_cast<size_t>(t)].push_back(a.Allocate());
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  std::unordered_set<CategoryId> seen;
  for (const auto& v : results) {
    for (CategoryId id : v) {
      EXPECT_TRUE(seen.insert(id).second);
    }
  }
  EXPECT_EQ(seen.size(), static_cast<size_t>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace histar
