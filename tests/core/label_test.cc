// Unit tests for the label algebra (paper §2).
#include "src/core/label.h"

#include <gtest/gtest.h>

namespace histar {
namespace {

// Fixed category names used throughout; real ids are opaque 61-bit values,
// but the algebra does not care.
constexpr CategoryId kBr = 101;  // "Bob read"
constexpr CategoryId kBw = 102;  // "Bob write"
constexpr CategoryId kV = 103;   // wrap's taint category

TEST(Level, TotalOrder) {
  // ⋆ < 0 < 1 < 2 < 3 < J.
  EXPECT_TRUE(LevelLeq(Level::kStar, Level::k0));
  EXPECT_TRUE(LevelLeq(Level::k0, Level::k1));
  EXPECT_TRUE(LevelLeq(Level::k1, Level::k2));
  EXPECT_TRUE(LevelLeq(Level::k2, Level::k3));
  EXPECT_TRUE(LevelLeq(Level::k3, Level::kHi));
  EXPECT_FALSE(LevelLeq(Level::k1, Level::kStar));
  EXPECT_FALSE(LevelLeq(Level::kHi, Level::k3));
}

TEST(Label, DefaultIsLevelOne) {
  Label l;
  EXPECT_EQ(l.default_level(), Level::k1);
  EXPECT_EQ(l.get(kBr), Level::k1);
  EXPECT_EQ(l.entry_count(), 0u);
}

TEST(Label, SetAndGet) {
  Label l;
  l.set(kBr, Level::k3);
  l.set(kBw, Level::k0);
  EXPECT_EQ(l.get(kBr), Level::k3);
  EXPECT_EQ(l.get(kBw), Level::k0);
  EXPECT_EQ(l.get(kV), Level::k1);
  EXPECT_EQ(l.entry_count(), 2u);
}

TEST(Label, SettingDefaultErasesEntry) {
  Label l;
  l.set(kBr, Level::k3);
  EXPECT_EQ(l.entry_count(), 1u);
  l.set(kBr, Level::k1);
  EXPECT_EQ(l.entry_count(), 0u);
  // Structural equality after round trip.
  EXPECT_EQ(l, Label());
}

TEST(Label, PaperExampleLabelFunction) {
  // L = {w0, r3, 1}: L(w)=0, L(r)=3, otherwise 1 (§2).
  constexpr CategoryId w = 1;
  constexpr CategoryId r = 2;
  Label l(Level::k1, {{w, Level::k0}, {r, Level::k3}});
  EXPECT_EQ(l.get(w), Level::k0);
  EXPECT_EQ(l.get(r), Level::k3);
  EXPECT_EQ(l.get(999), Level::k1);
}

TEST(Label, LeqBasicTaintFlow) {
  // Thread {1} cannot observe object {c3, 1}: object ⋢ thread.
  Label thread_label;
  Label obj(Level::k1, {{kV, Level::k3}});
  EXPECT_FALSE(obj.Leq(thread_label));
  EXPECT_TRUE(thread_label.Leq(obj));
}

TEST(Label, LeqWriteRestriction) {
  // Object {c0, 1} is less tainted than thread {1}: thread cannot write it.
  Label thread_label;
  Label obj(Level::k1, {{kBw, Level::k0}});
  EXPECT_FALSE(thread_label.Leq(obj));
  EXPECT_TRUE(obj.Leq(thread_label));
}

TEST(Label, LeqComparesDefaults) {
  EXPECT_TRUE(Label(Level::k1).Leq(Label(Level::k2)));
  EXPECT_FALSE(Label(Level::k2).Leq(Label(Level::k1)));
}

TEST(Label, LeqMixedEntriesAndDefaults) {
  // {a0, 2} vs {b3, 1}: a: 0 vs 1 ok; b: 2 vs 3 ok; default: 2 vs 1 fails.
  Label l1(Level::k2, {{1, Level::k0}});
  Label l2(Level::k1, {{2, Level::k3}});
  EXPECT_FALSE(l1.Leq(l2));
  // And {a0,1} ⊑ {b3,1} does hold: a: 0≤1, b: 1≤3, default 1≤1.
  Label l3(Level::k1, {{1, Level::k0}});
  EXPECT_TRUE(l3.Leq(l2));
}

TEST(Label, StarShifting) {
  Label l(Level::k1, {{kBr, Level::kStar}, {kV, Level::k3}});
  Label hi = l.ToHi();
  EXPECT_EQ(hi.get(kBr), Level::kHi);
  EXPECT_EQ(hi.get(kV), Level::k3);
  Label back = hi.ToStar();
  EXPECT_EQ(back, l);
}

TEST(Label, OwnershipBypassesReadCheck) {
  // Thread owning v can observe {v3, 1}: L_O ⊑ L_T^J.
  Label thread_label(Level::k1, {{kV, Level::kStar}});
  Label obj(Level::k1, {{kV, Level::k3}});
  EXPECT_FALSE(obj.Leq(thread_label));          // without shifting: blocked
  EXPECT_TRUE(obj.Leq(thread_label.ToHi()));    // with J: allowed
}

TEST(Label, OwnershipBypassesWriteCheck) {
  // Thread owning bw can modify {bw0, 1}: L_T ⊑ L_O requires ⋆ ≤ 0.
  Label thread_label(Level::k1, {{kBw, Level::kStar}});
  Label obj(Level::k1, {{kBw, Level::k0}});
  EXPECT_TRUE(thread_label.Leq(obj));
  EXPECT_TRUE(obj.Leq(thread_label.ToHi()));
}

TEST(Label, JoinTakesMax) {
  Label a(Level::k1, {{kBr, Level::k3}, {kBw, Level::k0}});
  Label b(Level::k1, {{kBw, Level::k2}, {kV, Level::k0}});
  Label j = a.Join(b);
  EXPECT_EQ(j.get(kBr), Level::k3);
  EXPECT_EQ(j.get(kBw), Level::k2);
  EXPECT_EQ(j.get(kV), Level::k1);  // max(1, 0) = 1
  EXPECT_EQ(j.default_level(), Level::k1);
}

TEST(Label, MeetTakesMin) {
  Label a(Level::k1, {{kBr, Level::k3}});
  Label b(Level::k2, {{kBr, Level::k2}});
  Label m = a.Meet(b);
  EXPECT_EQ(m.get(kBr), Level::k2);
  EXPECT_EQ(m.default_level(), Level::k1);
}

TEST(Label, RaiseForReadPaperFormula) {
  // §2.2: to observe O labeled {v3,1}, thread {1} must raise to {v3,1}.
  Label t;
  Label o(Level::k1, {{kV, Level::k3}});
  Label raised = Label::RaiseForRead(t, o);
  EXPECT_EQ(raised.get(kV), Level::k3);
  EXPECT_EQ(raised.default_level(), Level::k1);
  // Both conditions hold at the raised label.
  EXPECT_TRUE(t.Leq(raised));
  EXPECT_TRUE(o.Leq(raised.ToHi()));
}

TEST(Label, RaiseForReadPreservesOwnership) {
  // A thread owning br raising for a {br3, v3, 1} object keeps br at ⋆
  // (ownership already dominates) and gains v3.
  Label t(Level::k1, {{kBr, Level::kStar}});
  Label o(Level::k1, {{kBr, Level::k3}, {kV, Level::k3}});
  Label raised = Label::RaiseForRead(t, o);
  EXPECT_EQ(raised.get(kBr), Level::kStar);
  EXPECT_EQ(raised.get(kV), Level::k3);
}

TEST(Label, ClamAvScenarioFromFigure4) {
  // wrap: {br*, v*, 1}; scanner: {br*, v3, 1}; user data: {br3, bw0, 1};
  // network: {1} effectively (untainted); update daemon: {1}.
  Label wrap(Level::k1, {{kBr, Level::kStar}, {kV, Level::kStar}});
  Label scanner(Level::k1, {{kBr, Level::kStar}, {kV, Level::k3}});
  Label user_data(Level::k1, {{kBr, Level::k3}, {kBw, Level::k0}});
  Label untainted;

  // Scanner can observe user data (owns br, and v-taint doesn't matter).
  EXPECT_TRUE(user_data.Leq(scanner.ToHi()));
  // Scanner cannot write anything untainted: scanner ⋢ {1} because v3 > 1.
  EXPECT_FALSE(scanner.Leq(untainted));
  // wrap can both observe scanner-tainted data and write untainted objects.
  Label tainted_result(Level::k1, {{kV, Level::k3}});
  EXPECT_TRUE(tainted_result.Leq(wrap.ToHi()));
  EXPECT_TRUE(wrap.Leq(untainted));
  // Update daemon cannot observe user data.
  EXPECT_FALSE(user_data.Leq(untainted.ToHi()));
}

TEST(Label, EqualityAndHash) {
  Label a(Level::k1, {{kBr, Level::k3}});
  Label b(Level::k1, {{kBr, Level::k3}});
  Label c(Level::k1, {{kBr, Level::k2}});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.Hash(), b.Hash());
}

TEST(Label, ToStringRendersLevels) {
  Label l(Level::k1, {{kBr, Level::kStar}, {kV, Level::k3}});
  std::string s = l.ToString();
  EXPECT_NE(s.find('*'), std::string::npos);
  EXPECT_NE(s.find('3'), std::string::npos);
  EXPECT_EQ(s.back(), '}');
}

TEST(Label, SerializeRoundTrip) {
  Label l(Level::k2, {{kBr, Level::kStar}, {kBw, Level::k0}, {kV, Level::k3}});
  std::vector<uint8_t> bytes;
  l.Serialize(&bytes);
  Label out;
  size_t consumed = 0;
  ASSERT_TRUE(Label::Deserialize(bytes.data(), bytes.size(), &consumed, &out));
  EXPECT_EQ(consumed, bytes.size());
  EXPECT_EQ(out, l);
}

TEST(Label, DeserializeRejectsTruncation) {
  Label l(Level::k1, {{kBr, Level::k3}});
  std::vector<uint8_t> bytes;
  l.Serialize(&bytes);
  Label out;
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_FALSE(Label::Deserialize(bytes.data(), cut, nullptr, &out));
  }
}

TEST(Label, DeserializeRejectsUnsortedEntries) {
  // Hand-build a blob with two entries out of order.
  std::vector<uint8_t> bytes;
  bytes.push_back(static_cast<uint8_t>(Level::k1));
  uint32_t n = 2;
  for (int i = 0; i < 4; ++i) {
    bytes.push_back(static_cast<uint8_t>(n >> (8 * i)));
  }
  uint64_t e1 = (uint64_t{50} << 3) | 4;
  uint64_t e2 = (uint64_t{10} << 3) | 4;
  for (uint64_t e : {e1, e2}) {
    for (int i = 0; i < 8; ++i) {
      bytes.push_back(static_cast<uint8_t>(e >> (8 * i)));
    }
  }
  Label out;
  EXPECT_FALSE(Label::Deserialize(bytes.data(), bytes.size(), nullptr, &out));
}

TEST(Label, DeserializeRejectsHiDefault) {
  std::vector<uint8_t> bytes = {static_cast<uint8_t>(Level::kHi), 0, 0, 0, 0};
  Label out;
  EXPECT_FALSE(Label::Deserialize(bytes.data(), bytes.size(), nullptr, &out));
}

}  // namespace
}  // namespace histar
