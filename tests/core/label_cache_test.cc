// Tests for the immutable-label comparison cache (paper §4).
#include "src/core/label_cache.h"

#include <gtest/gtest.h>

namespace histar {
namespace {

TEST(LabelCache, InternIsStableForEqualLabels) {
  LabelCache cache;
  Label a(Level::k1, {{5, Level::k3}});
  Label b(Level::k1, {{5, Level::k3}});
  EXPECT_EQ(cache.Intern(a), cache.Intern(b));
  Label c(Level::k1, {{5, Level::k2}});
  EXPECT_NE(cache.Intern(a), cache.Intern(c));
}

TEST(LabelCache, CachedLeqMatchesDirect) {
  LabelCache cache;
  Label a(Level::k1, {{1, Level::k0}});
  Label b(Level::k1, {{2, Level::k3}});
  uint32_t ia = cache.Intern(a);
  uint32_t ib = cache.Intern(b);
  EXPECT_EQ(cache.CachedLeq(ia, a, ib, b), a.Leq(b));
  EXPECT_EQ(cache.CachedLeq(ib, b, ia, a), b.Leq(a));
}

TEST(LabelCache, SecondLookupHits) {
  LabelCache cache;
  Label a;
  Label b(Level::k2);
  uint32_t ia = cache.Intern(a);
  uint32_t ib = cache.Intern(b);
  cache.ResetStats();
  cache.CachedLeq(ia, a, ib, b);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);
  cache.CachedLeq(ia, a, ib, b);
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(LabelCache, DisabledFallsBackToDirect) {
  LabelCache cache;
  cache.set_enabled(false);
  Label a;
  Label b(Level::k2);
  uint32_t ia = cache.Intern(a);
  uint32_t ib = cache.Intern(b);
  cache.ResetStats();
  EXPECT_TRUE(cache.CachedLeq(ia, a, ib, b));
  EXPECT_TRUE(cache.CachedLeq(ia, a, ib, b));
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
}

TEST(LabelCache, OrderMattersInKey) {
  LabelCache cache;
  Label lo;                 // {1}
  Label hi(Level::k2);      // {2}
  uint32_t il = cache.Intern(lo);
  uint32_t ih = cache.Intern(hi);
  EXPECT_TRUE(cache.CachedLeq(il, lo, ih, hi));
  EXPECT_FALSE(cache.CachedLeq(ih, hi, il, lo));
}

}  // namespace
}  // namespace histar
