// Tests for the sharded label registry (paper §4: interned immutable labels
// and memoized ⊑). Covers the single-threaded contract — intern stability,
// precomputed shifted variants, memoization equivalence — and the properties
// that make the sharding sound under concurrency: interning the same label
// from many threads yields one id, and memoized answers never diverge from
// direct comparisons no matter how races interleave.
#include "src/core/label_registry.h"

#include <gtest/gtest.h>

#include <atomic>
#include <random>
#include <thread>
#include <vector>

#include "src/core/label_memo.h"
#include "src/kernel/kernel.h"

namespace histar {
namespace {

Label RandomLabel(std::mt19937_64* rng, bool allow_star = true) {
  std::uniform_int_distribution<int> def_dist(1, 4);
  std::uniform_int_distribution<int> lvl_dist(allow_star ? 0 : 1, 4);
  std::uniform_int_distribution<int> count_dist(0, 6);
  std::uniform_int_distribution<CategoryId> cat_dist(1, 12);
  Label l(static_cast<Level>(def_dist(*rng)));
  int n = count_dist(*rng);
  for (int i = 0; i < n; ++i) {
    l.set(cat_dist(*rng), static_cast<Level>(lvl_dist(*rng)));
  }
  return l;
}

TEST(LabelRegistry, InternIsStableForEqualLabels) {
  LabelRegistry reg;
  Label a(Level::k1, {{5, Level::k3}});
  Label b(Level::k1, {{5, Level::k3}});
  EXPECT_EQ(reg.Intern(a), reg.Intern(b));
  Label c(Level::k1, {{5, Level::k2}});
  EXPECT_NE(reg.Intern(a), reg.Intern(c));
  EXPECT_EQ(reg.size(), 2u);
}

TEST(LabelRegistry, NeverHandsOutInvalidId) {
  LabelRegistry reg;
  EXPECT_NE(reg.Intern(Label()), kInvalidLabelId);
}

TEST(LabelRegistry, GetReturnsCanonicalLabel) {
  LabelRegistry reg;
  Label a(Level::k2, {{7, Level::kStar}, {9, Level::k3}});
  LabelId id = reg.Intern(a);
  EXPECT_EQ(reg.Get(id), a);
}

TEST(LabelRegistry, HiAndStarArePrecomputedShifts) {
  LabelRegistry reg;
  Label a(Level::k1, {{3, Level::kStar}, {4, Level::k2}});
  LabelId id = reg.Intern(a);
  EXPECT_EQ(reg.GetHi(id), a.ToHi());
  EXPECT_EQ(reg.GetStar(id), a.ToStar());
  // The id-of-shift accessors intern lazily and are stable.
  LabelId hi = reg.HiOf(id);
  EXPECT_EQ(hi, reg.HiOf(id));
  EXPECT_EQ(reg.Get(hi), a.ToHi());
  LabelId star = reg.StarOf(id);
  EXPECT_EQ(reg.Get(star), a.ToStar());
  // Shifting is idempotent through the registry too.
  EXPECT_EQ(reg.HiOf(hi), hi);
}

TEST(LabelRegistry, LeqMatchesDirectComparison) {
  LabelRegistry reg;
  std::mt19937_64 rng(42);
  for (int i = 0; i < 500; ++i) {
    Label a = RandomLabel(&rng);
    Label b = RandomLabel(&rng);
    LabelId ia = reg.Intern(a);
    LabelId ib = reg.Intern(b);
    EXPECT_EQ(reg.Leq(ia, ib), a.Leq(b)) << a.ToString() << " vs " << b.ToString();
    // Second query exercises the memoized path; must agree.
    EXPECT_EQ(reg.Leq(ia, ib), a.Leq(b));
  }
}

TEST(LabelRegistry, JoinMatchesDirectAndIsInterned) {
  LabelRegistry reg;
  std::mt19937_64 rng(7);
  for (int i = 0; i < 300; ++i) {
    Label a = RandomLabel(&rng);
    Label b = RandomLabel(&rng);
    LabelId ia = reg.Intern(a);
    LabelId ib = reg.Intern(b);
    LabelId j1 = reg.Join(ia, ib);
    EXPECT_EQ(reg.Get(j1), a.Join(b));
    // Commutativity at the id level: both orders resolve to the same id.
    EXPECT_EQ(j1, reg.Join(ib, ia));
    // The join result is a first-class interned label.
    EXPECT_EQ(j1, reg.Intern(a.Join(b)));
  }
}

TEST(LabelRegistry, SecondLookupHits) {
  LabelRegistry reg;
  LabelId a = reg.Intern(Label());
  LabelId b = reg.Intern(Label(Level::k2));
  reg.ResetStats();
  reg.Leq(a, b);
  EXPECT_EQ(reg.misses(), 1u);
  EXPECT_EQ(reg.hits(), 0u);
  reg.Leq(a, b);
  EXPECT_EQ(reg.hits(), 1u);
}

TEST(LabelRegistry, IdenticalIdsShortCircuit) {
  LabelRegistry reg;
  LabelId a = reg.Intern(Label(Level::k3));
  reg.ResetStats();
  EXPECT_TRUE(reg.Leq(a, a));
  EXPECT_EQ(reg.hits(), 0u);
  EXPECT_EQ(reg.misses(), 0u);
}

TEST(LabelRegistry, DisabledFallsBackToDirect) {
  LabelRegistry reg;
  reg.set_enabled(false);
  LabelId a = reg.Intern(Label());
  LabelId b = reg.Intern(Label(Level::k2));
  reg.ResetStats();
  EXPECT_TRUE(reg.Leq(a, b));
  EXPECT_FALSE(reg.Leq(b, a));
  EXPECT_EQ(reg.hits(), 0u);
  EXPECT_EQ(reg.misses(), 0u);
}

TEST(LabelRegistry, OrderMattersInKey) {
  LabelRegistry reg;
  LabelId lo = reg.Intern(Label());            // {1}
  LabelId hi = reg.Intern(Label(Level::k2));   // {2}
  EXPECT_TRUE(reg.Leq(lo, hi));
  EXPECT_FALSE(reg.Leq(hi, lo));
}

TEST(LabelRegistry, SingleShardConfigurationBehavesIdentically) {
  LabelRegistry reg(1);
  EXPECT_EQ(reg.shard_count(), 1u);
  std::mt19937_64 rng(3);
  for (int i = 0; i < 200; ++i) {
    Label a = RandomLabel(&rng);
    Label b = RandomLabel(&rng);
    EXPECT_EQ(reg.Leq(reg.Intern(a), reg.Intern(b)), a.Leq(b));
  }
}

TEST(LabelRegistry, ShardCountRoundsToPowerOfTwo) {
  EXPECT_EQ(LabelRegistry(3).shard_count(), 2u);
  EXPECT_EQ(LabelRegistry(16).shard_count(), 16u);
  EXPECT_EQ(LabelRegistry(1000).shard_count(), LabelRegistry::kMaxShardCount);
}

// ---- concurrency -------------------------------------------------------------

// Many threads intern an overlapping universe of labels. Interning must be
// stable (same label → same id everywhere) and ids must resolve back to the
// label that produced them.
TEST(LabelRegistryStress, ConcurrentInterningIsStable) {
  LabelRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::vector<std::vector<std::pair<Label, LabelId>>> seen(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Same seed on every thread: maximal collision pressure on the
      // intern shards.
      std::mt19937_64 rng(99);
      for (int i = 0; i < kIters; ++i) {
        Label l = RandomLabel(&rng);
        seen[t].emplace_back(l, reg.Intern(l));
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  // Every thread interned the identical sequence; ids must agree pairwise
  // and resolve to the canonical label.
  for (int i = 0; i < kIters; ++i) {
    for (int t = 1; t < kThreads; ++t) {
      EXPECT_EQ(seen[t][i].second, seen[0][i].second);
    }
    EXPECT_EQ(reg.Get(seen[0][i].second), seen[0][i].first);
  }
}

// Concurrent memoized checks must never contradict the direct comparison,
// regardless of which thread populates the memo first.
TEST(LabelRegistryStress, ConcurrentMemoizationIsSound) {
  LabelRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kIters = 4000;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::mt19937_64 rng(1000 + t % 2);  // half the threads share a seed
      for (int i = 0; i < kIters; ++i) {
        Label a = RandomLabel(&rng);
        Label b = RandomLabel(&rng);
        LabelId ia = reg.Intern(a);
        LabelId ib = reg.Intern(b);
        bool memo = reg.Leq(ia, ib);
        if (memo != a.Leq(b)) {
          failures.fetch_add(1);
        }
        LabelId j = reg.Join(ia, ib);
        if (reg.Get(j) != a.Join(b)) {
          failures.fetch_add(1);
        }
        LabelId hi = reg.HiOf(ia);
        if (reg.Get(hi) != a.ToHi()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(failures.load(), 0);
}

// ---- syscall-boundary discipline ---------------------------------------------

// Caller-supplied labels are validated with non-interning comparisons and
// interned only on success: a failed syscall must not grow kernel state, or
// rejected labels become a quota-free unbounded-memory channel.
TEST(KernelRegistryBoundary, RejectedLabelsAreNotInterned) {
  Kernel k;
  ObjectId init = k.BootstrapThread(Label(), Label(Level::k2), "probe");
  size_t before = k.label_registry().size();
  for (int i = 0; i < 16; ++i) {
    // Each iteration uses a fresh label above the thread's clearance, so
    // both the relabel and the creation are rejected.
    Label bad(Level::k1, {{static_cast<CategoryId>(1000 + i), Level::k3}});
    EXPECT_EQ(k.sys_self_set_label(init, bad), Status::kLabelCheckFailed);
    CreateSpec spec;
    spec.container = k.root_container();
    spec.label = bad;
    spec.descrip = "bad";
    EXPECT_FALSE(k.sys_segment_create(init, spec, 16).ok());
  }
  EXPECT_EQ(k.label_registry().size(), before);
}

// ---- the user-level gate-floor memo ------------------------------------------

TEST(GateFloorMemo, MatchesDirectComputationAndInternsOnce) {
  GateFloorMemo memo;
  Label t(Level::k1, {{4, Level::k2}});
  Label g(Level::k1, {{9, Level::kStar}});
  EXPECT_EQ(memo.Floor(t, g), t.ToHi().Join(g.ToHi()).ToStar());
  memo.Floor(t, g);
  EXPECT_EQ(memo.size(), 1u);  // repeat call reused the entry, no rebuild
  memo.Floor(g, t);
  EXPECT_EQ(memo.size(), 2u);
}

TEST(GateFloorMemo, BoundedGrowthFlushesWhenFull) {
  // Long-lived daemons see a fresh caller label per session; the memo must
  // not grow without bound under that churn.
  GateFloorMemo memo;
  Label g(Level::k1, {{2, Level::kStar}});
  for (size_t i = 0; i < GateFloorMemo::kMaxEntries + 10; ++i) {
    Label t(Level::k1, {{100 + i, Level::k2}});
    EXPECT_EQ(memo.Floor(t, g), t.ToHi().Join(g.ToHi()).ToStar());
  }
  EXPECT_LE(memo.size(), GateFloorMemo::kMaxEntries);
}

TEST(GateFloorMemo, ConcurrentFloorsAgree) {
  GateFloorMemo memo;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      std::mt19937_64 rng(5);
      for (int i = 0; i < 1000; ++i) {
        Label a = RandomLabel(&rng);
        Label b = RandomLabel(&rng);
        if (memo.Floor(a, b) != a.ToHi().Join(b.ToHi()).ToStar()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace histar
